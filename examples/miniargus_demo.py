"""The mini-Argus DSL: the paper's linguistic constructs, executable.

Shows (a) the grades example written in Argus-like syntax with promises,
streams, flush/synch and except-arms, (b) the coenter composition, and
(c) the static type checker rejecting a program that claims an exception
no call can raise — the strong-typing guarantee of §3.

Run:  python examples/miniargus_demo.py
"""

from repro.lang import TypeCheckError, load_module, run_source

GRADES = """
% ------- the grades example (Figure 3-1 shape), in mini-Argus ----------
sinfo = record [ stu: string, grade: int ]
info = array [ sinfo ]
pt = promise returns (real) signals (bad_grade)
averages = array [ pt ]

guardian grades_db is
  handler record_grade (stu: string, grade: int) returns (real) signals (bad_grade)
    if grade < 0 then signal bad_grade end
    sleep(0.2)
    return (float(grade))
  end
end

guardian printer is
  handler print (line: string)
    sleep(0.1)
    return ()
  end
end

program main
  grades: info := #[
    sinfo${stu: "amy", grade: 90},
    sinfo${stu: "bob", grade: 80},
    sinfo${stu: "cal", grade: -5},
    sinfo${stu: "dee", grade: 70}
  ]
  a: averages := averages$new()
  for s: sinfo in grades do
    averages$addh(a, stream grades_db.record_grade(s.stu, s.grade))
  end
  flush grades_db.record_grade

  printed: int := 0
  i: int := 0
  while i < averages$len(a) do
    begin
      stream printer.print(make_string(grades[i].stu, pt$claim(a[i])))
      printed := printed + 1
    end except when bad_grade: printed := printed end
    i := i + 1
  end
  synch printer.print
  return (printed)
end
"""

COENTER = """
% ------- stream composition with coenter (Figure 4-2 shape) ------------
pt = promise returns (int)
guardian stage_one is
  handler step (x: int) returns (int)
    sleep(0.2)
    return (x * 3)
  end
end
guardian stage_two is
  handler consume (x: int)
    sleep(0.1)
    return ()
  end
end
program main
  q: queue[pt] := queue[pt]$create()
  moved: int := 0
  coenter
  action
    i: int := 0
    while i < 6 do
      queue[pt]$enq(q, stream stage_one.step(i))
      i := i + 1
    end
    flush stage_one.step
    synch stage_one.step
  action
    j: int := 0
    while j < 6 do
      v: int := pt$claim(queue[pt]$deq(q))
      stream stage_two.consume(v)
      moved := moved + 1
      j := j + 1
    end
    synch stage_two.consume
  end
  return (moved)
end
"""

ILL_TYPED = GRADES.replace("when bad_grade:", "when impossible_exception:")


def main() -> None:
    printed, system = run_source(GRADES, latency=2.0, kernel_overhead=0.2)
    print("grades program printed %d lines (one student had a bad grade); "
          "finished at t=%.1f" % (printed, system.now))

    moved, system = run_source(COENTER, latency=2.0, kernel_overhead=0.2)
    print("coenter composition moved %d items; finished at t=%.1f"
          % (moved, system.now))

    print("\nstatic checking: claiming an exception no call can raise ...")
    try:
        load_module(ILL_TYPED)
        print("  accepted (this should not happen!)")
    except TypeCheckError as error:
        print("  rejected at compile time: %s" % error)


if __name__ == "__main__":
    main()
