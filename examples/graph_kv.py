"""Promise graphs over a sharded KV store (PR 10's `repro.graph`).

Instead of driving a DAG of calls from the client — one round trip per
edge — describe it once with :class:`GraphBuilder` and ship it: each
routine tree travels to the shard its scheduling key hashes to,
executes where the data lives, and cascades shard-to-shard as epoch
batch frames. The client gets one promise per ``emit()`` tag.

The demo builds a little DAG over three shards:

* two update chains (``kv.add`` then ``kv.scale``) pinned to different
  shards by key,
* a collector (``kv.sum``) that joins them on a third shard,
* a chain through ``kv.owner`` — a routine with a ``node_func`` that
  recomputes placement from its *actual* input value, so the delivery
  migrates to the value's owner shard at run time.

Then it runs the same DAG through the per-edge RPC baseline
(:meth:`GraphRuntime.run_rpc`) and prints both engines' wire-message
and simulated-time costs side by side.

Run:  python examples/graph_kv.py
      python examples/graph_kv.py --trace out/   # JSONL export; inspect with
                                                 # python -m repro.obs critical-path
"""

import argparse
import os

from repro import ArgusSystem, INT, STRING
from repro.graph import GraphBuilder, GraphRuntime, register_routine

# ----------------------------------------------------------------------
# Routines: named, registered on every node, never pickled.  A frame
# carries the routine *name* plus captures/inputs; the receiving shard
# resolves the name in its own registry.
# ----------------------------------------------------------------------


def _kv_add(state, captures, inputs):
    key, delta = captures
    data = state.setdefault("data", {})
    data[key] = data.get(key, 0) + delta
    return (data[key],)


def _kv_scale(state, captures, inputs):
    (factor,) = captures
    (value,) = inputs
    return (value * factor,)


def _kv_sum(state, captures, inputs):
    return (sum(values[0] for values in inputs),)


def _kv_owner(state, captures, inputs):
    (value,) = inputs
    state.setdefault("owned", []).append(value)
    return (value,)


register_routine(
    "kv.add", _kv_add, capture_types=(STRING, INT), output_types=(INT,), cost=0.05
)
register_routine(
    "kv.scale",
    _kv_scale,
    capture_types=(INT,),
    input_types=(INT,),
    output_types=(INT,),
    cost=0.05,
)
register_routine("kv.sum", _kv_sum, input_types=(INT,), output_types=(INT,), cost=0.05)
# node_func: placement is recomputed from the actual input value, so the
# delivery migrates to whichever shard owns that value.
register_routine(
    "kv.owner",
    _kv_owner,
    input_types=(INT,),
    output_types=(INT,),
    node_func=lambda captures, inputs: inputs[0],
    cost=0.05,
)


def build_world(tracing=False):
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, tracing=tracing)
    names = ["shard0", "shard1", "shard2"]
    runtime = GraphRuntime(system, names, origin="client")
    for name in names:
        runtime.install_shard(system.create_guardian(name))
    client = system.create_guardian("client")
    runtime.install_origin(client)
    return system, runtime, client


def build_dag():
    g = GraphBuilder()
    a = g.source("kv.add", captures=("alpha", 2), sched_key=1).emit("a")
    b = a.then("kv.scale", captures=(3,), sched_key=2).emit("b")
    c = g.source("kv.add", captures=("beta", 5), sched_key=3).emit("c")
    g.collect("kv.sum", inputs=[b, c], sched_key=4).emit("total")
    # The migrating chain: kv.owner reroutes to the shard owning its
    # input value (17), wherever the static key would have put it.
    g.source("kv.add", captures=("gamma", 17), sched_key=1).then("kv.owner").emit(
        "owned"
    )
    return g


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="run with tracing on and write a JSONL event trace under DIR",
    )
    args = parser.parse_args()

    # --- sharded submission: the DAG ships, promises come back --------
    system, runtime, client = build_world(tracing=args.trace is not None)

    def submit_main(ctx):
        start = ctx.now
        promises = runtime.submit(ctx, build_dag())
        results = {}
        for tag, promise in sorted(promises.items()):
            results[tag] = yield promise.claim()
        return results, ctx.now - start

    process = client.spawn(submit_main)
    results, elapsed = system.run(until=process)
    messages = system.stats()["messages_sent"]
    print("sharded submit:")
    for tag, value in sorted(results.items()):
        print("  %-6s = %r" % (tag, value))
    owner = runtime.router.shard_name(17)
    print("  kv.owner ran on %s (migrated to its value's shard)" % owner)
    print("  %d wire messages, %.2f simulated seconds" % (messages, elapsed))

    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
        path = os.path.join(args.trace, "graph_kv.trace.jsonl")
        system.export_trace(path)
        print("  trace written to %s" % path)

    # --- the same DAG, one blocking RPC per edge ----------------------
    system, runtime, client = build_world()

    def rpc_main(ctx):
        start = ctx.now
        rpc_results = yield from runtime.run_rpc(ctx, build_dag())
        return rpc_results, ctx.now - start

    process = client.spawn(rpc_main)
    rpc_results, rpc_elapsed = system.run(until=process)
    rpc_messages = system.stats()["messages_sent"]
    # run_rpc returns raw output tuples; claim() unwraps single results.
    flat = {
        tag: value[0] if len(value) == 1 else value
        for tag, value in rpc_results.items()
    }
    print("per-edge RPC baseline:")
    print("  same results: %s" % (flat == results,))
    print("  %d wire messages, %.2f simulated seconds" % (rpc_messages, rpc_elapsed))
    print(
        "speedup: %.1fx in simulated time"
        % (rpc_elapsed / elapsed if elapsed else float("inf"))
    )


if __name__ == "__main__":
    main()
