"""The paper's running example: the grades database and printer (§3.1, §4).

Runs the same workload through all four program structures —

* RPC-only (the Ada/SR baseline of §5),
* Figure 3-1 (two sequential loops over two streams),
* Figure 4-1 (forks + a shared promise queue),
* Figure 4-2 (the coenter)

— verifies they print identical output, and compares their costs.

Run:  python examples/grades_pipeline.py
"""

from repro.apps import (
    build_grades_world,
    make_roster,
    program_fig_3_1,
    program_fig_4_1,
    program_fig_4_2,
    program_rpc,
)

PROGRAMS = [
    ("RPC-only (Ada/SR)", program_rpc),
    ("Figure 3-1", program_fig_3_1),
    ("Figure 4-1 (forks)", program_fig_4_1),
    ("Figure 4-2 (coenter)", program_fig_4_2),
]

N_STUDENTS = 40
STEP_COST = 0.3  # client CPU per loop iteration


def main() -> None:
    roster = make_roster(N_STUDENTS)
    reference = None
    print("Recording and printing grades for %d students:\n" % N_STUDENTS)
    print("%-22s %10s %10s" % ("program", "time", "messages"))
    print("%-22s %10s %10s" % ("-" * 22, "-" * 10, "-" * 10))
    for name, program in PROGRAMS:
        world = build_grades_world(latency=5.0, kernel_overhead=0.2,
                                   record_cost=0.4, print_cost=0.3)

        def run(ctx, program=program):
            count = yield from program(ctx, roster, step_cost=STEP_COST)
            return count

        process = world.client.spawn(run)
        world.system.run(until=process)
        print("%-22s %10.1f %10d"
              % (name, world.system.now, world.system.stats()["messages_sent"]))

        if reference is None:
            reference = world.printed
        else:
            assert world.printed == reference, "all structures must agree!"

    print("\nAll four structures printed identical output. First lines:")
    for line in reference[:3]:
        print("   ", line)
    print("    ...")


if __name__ == "__main__":
    main()
