"""The paper's running example: the grades database and printer (§3.1, §4).

Runs the same workload through all four program structures —

* RPC-only (the Ada/SR baseline of §5),
* Figure 3-1 (two sequential loops over two streams),
* Figure 4-1 (forks + a shared promise queue),
* Figure 4-2 (the coenter)

— verifies they print identical output, and compares their costs.

Run:  python examples/grades_pipeline.py
      python examples/grades_pipeline.py --trace out/   # + Fig 3-1 trace export
"""

import argparse
import os

from repro.apps import (
    build_grades_world,
    make_roster,
    program_fig_3_1,
    program_fig_4_1,
    program_fig_4_2,
    program_rpc,
)

PROGRAMS = [
    ("RPC-only (Ada/SR)", program_rpc),
    ("Figure 3-1", program_fig_3_1),
    ("Figure 4-1 (forks)", program_fig_4_1),
    ("Figure 4-2 (coenter)", program_fig_4_2),
]

N_STUDENTS = 40
STEP_COST = 0.3  # client CPU per loop iteration


def export_fig31_trace(out_dir: str, chrome_path: str = None) -> None:
    """Re-run Figure 3-1 with tracing on; write a JSONL event trace and a
    JSON metrics summary under *out_dir* (plus an optional Chrome trace)."""
    roster = make_roster(N_STUDENTS)
    world = build_grades_world(latency=5.0, kernel_overhead=0.2,
                               record_cost=0.4, print_cost=0.3, tracing=True)

    def run(ctx):
        count = yield from program_fig_3_1(ctx, roster, step_cost=STEP_COST)
        return count

    process = world.client.spawn(run)
    world.system.run(until=process)

    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, "fig31.trace.jsonl")
    summary_path = os.path.join(out_dir, "fig31.summary.json")
    events = world.system.export_trace(trace_path)
    report = world.system.tracer.summary_json(summary_path)
    print("\nFigure 3-1 trace: %d events -> %s" % (events, trace_path))
    print("Summary -> %s" % summary_path)
    for key, value in sorted(report["derived"].items()):
        print("    %-22s %s" % (key, value))

    if chrome_path:
        from repro.obs.spans import write_chrome_trace

        slices = write_chrome_trace(world.system.tracer.events, chrome_path)
        print("Chrome trace: %d slices -> %s  (open in chrome://tracing "
              "or ui.perfetto.dev)" % (slices, chrome_path))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="also run Fig 3-1 traced and write JSONL + summary under DIR",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="with --trace: also write a Chrome trace-event JSON to PATH",
    )
    options = parser.parse_args()
    if options.chrome_trace and not options.trace:
        parser.error("--chrome-trace requires --trace")
    roster = make_roster(N_STUDENTS)
    reference = None
    print("Recording and printing grades for %d students:\n" % N_STUDENTS)
    print("%-22s %10s %10s" % ("program", "time", "messages"))
    print("%-22s %10s %10s" % ("-" * 22, "-" * 10, "-" * 10))
    for name, program in PROGRAMS:
        world = build_grades_world(latency=5.0, kernel_overhead=0.2,
                                   record_cost=0.4, print_cost=0.3)

        def run(ctx, program=program):
            count = yield from program(ctx, roster, step_cost=STEP_COST)
            return count

        process = world.client.spawn(run)
        world.system.run(until=process)
        print("%-22s %10.1f %10d"
              % (name, world.system.now, world.system.stats()["messages_sent"]))

        if reference is None:
            reference = world.printed
        else:
            assert world.printed == reference, "all structures must agree!"

    print("\nAll four structures printed identical output. First lines:")
    for line in reference[:3]:
        print("   ", line)
    print("    ...")

    if options.trace:
        export_fig31_trace(options.trace, options.chrome_trace)


if __name__ == "__main__":
    main()
