"""The mailer guardian of §2.1: per-stream sequencing, cross-stream
concurrency, and Argus-style exception handling.

Run:  python examples/mailer_demo.py
"""

from repro import ArgusSystem, Signal
from repro.apps import build_mailer


def main() -> None:
    system = ArgusSystem(latency=2.0, kernel_overhead=0.2)
    mailer = build_mailer(system, users=("alice", "bob"), handler_cost=1.5)
    c1 = system.create_guardian("c1")
    c2 = system.create_guardian("c2")

    def c1_main(ctx):
        send_mail = ctx.lookup("mailer", "send_mail")
        read_mail = ctx.lookup("mailer", "read_mail")
        # Stream the send; then read on the SAME stream: the read is
        # guaranteed to see the send (in-order processing per stream).
        send_mail.stream_statement("alice", "hello alice")
        messages = yield read_mail.call("alice")
        print("[%5.2f] C1 read alice's mail: %s" % (ctx.now, messages))
        # The paper's except example: read for an unknown user.
        try:
            yield read_mail.call("mallory")
        except Signal as sig:  # when no_such_user: ...
            print("[%5.2f] C1 caught %s for 'mallory'" % (ctx.now, sig.condition))

    def c2_main(ctx):
        read_mail = ctx.lookup("mailer", "read_mail")
        messages = yield read_mail.call("bob")
        print("[%5.2f] C2 read bob's mail: %s (ran concurrently with C1)"
              % (ctx.now, messages))

    p1 = c1.spawn(c1_main)
    p2 = c2.spawn(c2_main)
    system.run(until=system.env.all_of([p1, p2]))
    print("\nmax concurrent handler executions at the mailer: %d"
          % mailer.state["max_concurrent"])
    print("(2 = different clients' streams overlap; within one stream,")
    print(" calls ran strictly in order)")


if __name__ == "__main__":
    main()
