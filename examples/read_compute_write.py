"""The three-level cascade of §4: read -> compute -> write.

Demonstrates stream composition with filters: the phased (Figure 3-1
shape), process-per-stream (coenter) and process-per-item structures over
the same pipeline, plus a filter that *skips* bad items and one that
*terminates* the composition — "the filter could cope with the problem
either by manufacturing arguments for the call on the next stream or by
omitting the call or by terminating the computation."

Run:  python examples/read_compute_write.py
"""

from repro import ArgusSystem, Filter, HandlerType, INT, Pipeline, SKIP, Stage
from repro.compose import run_per_item, run_per_stream, run_phased

STEP = HandlerType(args=[INT], returns=[INT])


def build_world():
    system = ArgusSystem(latency=2.0, kernel_overhead=0.2)
    for name, fn, cost in [
        ("sensor", lambda x: x * 10, 0.4),      # "read"
        ("analyzer", lambda x: x + 7, 0.8),     # "compute"
        ("archive", lambda x: x, 0.3),          # "write"
    ]:
        guardian = system.create_guardian(name)

        def make_impl(fn=fn, cost=cost):
            def impl(ctx, x):
                yield ctx.compute(cost)
                return fn(x)

            return impl

        guardian.create_handler("step", STEP, make_impl())
    return system


def main() -> None:
    items = list(range(16))
    pipeline = Pipeline(
        [Stage("sensor", "step"), Stage("analyzer", "step"), Stage("archive", "step")]
    )

    print("read -> compute -> write over %d items:\n" % len(items))
    for name, runner in [
        ("phased (Fig 3-1 shape)", run_phased),
        ("process-per-stream", run_per_stream),
        ("process-per-item", run_per_item),
    ]:
        system = build_world()

        def run(ctx, runner=runner):
            results = yield from runner(ctx, pipeline, items)
            return results

        process = system.create_guardian("client").spawn(run)
        results = system.run(until=process)
        assert results == [x * 10 + 7 for x in items]
        print("  %-24s finished at t=%.1f" % (name, system.now))

    # --- filters can skip items -------------------------------------------
    def drop_negatives(value, item):
        if item < 0:
            return SKIP
        return (item,)

    filtered = Pipeline(
        [Stage("sensor", "step", filter=Filter(drop_negatives)), Stage("analyzer", "step")]
    )
    system = build_world()

    def run_filtered(ctx):
        results = yield from run_per_stream(ctx, filtered, [3, -1, 4, -1, 5])
        return results

    process = system.create_guardian("client").spawn(run_filtered)
    results = system.run(until=process)
    print("\n  filter skipped the bad items: %s" % (results,))

    # --- or terminate the whole composition --------------------------------
    def explode_on(value, item):
        if item == 13:
            raise ValueError("cannot process item 13")
        return (item,)

    fragile = Pipeline([Stage("sensor", "step", filter=Filter(explode_on))])
    system = build_world()

    def run_fragile(ctx):
        try:
            yield from run_per_stream(ctx, fragile, [11, 12, 13, 14])
            return "completed"
        except ValueError as exc:
            return "terminated: %s" % exc

    process = system.create_guardian("client").spawn(run_fragile)
    print("  filter terminated the composition: %r" % system.run(until=process))


if __name__ == "__main__":
    main()
