"""Two OS processes, one promise pipeline, real TCP (DESIGN.md §15).

Spawns an echo guardian in a worker process via ``repro.rt.RtCluster``,
then drives it from this process over actual sockets: a blocking RPC, a
pipelined batch of stream calls, and a ``when_fulfilled`` continuation
— the same Stream API the simulator examples use, now against the
wallclock backend.

Run with::

    PYTHONPATH=src python examples/rt_echo.py
"""

from __future__ import annotations

import sys

from repro.rt import RtCluster
from repro.types.signatures import INT, HandlerType

ECHO_T = HandlerType(args=[INT], returns=[INT])


def setup_server(host) -> None:
    """Build the server world; runs inside the spawned worker process."""
    guardian = host.create_guardian("server")

    def echo_impl(ctx, n):
        return 2 * n
        yield  # marks the handler as a generator

    guardian.create_handler("echo", ECHO_T, echo_impl)


def client_main(ctx):
    echo = ctx.lookup("server", "echo")

    # A blocking RPC: one round trip over TCP.
    doubled = yield echo.call(21)
    print("rpc        : echo(21) = %d" % doubled)

    # Pipelined stream calls: issued ahead, claimed later; the transport
    # batches them into frames and the window keeps them in flight.
    promises = [echo.stream(i) for i in range(10)]
    echo.flush()
    values = []
    for promise in promises:
        value = yield promise.claim()
        values.append(value)
    print("streams    : %s" % values)

    # A continuation: derive before the result exists, claim after.
    derived = echo.stream(100).when_fulfilled(lambda v: v + 1)
    chained = yield derived.claim()
    print("continuation: 2*100 + 1 = %d" % chained)

    return sum(values) + doubled + chained


def main() -> int:
    cluster = RtCluster({"node:server": setup_server})
    cluster.start()
    try:
        host = cluster.client_host()
        host.declare("server", "echo", ECHO_T, node="node:server")
        client = host.create_guardian("client")
        proc = client.spawn(client_main)
        total = host.run(until=proc, timeout=30.0)
        print("total      : %d" % total)
        stats = host.stats()
        print(
            "client sent %d message(s) in %d byte(s) over real TCP"
            % (stats["messages_sent"], stats["bytes_sent"])
        )
        host.shutdown()
    finally:
        cluster.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
