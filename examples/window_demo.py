"""The window system of §2: dynamic ports travelling in replies.

``create_window`` dynamically creates a fresh port group with three ports
and returns them in a record — "Ports may be sent as arguments and results
of remote calls."  Each window's ports share a group (mutually sequenced);
different windows' groups are independent streams.

Run:  python examples/window_demo.py
"""

from repro import ArgusSystem
from repro.apps import build_window_system


def main() -> None:
    system = ArgusSystem(latency=2.0, kernel_overhead=0.2)
    windows = build_window_system(system)
    client = system.create_guardian("client")

    def client_main(ctx):
        create = ctx.lookup("windows", "create_window")

        # The reply is a record of freshly created ports.
        first = yield create.call()
        second = yield create.call()
        print("[%5.2f] created two windows; got port records with fields %s"
              % (ctx.now, sorted(first.keys())))

        # Bind the transmitted descriptors to this activity's agent.
        w1_puts = ctx.bind(first["puts"])
        w1_color = ctx.bind(first["change_color"])
        w2_putc = ctx.bind(second["putc"])

        # Same window => same group => one stream => sequenced:
        w1_puts.stream_statement("hello, ")
        w1_puts.stream_statement("window one")
        w1_color.stream_statement("green")
        # Different window => different group => independent stream:
        for ch in "w2!":
            w2_putc.stream_statement(ch)

        yield w1_color.synch()
        yield w2_putc.synch()
        print("[%5.2f] all window operations complete" % ctx.now)

        same_stream = w1_puts.stream_sender is w1_color.stream_sender
        cross_stream = w1_puts.stream_sender is w2_putc.stream_sender
        print("        w1.puts and w1.change_color share a stream: %s" % same_stream)
        print("        w1 and w2 ports share a stream: %s" % cross_stream)

    process = client.spawn(client_main)
    system.run(until=process)

    print("\nfinal window contents:")
    for window_id, state in sorted(windows.state["windows"].items()):
        print("  %s: text=%r color=%s"
              % (window_id, "".join(state["text"]), state["color"]))


if __name__ == "__main__":
    main()
