"""Quickstart: promises and stream calls in five minutes.

Builds one server guardian and one client, then walks through the paper's
vocabulary: an RPC, stream calls with promises, claim, ready, flush,
synch, and exception propagation.

Run:  python examples/quickstart.py
"""

from repro import ArgusSystem, HandlerType, INT, Signal

DOUBLE = HandlerType(args=[INT], returns=[INT], signals={"negative": []})


def main() -> None:
    system = ArgusSystem(latency=5.0, kernel_overhead=0.5)

    # --- A guardian with one handler --------------------------------------
    server = system.create_guardian("server")

    def double(ctx, x):
        """Handlers are generator functions; yields model compute time."""
        yield ctx.compute(0.2)
        if x < 0:
            raise Signal("negative")
        return x * 2

    server.create_handler("double", DOUBLE, double)

    # --- A client process --------------------------------------------------
    client = system.create_guardian("client")

    def client_main(ctx):
        h = ctx.lookup("server", "double")

        # Ordinary RPC: the caller waits for the reply.
        value = yield h.call(21)
        print("[%6.2f] RPC double(21) = %d" % (ctx.now, value))

        # Stream calls: each returns a *promise* immediately; the calls are
        # buffered and batched on the wire, and the caller keeps running.
        t0 = ctx.now
        promises = [h.stream(i) for i in range(10)]
        print("[%6.2f] 10 stream calls issued in %.3f time units"
              % (ctx.now, ctx.now - t0))
        print("[%6.2f] first promise ready yet? %s" % (ctx.now, promises[0].ready()))

        h.flush()  # push the buffered calls out now

        # Claim in any order; each claim waits if needed, and a promise can
        # be claimed many times with the same outcome.
        total = 0
        for p in reversed(promises):
            total += yield p.claim()
        print("[%6.2f] sum of doubles 0..9 = %d" % (ctx.now, total))

        # Exceptions propagate through promises, type-safely.
        bad = h.stream(-1)
        h.flush()
        try:
            yield bad.claim()
        except Signal as sig:
            print("[%6.2f] claim raised the handler's exception: %s"
                  % (ctx.now, sig.condition))

        # synch waits for every earlier call and reports exception_reply if
        # any terminated abnormally.
        try:
            yield h.synch()
            print("[%6.2f] synch: all calls completed normally" % ctx.now)
        except Exception as exc:
            print("[%6.2f] synch signalled: %s" % (ctx.now, type(exc).__name__))
        return total

    process = client.spawn(client_main)
    result = system.run(until=process)
    stats = system.stats()
    print("\nDone at t=%.2f; result=%s" % (system.now, result))
    print("Physical messages sent: %d (batching at work)" % stats["messages_sent"])


if __name__ == "__main__":
    main()
