"""Broken streams: unavailable, failure, and automatic restart (§2-§3).

Scripts a partition and a guardian destruction against a live stream and
shows the exception vocabulary the paper defines: ``unavailable`` for
temporary trouble (retry later), ``failure`` for permanent trouble, and
reincarnation making the stream usable again once the network heals.

Run:  python examples/fault_tolerance.py
"""

from repro import ArgusSystem, Failure, HandlerType, INT, StreamConfig, Unavailable
from repro.net import schedule_partition

ECHO = HandlerType(args=[INT], returns=[INT])


def main() -> None:
    config = StreamConfig(batch_size=4, max_buffer_delay=0.5, rto=4.0, max_retries=2)
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.1)
        return x

    server.create_handler("echo", ECHO, echo)
    client = system.create_guardian("client")

    # Partition from t=4 to t=30: calls in that window break their stream.
    schedule_partition(system.network, "node:client", "node:server",
                       at=4.0, heal_at=30.0)

    def client_main(ctx):
        h = ctx.lookup("server", "echo")

        value = yield h.call(1)
        print("[%6.2f] before the partition: echo(1) = %d" % (ctx.now, value))

        yield ctx.sleep(5.0)  # now inside the partition window
        promise = h.stream(2)
        h.flush()
        try:
            yield promise.claim()
        except Unavailable as exc:
            print("[%6.2f] during the partition: %s" % (ctx.now, exc))
            print("         (the system 'tried hard' first: retransmissions,"
                  " then the break)")

        yield ctx.sleep(20.0)  # the partition heals at t=30
        value = yield h.call(3)
        print("[%6.2f] after healing: echo(3) = %d  (stream incarnation %d "
              "- restarted automatically)"
              % (ctx.now, value, h.stream_sender.incarnation))

        # Permanent failure: the guardian goes away entirely.
        descriptor = h.descriptor
        system.guardian("server").destroy()
        ghost = ctx.bind(descriptor)
        try:
            yield ghost.call(4)
        except Failure as exc:
            print("[%6.2f] after destroy: %s (permanent: no point retrying)"
                  % (ctx.now, exc))
        return "done"

    process = client.spawn(client_main)
    print("\n->", system.run(until=process))


if __name__ == "__main__":
    main()
