"""Broken streams: unavailable, failure, and automatic restart (§2-§3).

Scripts a partition and a guardian destruction against a live stream and
shows the exception vocabulary the paper defines: ``unavailable`` for
temporary trouble (retry later), ``failure`` for permanent trouble, and
reincarnation making the stream usable again once the network heals.

Run:  python examples/fault_tolerance.py
      python examples/fault_tolerance.py --trace out/          # JSONL export
      python examples/fault_tolerance.py --trace out/ \
          --chrome-trace out/faults.chrome.json                # + Chrome trace
"""

import argparse
import os

from repro import ArgusSystem, Failure, HandlerType, INT, StreamConfig, Unavailable
from repro.net import schedule_partition

ECHO = HandlerType(args=[INT], returns=[INT])


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="run with tracing on and write a JSONL event trace under DIR",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="also write a Chrome trace-event JSON to PATH (implies tracing)",
    )
    return parser.parse_args()


def export_traces(system: ArgusSystem, name: str, options) -> None:
    if options.trace:
        os.makedirs(options.trace, exist_ok=True)
        path = os.path.join(options.trace, "%s.trace.jsonl" % name)
        events = system.export_trace(path)
        print("\nTrace: %d events -> %s" % (events, path))
        print("Analyze with: python -m repro.obs critical-path %s" % path)
    if options.chrome_trace:
        from repro.obs.spans import write_chrome_trace

        slices = write_chrome_trace(system.tracer.events, options.chrome_trace)
        print("Chrome trace: %d slices -> %s  (open in chrome://tracing "
              "or ui.perfetto.dev)" % (slices, options.chrome_trace))


def main() -> None:
    options = parse_args()
    tracing = bool(options.trace or options.chrome_trace)
    config = StreamConfig(batch_size=4, max_buffer_delay=0.5, rto=4.0, max_retries=2)
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config,
                         tracing=tracing)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.1)
        return x

    server.create_handler("echo", ECHO, echo)
    client = system.create_guardian("client")

    # Partition from t=4 to t=30: calls in that window break their stream.
    schedule_partition(system.network, "node:client", "node:server",
                       at=4.0, heal_at=30.0)

    def client_main(ctx):
        h = ctx.lookup("server", "echo")

        value = yield h.call(1)
        print("[%6.2f] before the partition: echo(1) = %d" % (ctx.now, value))

        yield ctx.sleep(5.0)  # now inside the partition window
        promise = h.stream(2)
        h.flush()
        try:
            yield promise.claim()
        except Unavailable as exc:
            print("[%6.2f] during the partition: %s" % (ctx.now, exc))
            print("         (the system 'tried hard' first: retransmissions,"
                  " then the break)")

        yield ctx.sleep(20.0)  # the partition heals at t=30
        value = yield h.call(3)
        print("[%6.2f] after healing: echo(3) = %d  (stream incarnation %d "
              "- restarted automatically)"
              % (ctx.now, value, h.stream_sender.incarnation))

        # Permanent failure: the guardian goes away entirely.
        descriptor = h.descriptor
        system.guardian("server").destroy()
        ghost = ctx.bind(descriptor)
        try:
            yield ghost.call(4)
        except Failure as exc:
            print("[%6.2f] after destroy: %s (permanent: no point retrying)"
                  % (ctx.now, exc))
        return "done"

    process = client.spawn(client_main)
    print("\n->", system.run(until=process))
    export_traces(system, "fault_tolerance", options)


if __name__ == "__main__":
    main()
