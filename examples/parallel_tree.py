"""Forks and the promise-valued binary tree (§3.2).

Searchers run in parallel with an inserter; a search that reaches a
blocked slot simply waits on its promise until an inserter resolves it —
producer/consumer synchronization with no locks.

Run:  python examples/parallel_tree.py
"""

import random

from repro import ArgusSystem, PromiseTree


def main() -> None:
    system = ArgusSystem()
    tree = PromiseTree(system.env)
    client = system.create_guardian("client")

    keys = list(range(40))
    random.Random(2).shuffle(keys)

    def inserter(ctx):
        for key in keys:
            yield ctx.sleep(0.25)  # insertions trickle in
            tree.insert(key, "value-%d" % key)
        print("[%6.2f] inserter done (%d keys)" % (ctx.now, len(tree)))

    def searcher(ctx, key):
        value = yield from tree.search(key)
        print("[%6.2f] search(%d) -> %s" % (ctx.now, key, value))
        return value

    # Forked searchers for keys that will only exist later.
    def main_proc(ctx):
        promises = [ctx.fork(searcher, key) for key in (keys[5], keys[20], keys[-1])]
        ctx.fork(inserter)
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values

    process = client.spawn(main_proc)
    values = system.run(until=process)
    print("\nall searches resolved:", values)
    print("in-order keys (first 10):", tree.keys_in_order()[:10])


if __name__ == "__main__":
    main()
