"""A non-paper application: bulk-loading a key-value store.

Shows what adopting the library looks like beyond the paper's own
examples: a KV guardian, a bulk loader that streams thousands of ``put``
calls (sends — no reply data needed), verification with claims, and a
coenter that loads two shards concurrently while a failure in one shard
cleanly terminates the other.

Run:  python examples/kv_bulkload.py
      python examples/kv_bulkload.py --trace out/              # JSONL export
      python examples/kv_bulkload.py --trace out/ \
          --chrome-trace out/kv.chrome.json                    # + Chrome trace
"""

import argparse
import os

from repro import ArgusSystem, HandlerType, INT, STRING, Signal, StreamConfig

PUT = HandlerType(args=[STRING, INT])                      # no results: a send
GET = HandlerType(args=[STRING], returns=[INT], signals={"missing": []})


def build_store(system, name):
    store = system.create_guardian(name)

    def put(ctx, key, value):
        yield ctx.compute(0.01)
        ctx.guardian.state.setdefault("data", {})[key] = value
        return None

    def get(ctx, key):
        yield ctx.compute(0.01)
        data = ctx.guardian.state.get("data", {})
        if key not in data:
            raise Signal("missing")
        return data[key]

    store.create_handler("put", PUT, put)
    store.create_handler("get", GET, get)
    return store


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="run with tracing on and write a JSONL event trace under DIR",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="also write a Chrome trace-event JSON to PATH (implies tracing)",
    )
    return parser.parse_args()


def main() -> None:
    options = parse_args()
    tracing = bool(options.trace or options.chrome_trace)
    config = StreamConfig(batch_size=32, reply_batch_size=32,
                          max_buffer_delay=1.0, reply_max_delay=1.0)
    system = ArgusSystem(latency=3.0, kernel_overhead=0.2, stream_config=config,
                         tracing=tracing)
    shard_a = build_store(system, "shard_a")
    shard_b = build_store(system, "shard_b")
    client = system.create_guardian("client")

    N = 500

    def client_main(ctx):
        # --- bulk load both shards concurrently with a coenter ------------
        def load_arm(actx, shard, count):
            put = actx.lookup(shard, "put")
            for index in range(count):
                put.send("key%04d" % index, index * index)
            put.flush()
            yield put.synch()   # all puts completed normally

        co = ctx.coenter()
        co.arm(load_arm, "shard_a", N)
        co.arm(load_arm, "shard_b", N)
        t0 = ctx.now
        yield co.run()
        print("[%7.2f] loaded 2 x %d keys concurrently (%.1f time units)"
              % (ctx.now, N, ctx.now - t0))

        # --- verify a sample with claims -----------------------------------
        get = ctx.lookup("shard_a", "get")
        promises = [(key, get.stream(key)) for key in
                    ("key0000", "key0123", "key0499")]
        get.flush()
        for key, promise in promises:
            value = yield promise.claim()
            print("[%7.2f] %s = %d" % (ctx.now, key, value))

        # --- a missing key raises through the promise ----------------------
        try:
            yield get.call("nope")
        except Signal as sig:
            print("[%7.2f] get('nope') signalled %r" % (ctx.now, sig.condition))

        stats = system.stats()
        print("\n%d logical calls travelled in %d physical messages"
              % (2 * N + 4, stats["messages_sent"]))
        return stats["messages_sent"]

    process = client.spawn(client_main)
    system.run(until=process)

    if options.trace:
        os.makedirs(options.trace, exist_ok=True)
        path = os.path.join(options.trace, "kv_bulkload.trace.jsonl")
        events = system.export_trace(path)
        print("\nTrace: %d events -> %s" % (events, path))
        print("Analyze with: python -m repro.obs critical-path %s" % path)
    if options.chrome_trace:
        from repro.obs.spans import write_chrome_trace

        slices = write_chrome_trace(system.tracer.events, options.chrome_trace)
        print("Chrome trace: %d slices -> %s  (open in chrome://tracing "
              "or ui.perfetto.dev)" % (slices, options.chrome_trace))


if __name__ == "__main__":
    main()
