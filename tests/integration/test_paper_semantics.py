"""Integration checklist: the §3 stream-call semantics, end to end.

Each test corresponds to a numbered step or quoted sentence of the paper's
semantics for ``x: pt := stream h(3)`` and friends, exercised through the
full stack (client guardian → network → server guardian → back).
"""

import pytest

from repro.core import ExceptionReply, Failure, Signal
from repro.entities import ArgusSystem
from repro.lang import run_source
from repro.streams import StreamConfig
from repro.types import INT, STRING, HandlerType

from ..conftest import run_client


def build(**kwargs):
    defaults = dict(latency=1.0, kernel_overhead=0.1)
    defaults.update(kwargs)
    system = ArgusSystem(**defaults)
    server = system.create_guardian("server")
    server.state["log"] = []

    def work(ctx, x):
        yield ctx.compute(0.2)
        ctx.guardian.state["log"].append(x)
        if x < 0:
            raise Signal("neg", "input was negative")
        return x + 1

    server.create_handler(
        "work",
        HandlerType(args=[INT], returns=[INT], signals={"neg": [STRING]}),
        work,
    )
    return system, server


def test_step1_encode_failure_no_promise_created():
    """Step 1: 'If encoding fails ... the call fails and signals the
    appropriate exception.  In this case no promise object is created.'"""
    system, server = build()

    def main(ctx):
        work = ctx.lookup("server", "work")
        with pytest.raises(Failure):
            work.stream(3.14159)  # reals do not encode as ints
        yield ctx.sleep(0)
        return "no promise"

    assert run_client(system, main) == "no promise"


def test_step2_promise_blocked_caller_continues():
    """Step 2: 'a promise object is created in the blocked state and
    returned to the caller, allowing the caller to continue.'"""
    system, server = build()

    def main(ctx):
        work = ctx.lookup("server", "work")
        before = ctx.now
        promise = work.stream(1)
        assert ctx.now == before  # no waiting happened
        assert not promise.ready()
        yield promise.claim()

    run_client(system, main)


def test_step3_reply_resolves_in_order_after_earlier_promises():
    """Step 3: '...after all promises for earlier calls on the stream are
    in the ready state, the reply message is decoded and the promise is
    changed to the ready state.'"""
    system, server = build()

    def main(ctx):
        work = ctx.lookup("server", "work")
        promises = [work.stream(index) for index in range(5)]
        work.flush()
        yield promises[2].claim()
        assert all(promise.ready() for promise in promises[:3])
        for promise in promises:
            yield promise.claim()

    run_client(system, main)


def test_step4_break_resolves_promise_with_unavailable():
    """Step 4: on a break the system resolves the promise with, e.g.,
    unavailable("could not communicate")."""
    config = StreamConfig(rto=5.0, max_retries=1, max_buffer_delay=0.5)
    system, server = build(stream_config=config)
    system.network.partition("node:client", "node:server")

    def main(ctx):
        work = ctx.lookup("server", "work")
        promise = work.stream(1)
        work.flush()
        outcome = yield promise.wait()
        return outcome.condition

    assert run_client(system, main) == "unavailable"


def test_statement_form_still_executes_call():
    """'the result of the call is still decoded as described above and
    then discarded.'"""
    system, server = build()

    def main(ctx):
        work = ctx.lookup("server", "work")
        work.stream_statement(7)
        yield work.synch()

    run_client(system, main)
    assert server.state["log"] == [7]


def test_full_exception_vocabulary_reaches_claimer():
    system, server = build()

    def main(ctx):
        work = ctx.lookup("server", "work")
        p_ok = work.stream(1)
        p_sig = work.stream(-1)
        work.flush()
        results = []
        results.append((yield p_ok.claim()))
        try:
            yield p_sig.claim()
        except Signal as sig:
            results.append((sig.condition, sig.exception_args()))
        try:
            yield work.synch()
        except ExceptionReply:
            results.append("exception_reply")
        return results

    assert run_client(system, main) == [
        2,
        ("neg", ("input was negative",)),
        "exception_reply",
    ]


def test_claim_semantics_quote():
    """'The claim operation waits until the promise is ready.  Then it
    returns normally if the call terminated normally, and otherwise it
    signals the appropriate exception.'"""
    system, server = build()

    def main(ctx):
        work = ctx.lookup("server", "work")
        promise = work.stream(10)
        work.flush()
        value = yield promise.claim()  # waits, then returns normally
        assert value == 11
        again = yield promise.claim()  # same outcome each time
        assert again == 11
        return promise.claim_count

    assert run_client(system, main) == 2


def test_dsl_program_against_python_guardians_shape():
    """The DSL grades program produces exactly the Figure 3-1 output."""
    source = """
    sinfo = record [ stu: string, grade: int ]
    info = array [ sinfo ]
    pt = promise returns (real)
    averages = array [ pt ]

    guardian grades_db is
      handler record_grade (stu: string, grade: int) returns (real)
        sleep(0.2)
        return (float(grade))
      end
    end

    guardian printer is
      handler print (line: string)
        sleep(0.1)
        return ()
      end
    end

    program main
      grades: info := #[
        sinfo${stu: "amy", grade: 90},
        sinfo${stu: "bob", grade: 80}
      ]
      a: averages := averages$new()
      for s: sinfo in grades do
        averages$addh(a, stream grades_db.record_grade(s.stu, s.grade))
      end
      flush grades_db.record_grade
      output: string := ""
      i: int := 0
      while i < averages$len(a) do
        output := output + make_string(grades[i].stu, pt$claim(a[i])) + ";"
        i := i + 1
      end
      return (output)
    end
    """
    result, system = run_source(source, latency=1.0, kernel_overhead=0.1)
    assert result == "amy 90;bob 80;"


def test_many_clients_one_server_isolation():
    """Streams from different clients never interfere."""
    system, server = build()
    clients = [system.create_guardian("c%d" % index) for index in range(4)]

    def client_main(ctx, base):
        work = ctx.lookup("server", "work")
        promises = [work.stream(base + index) for index in range(5)]
        work.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values

    processes = [
        client.spawn(client_main, index * 100) for index, client in enumerate(clients)
    ]
    system.run(until=system.env.all_of(processes))
    for index, process in enumerate(processes):
        assert process.value == [index * 100 + offset + 1 for offset in range(5)]
    # All 20 calls executed exactly once.
    assert len(server.state["log"]) == 20
