"""Adversarial stress: random fault schedules against live streams.

Liveness: every promise resolves (with a value or a break exception) no
matter what combination of loss, jitter, partitions and crashes occurs.
Safety: handlers never execute a call twice, and whatever subset of calls
executed is a *prefix-consistent* subsequence per incarnation (exactly-once,
in-order delivery within each stream incarnation).
"""

from hypothesis import given, settings
from hypothesis import strategies as st


from repro.core import ArgusError
from repro.entities import ArgusSystem
from repro.net import FaultPlan, schedule_crash, schedule_partition
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

ECHO = HandlerType(args=[INT], returns=[INT])


def build_world(seed, loss_rate, jitter, tracing=False):
    config = StreamConfig(
        batch_size=4,
        reply_batch_size=4,
        max_buffer_delay=1.0,
        reply_max_delay=1.0,
        rto=6.0,
        max_retries=3,
    )
    system = ArgusSystem(
        latency=1.0,
        kernel_overhead=0.1,
        loss_rate=loss_rate,
        jitter=jitter,
        seed=seed,
        stream_config=config,
        tracing=tracing,
    )
    server = system.create_guardian("server")
    server.state["executed"] = []

    def echo(ctx, x):
        ctx.guardian.state["executed"].append(x)
        yield ctx.compute(0.05)
        return x

    server.create_handler("echo", ECHO, echo)
    client = system.create_guardian("client")
    return system, server, client


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.sampled_from([0.0, 0.1, 0.3]),
    jitter=st.sampled_from([0.0, 2.0]),
    partition_at=st.one_of(st.none(), st.floats(min_value=0.5, max_value=30.0)),
    partition_length=st.floats(min_value=1.0, max_value=40.0),
    crash_at=st.one_of(st.none(), st.floats(min_value=0.5, max_value=30.0)),
    n_calls=st.integers(min_value=1, max_value=25),
)
def test_liveness_and_exactly_once_under_faults(
    seed, loss_rate, jitter, partition_at, partition_length, crash_at, n_calls
):
    system, server, client = build_world(seed, loss_rate, jitter)
    if partition_at is not None:
        schedule_partition(
            system.network,
            "node:client",
            "node:server",
            at=partition_at,
            heal_at=partition_at + partition_length,
        )
    if crash_at is not None:
        schedule_crash(
            system.network, "node:server", at=crash_at, recover_at=crash_at + 10.0
        )

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        outcomes = []
        for index in range(n_calls):
            try:
                promise = echo.stream(index)
            except ArgusError:
                outcomes.append(("refused", index))
                continue
            echo.flush()
            try:
                value = yield promise.claim()
                outcomes.append(("ok", value))
            except ArgusError as exc:
                outcomes.append((exc.condition, index))
        return outcomes

    process = client.spawn(main)
    # Liveness: the client finishes within a generous bound.
    outcomes = system.run(until=process)
    assert len(outcomes) == n_calls

    # Safety: successful claims return the right value.
    for tag, value in outcomes:
        if tag == "ok":
            pass  # value equals the call argument by construction below
    ok_values = [value for tag, value in outcomes if tag == "ok"]
    assert ok_values == sorted(ok_values)  # claims arrive in issue order

    # Exactly-once per argument: the handler never ran twice for one call.
    executed = server.state["executed"]
    assert len(executed) == len(set(executed)), "duplicate execution!"

    # Every successfully claimed call certainly executed.
    for value in ok_values:
        assert value in executed


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    n_calls=st.integers(min_value=5, max_value=20),
)
def test_repeated_partitions_never_wedge_the_stream(seed, n_calls):
    """Alternating partition/heal cycles: the stream keeps reincarnating
    and later calls keep succeeding."""
    system, server, client = build_world(seed, loss_rate=0.0, jitter=0.0)
    for cycle in range(3):
        schedule_partition(
            system.network,
            "node:client",
            "node:server",
            at=5.0 + cycle * 20.0,
            heal_at=12.0 + cycle * 20.0,
        )

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        successes = 0
        for index in range(n_calls):
            yield ctx.sleep(4.0)
            try:
                value = yield echo.call(index)
                successes += 1
            except ArgusError:
                pass
        return successes

    process = client.spawn(main)
    successes = system.run(until=process)
    # Some calls fall into partition windows, but calls made while healed
    # always succeed — the stream is never permanently wedged.
    assert successes >= n_calls // 3
    executed = server.state["executed"]
    assert len(executed) == len(set(executed))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss_rate=st.sampled_from([0.0, 0.15]),
    n_calls=st.integers(min_value=3, max_value=20),
)
def test_random_fault_plans_traced_invariants(seed, loss_rate, n_calls):
    """Seeded ``FaultPlan.random`` schedules, checked *through the trace*:

    - delivered calls are exactly-once and in order (seq numbers per
      stream incarnation are unique and contiguous from 1);
    - every promise ends ready, resolved ``normal`` or with a break
      condition (``unavailable``/``failure``) — none is left blocked.
    """
    system, server, client = build_world(seed, loss_rate, jitter=0.0, tracing=True)
    # Only the server may crash: the client process must survive to drive
    # all n_calls to completion, or liveness is unassertable.  Drawing from
    # the system registry's dedicated "faults.plan" stream keeps the plan
    # independent of jitter/workload draws, so the whole run replays
    # bit-identically from the one seed.
    plan = FaultPlan.random(
        system.rng,
        nodes=["node:client", "node:server"],
        horizon=40.0,
        crashable=["node:server"],
    )
    plan.apply(system.network)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        outcomes = []
        for index in range(n_calls):
            try:
                promise = echo.stream(index)
            except ArgusError:
                outcomes.append("refused")
                continue
            echo.flush()
            try:
                yield promise.claim()
                outcomes.append("ok")
            except ArgusError as exc:
                outcomes.append(exc.condition)
        return outcomes

    process = client.spawn(main)
    outcomes = system.run(until=process)
    assert len(outcomes) == n_calls

    tracer = system.tracer

    # Exactly-once: each (stream, incarnation, seq) delivered at most once,
    # and within each incarnation delivery is a contiguous in-order prefix.
    delivered = [
        (event.fields["stream"], event.fields["incarnation"], event.fields["seq"])
        for event in tracer.events_of("stream.call_delivered")
    ]
    assert len(delivered) == len(set(delivered)), "duplicate delivery!"
    per_incarnation = {}
    for stream, incarnation, seq in delivered:
        per_incarnation.setdefault((stream, incarnation), []).append(seq)
    for seqs in per_incarnation.values():
        assert seqs == list(range(1, len(seqs) + 1)), seqs

    # The trace agrees with the handler's own record of executions.
    executed = server.state["executed"]
    assert len(executed) == len(set(executed)), "duplicate execution!"
    assert len(executed) <= len(delivered)

    # Every created promise resolved, and only with paper-sanctioned
    # conditions; claimed promises never stay blocked.
    created = {
        event.fields["promise_id"]
        for event in tracer.events_of("promise.created")
    }
    resolved = {
        event.fields["promise_id"]: event.fields["status"]
        for event in tracer.events_of("promise.resolved")
    }
    assert created == set(resolved)
    assert set(resolved.values()) <= {"normal", "unavailable", "failure"}
    assert tracer.summary()["derived"]["promises_outstanding"] == 0

    # Metrics and the network's counters tell one story.
    assert tracer.count("message.sent") == system.stats()["messages_sent"]
