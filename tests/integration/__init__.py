"""Test package."""
