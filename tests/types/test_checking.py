"""Unit tests for runtime value conformance checking."""

import pytest

from repro.encoding import PortDescriptor, type_fingerprint
from repro.types import (
    ANY,
    BOOL,
    CHAR,
    INT,
    NULL,
    REAL,
    STRING,
    ArrayOf,
    HandlerType,
    RecordOf,
    TypeViolation,
    UserType,
    check_args,
    check_results,
    check_value,
    conforms,
)


def test_int_conformance():
    check_value(INT, 5)
    check_value(INT, -2**63)
    with pytest.raises(TypeViolation):
        check_value(INT, 5.0)
    with pytest.raises(TypeViolation):
        check_value(INT, True)  # bools are not ints in this algebra
    with pytest.raises(TypeViolation):
        check_value(INT, "5")


def test_real_accepts_int_widening():
    check_value(REAL, 2.5)
    check_value(REAL, 3)
    with pytest.raises(TypeViolation):
        check_value(REAL, True)
    with pytest.raises(TypeViolation):
        check_value(REAL, "x")


def test_bool_conformance():
    check_value(BOOL, True)
    with pytest.raises(TypeViolation):
        check_value(BOOL, 1)


def test_char_conformance():
    check_value(CHAR, "x")
    check_value(CHAR, "é")
    with pytest.raises(TypeViolation):
        check_value(CHAR, "xy")
    with pytest.raises(TypeViolation):
        check_value(CHAR, "")


def test_string_conformance():
    check_value(STRING, "")
    check_value(STRING, "hello")
    with pytest.raises(TypeViolation):
        check_value(STRING, 5)


def test_null_conformance():
    check_value(NULL, None)
    with pytest.raises(TypeViolation):
        check_value(NULL, 0)


def test_any_accepts_everything():
    check_value(ANY, object())
    assert conforms(ANY, None)


def test_array_conformance():
    check_value(ArrayOf(INT), [1, 2, 3])
    check_value(ArrayOf(INT), ())
    with pytest.raises(TypeViolation):
        check_value(ArrayOf(INT), [1, "two"])
    with pytest.raises(TypeViolation):
        check_value(ArrayOf(INT), "not an array")


def test_nested_array_violation_has_path():
    with pytest.raises(TypeViolation) as info:
        check_value(ArrayOf(ArrayOf(INT)), [[1], [2, "x"]], path="arg")
    assert "arg[1][1]" in str(info.value)


def test_record_conformance():
    record = RecordOf({"stu": STRING, "grade": INT})
    check_value(record, {"stu": "amy", "grade": 90})
    with pytest.raises(TypeViolation):
        check_value(record, {"stu": "amy"})  # missing field
    with pytest.raises(TypeViolation):
        check_value(record, {"stu": "amy", "grade": 90, "extra": 1})
    with pytest.raises(TypeViolation):
        check_value(record, {"stu": "amy", "grade": "A"})


def test_handler_type_conformance_checks_ref():
    ht = HandlerType(args=[INT])

    class FakeRef:
        handler_type = ht

    check_value(ht, FakeRef())
    with pytest.raises(TypeViolation):
        check_value(ht, object())


def test_port_ref_conformance():
    from repro.types import PortRefType

    ht = HandlerType(args=[CHAR])
    descriptor = PortDescriptor("n", "g:x", "main", "putc", type_fingerprint(ht), ht)

    class FakePort:
        port_id = "putc"
        handler_type = ht

    check_value(PortRefType(ht), FakePort())
    with pytest.raises(TypeViolation):
        check_value(PortRefType(HandlerType(args=[INT])), FakePort())


def test_user_type_validator():
    positive = UserType("pos", INT, int, int, validate=lambda v: isinstance(v, int) and v > 0)
    check_value(positive, 5)
    with pytest.raises(TypeViolation):
        check_value(positive, -5)
    # Without a validator, anything passes.
    anything = UserType("box", STRING, str, str)
    check_value(anything, object())


def test_check_args_count_and_types():
    ht = HandlerType(args=[STRING, INT])
    check_args(ht, ("amy", 90))
    with pytest.raises(TypeViolation):
        check_args(ht, ("amy",))
    with pytest.raises(TypeViolation):
        check_args(ht, ("amy", "ninety"))


def test_check_results_count_and_types():
    check_results((REAL,), (3.5,))
    with pytest.raises(TypeViolation):
        check_results((REAL,), ())
    with pytest.raises(TypeViolation):
        check_results((REAL, INT), (1.0, "x"))


def test_conforms_predicate():
    assert conforms(INT, 3)
    assert not conforms(INT, "3")
