"""Unit tests for the type algebra and signature derivation."""

import pytest

from repro.types import (
    ANY,
    BOOL,
    CHAR,
    INT,
    NULL,
    REAL,
    STRING,
    ArrayOf,
    HandlerType,
    PortRefType,
    PromiseType,
    RecordOf,
    SignatureError,
    Type,
    UserType,
)


def test_primitive_names():
    assert INT.name() == "int"
    assert REAL.name() == "real"
    assert BOOL.name() == "bool"
    assert CHAR.name() == "char"
    assert STRING.name() == "string"
    assert NULL.name() == "null"
    assert ANY.name() == "any"


def test_primitive_equality_and_hash():
    assert INT == INT
    assert INT != REAL
    assert hash(INT) == hash(INT)
    assert len({INT, REAL, INT}) == 2


def test_array_structural_equality():
    assert ArrayOf(INT) == ArrayOf(INT)
    assert ArrayOf(INT) != ArrayOf(REAL)
    assert ArrayOf(ArrayOf(STRING)).name() == "array[array[string]]"


def test_array_requires_type():
    with pytest.raises(SignatureError):
        ArrayOf("int")


def test_record_fields_and_order():
    record = RecordOf({"stu": STRING, "grade": INT})
    assert record.field_dict() == {"stu": STRING, "grade": INT}
    assert record.name() == "record[stu: string, grade: int]"
    # Field order matters for equality (wire format depends on it).
    assert record != RecordOf({"grade": INT, "stu": STRING})


def test_record_requires_fields():
    with pytest.raises(SignatureError):
        RecordOf({})


def test_handler_type_paper_example():
    """The paper's `ht = handlertype (int) returns (real) signals (foo)`."""
    ht = HandlerType(args=[INT], returns=[REAL], signals={"foo": []})
    assert ht.args == (INT,)
    assert ht.returns == (REAL,)
    assert ht.signals == {"foo": ()}
    assert "returns (real)" in repr(ht)
    assert "signals (foo)" in repr(ht)


def test_promise_type_derivation():
    """`pt = promise returns (real) signals (foo)` derives from ht (§3)."""
    ht = HandlerType(args=[INT], returns=[REAL], signals={"foo": [CHAR]})
    pt = ht.promise_type()
    assert pt == PromiseType(returns=[REAL], signals={"foo": [CHAR]})
    assert pt.returns == (REAL,)
    assert pt.signals == {"foo": (CHAR,)}


def test_implicit_signals_cannot_be_declared():
    """'We do not bother to list these exceptions explicitly.'"""
    for reserved in ("unavailable", "failure"):
        with pytest.raises(SignatureError):
            HandlerType(signals={reserved: []})
        with pytest.raises(SignatureError):
            PromiseType(signals={reserved: []})


def test_implicit_signals_always_declared():
    ht = HandlerType(args=[INT])
    assert ht.declares_signal("unavailable")
    assert ht.declares_signal("failure")
    assert not ht.declares_signal("foo")
    pt = ht.promise_type()
    assert pt.declares_signal("unavailable")
    assert pt.declares_signal("failure")


def test_handler_type_equality():
    a = HandlerType(args=[INT], returns=[REAL], signals={"e": [STRING]})
    b = HandlerType(args=[INT], returns=[REAL], signals={"e": [STRING]})
    assert a == b
    assert hash(a) == hash(b)
    assert a != HandlerType(args=[INT], returns=[REAL])


def test_has_results_determines_send_eligibility():
    assert HandlerType(returns=[INT]).has_results
    assert not HandlerType().has_results


def test_port_ref_type():
    ht = HandlerType(args=[CHAR])
    port = PortRefType(ht)
    assert port.handler_type == ht
    assert port == PortRefType(HandlerType(args=[CHAR]))
    assert port != PortRefType(HandlerType(args=[INT]))
    assert port.name().startswith("port")


def test_port_ref_requires_handler_type():
    with pytest.raises(SignatureError):
        PortRefType(INT)


def test_handler_and_promise_are_first_class_types():
    ht = HandlerType(args=[INT])
    pt = ht.promise_type()
    assert isinstance(ht, Type)
    assert isinstance(pt, Type)
    assert ArrayOf(pt).name() == "array[promise]"


def test_user_type_construction():
    ut = UserType("money", STRING, str, lambda s: s)
    assert ut.name() == "money"
    assert ut.external == STRING


def test_user_type_external_must_be_concrete():
    with pytest.raises(SignatureError):
        UserType("bad", ANY, str, str)
    with pytest.raises(SignatureError):
        UserType("worse", UserType("inner", STRING, str, str), str, str)


def test_invalid_signature_parts_rejected():
    with pytest.raises(SignatureError):
        HandlerType(args=["int"])
    with pytest.raises(SignatureError):
        HandlerType(signals={"e": ["char"]})
