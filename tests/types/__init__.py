"""Test package."""
