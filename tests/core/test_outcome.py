"""Unit tests for call outcomes."""

import pytest

from repro.core import Failure, Outcome, Signal, Unavailable


def test_normal_outcome_results():
    outcome = Outcome.normal(1, 2)
    assert outcome.is_normal
    assert not outcome.is_exceptional
    assert outcome.results == (1, 2)
    assert outcome.condition == "normal"


def test_exceptional_outcome():
    outcome = Outcome.exceptional(Signal("foo", "x"))
    assert outcome.is_exceptional
    assert outcome.condition == "foo"
    assert outcome.exception.exception_args() == ("x",)


def test_unavailable_and_failure_constructors():
    assert isinstance(Outcome.unavailable().exception, Unavailable)
    assert isinstance(Outcome.failure("why").exception, Failure)
    assert Outcome.failure("why").exception.reason == "why"


def test_outcome_requires_exactly_one_side():
    with pytest.raises(ValueError):
        Outcome()
    with pytest.raises(ValueError):
        Outcome(results=(1,), exception=Failure("x"))


def test_exception_must_be_argus_error():
    with pytest.raises(TypeError):
        Outcome(exception=ValueError("plain"))


def test_results_access_on_exceptional_rejected():
    outcome = Outcome.failure("x")
    with pytest.raises(ValueError):
        outcome.results


def test_exception_access_on_normal_rejected():
    with pytest.raises(ValueError):
        Outcome.normal(1).exception


def test_apply_unwraps_results():
    assert Outcome.normal().apply() is None
    assert Outcome.normal(5).apply() == 5
    assert Outcome.normal(1, 2).apply() == (1, 2)


def test_apply_raises_exception():
    with pytest.raises(Signal) as info:
        Outcome.signal("foo", 9).apply()
    assert info.value.condition == "foo"
    assert info.value.exception_args() == (9,)


def test_outcome_equality():
    assert Outcome.normal(1) == Outcome.normal(1)
    assert Outcome.normal(1) != Outcome.normal(2)
    assert Outcome.signal("a") == Outcome.signal("a")
    assert Outcome.signal("a") != Outcome.signal("b")
    assert Outcome.unavailable("x") == Outcome.unavailable("x")
    assert Outcome.unavailable("x") != Outcome.failure("x")
    assert Outcome.normal(1) != Outcome.failure("1")


def test_signal_reserved_names_rejected():
    with pytest.raises(ValueError):
        Signal("unavailable")
    with pytest.raises(ValueError):
        Signal("failure")


def test_signal_requires_name():
    with pytest.raises(TypeError):
        Signal("")
    with pytest.raises(TypeError):
        Signal(5)


def test_signal_str():
    assert str(Signal("foo")) == "foo"
    assert str(Signal("foo", 1, "x")) == "foo(1, 'x')"
