"""Repeated-claim semantics (paper §3).

"A promise may be claimed multiple times; the same outcome occurs each
time" — for both the value and the exception cases — and ``ready`` is a
non-blocking probe that never advances the simulation.
"""


from repro.core import Outcome, Promise, Unavailable
from repro.core.exceptions import Signal


def test_claim_many_times_returns_identical_value(env):
    promise = Promise(env)
    promise.resolve_normal(42)
    values = []

    def claimer():
        for _ in range(25):
            value = yield promise.claim()
            values.append(value)

    env.process(claimer())
    env.run()
    assert values == [42] * 25
    assert promise.claim_count == 25


def test_claim_many_times_raises_identical_exception(env):
    promise = Promise(env)
    promise.resolve_exceptional(Unavailable("link died"))
    seen = []

    def claimer():
        for _ in range(10):
            try:
                yield promise.claim()
            except Unavailable as exc:
                seen.append((exc.condition, exc.args))

    env.process(claimer())
    env.run()
    assert seen == [("unavailable", ("link died",))] * 10


def test_claims_before_and_after_resolution_agree(env):
    """Blocked claims and post-resolution claims deliver the same value."""
    promise = Promise(env)
    results = []

    def early(tag):
        value = yield promise.claim()
        results.append((tag, env.now, value))

    for index in range(3):
        env.process(early("early%d" % index))

    def resolver():
        yield env.timeout(5.0)
        promise.resolve_normal("answer")

    def late():
        yield env.timeout(9.0)
        value = yield promise.claim()
        results.append(("late", env.now, value))

    env.process(resolver())
    env.process(late())
    env.run()
    assert [entry for entry in results if entry[0].startswith("early")] == [
        ("early0", 5.0, "answer"),
        ("early1", 5.0, "answer"),
        ("early2", 5.0, "answer"),
    ]
    assert ("late", 9.0, "answer") in results


def test_repeated_claim_of_signal_preserves_arguments(env):
    promise = Promise(env)
    promise.resolve(Outcome.signal("not_possible", "because"))
    caught = []

    def claimer():
        for _ in range(5):
            try:
                yield promise.claim()
            except Signal as sig:
                caught.append((sig.condition, sig.exception_args()))

    env.process(claimer())
    env.run()
    assert caught == [("not_possible", ("because",))] * 5


def test_outcome_object_is_stable_across_claims(env):
    promise = Promise(env)
    promise.resolve_normal(7)
    first = promise.outcome()
    for _ in range(4):
        promise.claim()
    assert promise.outcome() is first


def test_ready_never_blocks_or_schedules(env):
    promise = Promise(env)
    before = env.queued_event_count()
    assert promise.ready() is False
    # No time passed, nothing was scheduled: ready is a pure probe.
    assert env.now == 0.0
    assert env.queued_event_count() == before
    promise.resolve_normal(1)
    assert promise.ready() is True
    assert env.queued_event_count() == before
    assert env.now == 0.0


def test_claim_count_tracks_every_claim(env):
    promise = Promise(env)
    promise.claim()
    promise.claim()
    promise.resolve_normal(0)
    promise.claim()
    assert promise.claim_count == 3
