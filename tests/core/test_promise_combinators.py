"""Property tests for the promise combinator algebra (PR 6, satellite 1).

Seeded randomized tests (plain ``random.Random``, no hypothesis): the
invariants of ``when_resolved``/``when_fulfilled``/``when_broken`` and the
``all``/``any``/``race`` gathers must hold for arbitrary mixes of fresh,
already-resolved, broken and duplicate inputs, and for callbacks
registered before or after resolution.

The oracle for gather semantics is the *delivery order* the vat
guarantees: continuations of already-ready promises fire in registration
order, continuations of pending promises fire in resolution-time order.
The generators below resolve every pending promise at a distinct time, so
the expected winner of every gather is computable without touching
kernel internals.
"""

import random

import pytest

from repro.core.exceptions import PromiseError, Signal
from repro.core.outcome import Outcome
from repro.core.promise import Promise
from repro.sim.kernel import Environment

N_SEEDS = 25


def fresh_env():
    return Environment()


# ----------------------------------------------------------------------
# when_resolved fires exactly once per registration
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_when_resolved_fires_exactly_once(seed):
    rng = random.Random(1000 + seed)
    env = fresh_env()
    n = rng.randint(1, 25)
    promises = [Promise(env) for _ in range(n)]
    fires = {}  # (promise index, registration) -> count

    def register(index, reg):
        fires[(index, reg)] = 0

        def cb(outcome, key=(index, reg)):
            assert outcome.is_normal
            fires[key] += 1

        promises[index].when_resolved(cb)

    # Some promises resolve before any registration, some after some
    # registrations, some only after extra late registrations.
    pre_resolved = {i for i in range(n) if rng.random() < 0.3}
    for index in pre_resolved:
        promises[index].resolve(Outcome.normal(index))
    registrations = 0
    for index in range(n):
        for reg in range(rng.randint(1, 3)):
            register(index, reg)
            registrations += 1
    times = rng.sample(range(1, 10 * n + 1), n)
    for index in range(n):
        if index not in pre_resolved:
            env.call_in(times[index], promises[index].resolve,
                        Outcome.normal(index))
    env.run()
    # Late registrations on long-resolved promises still fire (via vat).
    for index in rng.sample(range(n), min(5, n)):
        register(index, "late")
        registrations += 1
    env.run()
    assert len(fires) == registrations
    assert all(count == 1 for count in fires.values()), fires


def test_registration_is_never_synchronous():
    env = fresh_env()
    ready = Promise.make_fulfilled(env, 42)
    log = []
    ready.when_resolved(lambda outcome: log.append(outcome.results))
    ready.on_resolved(lambda outcome: log.append("raw"))
    assert log == []  # deferred to the vat even though already ready
    env.run()
    assert log == [(42,), "raw"]


def test_same_promise_callbacks_fire_in_registration_order():
    env = fresh_env()
    promise = Promise(env)
    log = []
    for tag in range(6):
        promise.when_resolved(lambda _o, tag=tag: log.append(tag))
    promise.resolve(Outcome.normal())
    env.run()
    assert log == list(range(6))


# ----------------------------------------------------------------------
# chained derived promises resolve in causal order
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_chains_resolve_in_causal_order(seed):
    rng = random.Random(2000 + seed)
    env = fresh_env()
    roots = [Promise(env) for _ in range(rng.randint(1, 5))]
    log = []
    parents = {}  # node id -> parent node id

    def grow(promise, node, depth):
        if depth == 0:
            return
        for branch in range(rng.randint(1, 2)):
            child = (node, branch)
            parents[child] = node
            derived = promise.when_fulfilled(
                lambda value, child=child: log.append(child) or value + 1
            )
            grow(derived, child, depth - 1)

    for index, root in enumerate(roots):
        grow(root, ("root", index), rng.randint(1, 3))
    order = list(range(len(roots)))
    rng.shuffle(order)
    for position, index in enumerate(order):
        env.call_in(position + 1.0, roots[index].resolve, Outcome.normal(0))
    env.run()
    assert set(log) == set(parents)  # every chained callback fired
    assert len(log) == len(parents)
    position = {node: i for i, node in enumerate(log)}
    for child, parent in parents.items():
        if parent in position:  # roots are not in the log
            assert position[child] > position[parent], (
                "derived %r fired before its parent %r" % (child, parent)
            )


def test_chain_values_flow_and_flatten():
    env = fresh_env()
    source = Promise(env)
    inner = Promise(env)
    # Returning a Promise from a callback forwards its eventual outcome.
    chained = source.when_fulfilled(lambda value: inner)
    final = chained.when_fulfilled(lambda value: value * 10)
    source.resolve(Outcome.normal(1))
    env.run()
    assert not chained.ready()  # waiting on the inner promise
    inner.resolve(Outcome.normal(7))
    env.run()
    assert final.outcome().results == (70,)


# ----------------------------------------------------------------------
# error propagation through chains
# ----------------------------------------------------------------------

def test_when_fulfilled_passes_broken_through():
    env = fresh_env()
    broken = Promise.make_broken(env, Signal("boom"))
    skipped = []
    derived = broken.when_fulfilled(lambda value: skipped.append(value))
    env.run()
    assert skipped == []
    assert derived.outcome().exception.condition == "boom"


def test_when_broken_recovers_and_passes_normal_through():
    env = fresh_env()
    broken = Promise.make_broken(env, Signal("boom"))
    recovered = broken.when_broken(lambda exc: "saw:%s" % exc.condition)
    fine = Promise.make_fulfilled(env, 5)
    untouched = fine.when_broken(lambda exc: "never")
    env.run()
    assert recovered.outcome().results == ("saw:boom",)
    assert untouched.outcome().results == (5,)


def test_callback_raising_argus_error_breaks_derived():
    env = fresh_env()
    source = Promise.make_fulfilled(env, 1)

    def explode(value):
        raise Signal("deliberate")

    derived = source.when_fulfilled(explode)
    env.run()
    assert derived.outcome().exception.condition == "deliberate"


def test_callback_raising_plain_exception_becomes_failure():
    env = fresh_env()
    source = Promise.make_fulfilled(env, 1)
    derived = source.when_fulfilled(lambda value: 1 / 0)
    env.run()
    outcome = derived.outcome()
    assert outcome.condition == "failure"


def test_pre_resolved_constructors_resolve_once():
    env = fresh_env()
    ready = Promise.make_fulfilled(env, 3)
    assert ready.ready() and ready.outcome().results == (3,)
    with pytest.raises(PromiseError):
        ready.resolve(Outcome.normal(4))


# ----------------------------------------------------------------------
# gathers: all / any / race
# ----------------------------------------------------------------------

def _build_inputs(env, rng):
    """A random mix of pending / fulfilled / broken promises plus
    duplicates; returns (inputs, delivery) where *delivery* is the
    index order in which the vat delivers their outcomes."""
    base = []
    n = rng.randint(1, 8)
    for i in range(n):
        kind = rng.choice(["pending", "fulfilled", "broken"])
        if kind == "fulfilled":
            base.append((Promise.make_fulfilled(env, i), "ok", i))
        elif kind == "broken":
            base.append(
                (Promise.make_broken(env, Signal("err%d" % i)), "err%d" % i, None)
            )
        else:
            base.append((Promise(env), "ok", i))
    inputs = list(base)
    for _ in range(rng.randint(0, 2)):  # duplicates are legal inputs
        inputs.append(rng.choice(base))
    pending = [k for k, (p, _t, _v) in enumerate(inputs) if not p.ready()]
    # Resolve pending promises at distinct times, shuffled; duplicates of
    # a pending promise share its resolution.
    seen = set()
    times = iter(rng.sample(range(1, 50), len(pending)))
    schedule = []
    for k in pending:
        promise, tag, value = inputs[k]
        if id(promise) in seen:
            continue
        seen.add(id(promise))
        when = next(times)
        if rng.random() < 0.25:
            env.call_in(when, promise.resolve,
                        Outcome.exceptional(Signal("late%d" % k)))
            schedule.append((when, id(promise), "late%d" % k, None))
        else:
            env.call_in(when, promise.resolve, Outcome.normal(value))
            schedule.append((when, id(promise), "ok", value))
    resolved_tag = {pid: (tag, value) for _w, pid, tag, value in schedule}
    # Delivery order: already-ready inputs in input order, then pending
    # inputs (including duplicates) ordered by resolution time.
    when_of = {pid: when for when, pid, _t, _v in schedule}
    ready_first = [k for k, (p, _t, _v) in enumerate(inputs) if p.ready()]
    late = sorted(
        (k for k, (p, _t, _v) in enumerate(inputs) if not p.ready()),
        key=lambda k: (when_of[id(inputs[k][0])], k),
    )
    final = []
    for k, (promise, tag, value) in enumerate(inputs):
        if id(promise) in resolved_tag:
            tag, value = resolved_tag[id(promise)]
        final.append((promise, tag, value))
    return final, ready_first + late


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_gather_semantics_match_delivery_order_oracle(seed):
    rng = random.Random(3000 + seed)
    env = fresh_env()
    inputs, delivery = _build_inputs(env, rng)
    all_p = Promise.all(env, [p for p, _t, _v in inputs])
    any_p = Promise.any(env, [p for p, _t, _v in inputs])
    race_p = Promise.race(env, [p for p, _t, _v in inputs])
    env.run()
    tags = [inputs[k][1] for k in delivery]
    # all: first delivered error wins, else the values in input order.
    first_err = next((t for t in tags if t != "ok"), None)
    if first_err is not None:
        assert all_p.outcome().exception.condition == first_err
    else:
        assert all_p.outcome().results == (
            [value for _p, _t, value in inputs],
        )
    # any: first delivered ok wins; all-broken -> first delivered error.
    first_ok = next(
        (inputs[k][2] for k in delivery if inputs[k][1] == "ok"), None
    )
    if first_ok is not None:
        assert any_p.outcome().results == (first_ok,)
    else:
        assert any_p.outcome().exception.condition == tags[0]
    # race: settles exactly like the first delivery.
    winner = inputs[delivery[0]]
    if winner[1] == "ok":
        assert race_p.outcome().results == (winner[2],)
    else:
        assert race_p.outcome().exception.condition == winner[1]


def test_all_with_duplicates_counts_each_slot():
    env = fresh_env()
    promise = Promise(env)
    gathered = Promise.all(env, [promise, promise, promise])
    promise.resolve(Outcome.normal(9))
    env.run()
    assert gathered.outcome().results == ([9, 9, 9],)


def test_all_breaks_as_soon_as_any_input_breaks():
    env = fresh_env()
    slow = Promise(env)  # never resolves
    bad = Promise(env)
    gathered = Promise.all(env, [slow, bad])
    bad.resolve(Outcome.exceptional(Signal("early")))
    env.run()
    assert gathered.outcome().exception.condition == "early"


def test_any_waits_for_a_fulfilment_past_breaks():
    env = fresh_env()
    first = Promise(env)
    second = Promise(env)
    gathered = Promise.any(env, [first, second])
    first.resolve(Outcome.exceptional(Signal("nope")))
    env.run()
    assert not gathered.ready()  # one input still might fulfil
    second.resolve(Outcome.normal("yes"))
    env.run()
    assert gathered.outcome().results == ("yes",)


def test_empty_gathers():
    env = fresh_env()
    assert Promise.all(env, []).outcome().results == ([],)
    assert Promise.any(env, []).outcome().condition == "failure"
    assert Promise.race(env, []).outcome().condition == "failure"


def test_race_tie_goes_to_first_registered():
    env = fresh_env()
    a = Promise.make_fulfilled(env, "a")
    b = Promise.make_fulfilled(env, "b")
    gathered = Promise.race(env, [b, a])
    env.run()
    assert gathered.outcome().results == ("b",)
