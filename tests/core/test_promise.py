"""Unit tests for the promise data type (paper §3)."""

import pytest

from repro.core import (
    BLOCKED,
    READY,
    Failure,
    Outcome,
    Promise,
    PromiseError,
    PromiseNotReady,
    Signal,
    Unavailable,
)
from repro.types import CHAR, INT, REAL, HandlerType, PromiseType


def test_promise_starts_blocked(env):
    promise = Promise(env)
    assert promise.state == BLOCKED
    assert not promise.ready()


def test_resolve_makes_ready(env):
    promise = Promise(env)
    promise.resolve(Outcome.normal(5))
    assert promise.state == READY
    assert promise.ready()
    assert promise.outcome() == Outcome.normal(5)


def test_outcome_before_ready_rejected(env):
    with pytest.raises(PromiseNotReady):
        Promise(env).outcome()


def test_value_never_changes(env):
    """'Once a promise is ready it remains ready from then on and its
    value never changes again.'"""
    promise = Promise(env)
    promise.resolve(Outcome.normal(1))
    with pytest.raises(PromiseError):
        promise.resolve(Outcome.normal(2))
    assert promise.outcome() == Outcome.normal(1)


def test_claim_blocks_until_ready(env):
    promise = Promise(env)
    log = []

    def claimer(env):
        value = yield promise.claim()
        log.append((env.now, value))

    env.process(claimer(env))

    def resolver(env):
        yield env.timeout(4.0)
        promise.resolve_normal("late")

    env.process(resolver(env))
    env.run()
    assert log == [(4.0, "late")]


def test_claim_multiple_times_same_outcome(env):
    """'A promise can be claimed multiple times; the same outcome will
    occur each time.'"""
    promise = Promise(env)
    promise.resolve_normal(7)

    def claimer(env):
        first = yield promise.claim()
        second = yield promise.claim()
        return (first, second)

    assert env.run(until=env.process(claimer(env))) == (7, 7)
    assert promise.claim_count == 2


def test_claim_raises_user_signal(env):
    promise = Promise(env)
    promise.resolve_exceptional(Signal("foo", "detail"))

    def claimer(env):
        try:
            yield promise.claim()
        except Signal as sig:
            return (sig.condition, sig.exception_args())

    assert env.run(until=env.process(claimer(env))) == ("foo", ("detail",))


def test_claim_raises_unavailable_and_failure(env):
    for exc_type, outcome in [
        (Unavailable, Outcome.unavailable("net")),
        (Failure, Outcome.failure("gone")),
    ]:
        promise = Promise(env)
        promise.resolve(outcome)

        def claimer(env, promise=promise, exc_type=exc_type):
            try:
                yield promise.claim()
            except exc_type as exc:
                return exc.reason

        assert env.run(until=env.process(claimer(env))) in ("net", "gone")


def test_claim_unwraps_result_counts(env):
    for results, expected in [((), None), ((5,), 5), ((1, 2), (1, 2))]:
        promise = Promise(env)
        promise.resolve(Outcome.normal(*results))

        def claimer(env, promise=promise):
            value = yield promise.claim()
            return value

        assert env.run(until=env.process(claimer(env))) == expected


def test_wait_delivers_outcome_without_raising(env):
    promise = Promise(env)
    promise.resolve_exceptional(Failure("x"))

    def waiter(env):
        outcome = yield promise.wait()
        return outcome.condition

    assert env.run(until=env.process(waiter(env))) == "failure"


def test_typed_promise_accepts_conforming_outcome(env):
    pt = PromiseType(returns=[REAL], signals={"foo": [CHAR]})
    promise = Promise(env, pt)
    promise.resolve(Outcome.normal(2.5))
    assert promise.outcome().results == (2.5,)


def test_typed_promise_converts_bad_results_to_failure(env):
    """A nonconforming reply becomes failure('could not decode ...')."""
    pt = PromiseType(returns=[REAL])
    promise = Promise(env, pt)
    promise.resolve(Outcome.normal("not a real"))
    outcome = promise.outcome()
    assert outcome.is_exceptional
    assert isinstance(outcome.exception, Failure)
    assert "could not decode" in outcome.exception.reason


def test_typed_promise_rejects_undeclared_signal(env):
    pt = PromiseType(returns=[REAL], signals={"foo": []})
    promise = Promise(env, pt)
    promise.resolve(Outcome.signal("bar"))
    outcome = promise.outcome()
    assert isinstance(outcome.exception, Failure)
    assert "undeclared" in outcome.exception.reason


def test_typed_promise_checks_signal_arg_types(env):
    pt = PromiseType(signals={"foo": [CHAR]})
    promise = Promise(env, pt)
    promise.resolve(Outcome.signal("foo", "too long"))
    assert isinstance(promise.outcome().exception, Failure)


def test_typed_promise_allows_system_exceptions(env):
    pt = PromiseType(returns=[INT])
    promise = Promise(env, pt)
    promise.resolve(Outcome.unavailable())
    assert isinstance(promise.outcome().exception, Unavailable)


def test_resolve_requires_outcome(env):
    with pytest.raises(TypeError):
        Promise(env).resolve("not an outcome")


def test_ptype_must_be_promise_type(env):
    with pytest.raises(TypeError):
        Promise(env, ptype=HandlerType(args=[INT]))


def test_on_ready_callback_runs_immediately_if_ready(env):
    promise = Promise(env)
    promise.resolve_normal(1)
    seen = []
    promise.on_ready(lambda p: seen.append(p.outcome().apply()))
    assert seen == [1]


def test_on_ready_callback_runs_at_resolution(env):
    promise = Promise(env)
    seen = []
    promise.on_ready(lambda p: seen.append(p.outcome().apply()))

    def resolver(env):
        yield env.timeout(1.0)
        promise.resolve_normal(2)

    env.process(resolver(env))
    env.run()
    assert seen == [2]


def test_all_ready_combinator(env):
    promises = [Promise(env) for _ in range(3)]

    def resolver(env):
        for index, promise in enumerate(promises):
            yield env.timeout(1.0)
            promise.resolve_normal(index)

    env.process(resolver(env))

    def waiter(env):
        yield Promise.all_ready(env, promises)
        return env.now

    assert env.run(until=env.process(waiter(env))) == 3.0


def test_any_ready_combinator(env):
    promises = [Promise(env) for _ in range(3)]

    def resolver(env):
        yield env.timeout(2.0)
        promises[1].resolve_normal("first")

    env.process(resolver(env))

    def waiter(env):
        yield Promise.any_ready(env, promises)
        return env.now

    assert env.run(until=env.process(waiter(env))) == 2.0


def test_multiple_claimers_all_resolved(env):
    promise = Promise(env)
    results = []

    def claimer(env, tag):
        value = yield promise.claim()
        results.append((tag, value))

    for tag in range(3):
        env.process(claimer(env, tag))

    def resolver(env):
        yield env.timeout(1.0)
        promise.resolve_normal("shared")

    env.process(resolver(env))
    env.run()
    assert sorted(results) == [(0, "shared"), (1, "shared"), (2, "shared")]


def test_repr_shows_state(env):
    promise = Promise(env, label="demo")
    assert "blocked" in repr(promise)
    promise.resolve_normal(None)
    assert "ready" in repr(promise)
