"""Test package."""
