"""The ArgusSystem facade: parameter plumbing and lookups."""

import pytest

from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType


def test_network_parameters_plumbed():
    system = ArgusSystem(
        latency=7.0, bandwidth=123.0, kernel_overhead=0.9, jitter=2.0, loss_rate=0.25
    )
    assert system.network.latency == 7.0
    assert system.network.bandwidth == 123.0
    assert system.network.kernel_overhead == 0.9
    assert system.network.jitter == 2.0
    assert system.network.loss_rate == 0.25


def test_seed_plumbed_to_rng():
    assert ArgusSystem(seed=42).rng.seed == 42


def test_stream_config_plumbed_to_senders():
    config = StreamConfig(batch_size=3)
    system = ArgusSystem(stream_config=config)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.01)
        return x

    server.create_handler("echo", HandlerType(args=[INT], returns=[INT]), echo)
    client = system.create_guardian("client")

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        assert ref.stream_sender.config.batch_size == 3
        yield ctx.sleep(0)

    process = client.spawn(main)
    system.run(until=process)


def test_lookup_returns_descriptor():
    system = ArgusSystem()
    guardian = system.create_guardian("g")

    def noop(ctx, x):
        yield ctx.compute(0.01)
        return x

    guardian.create_handler("h", HandlerType(args=[INT], returns=[INT]), noop)
    descriptor = system.lookup("g", "h")
    assert descriptor.port_id == "h"
    assert descriptor.node == "node:g"


def test_lookup_unknown_raises():
    system = ArgusSystem()
    with pytest.raises(KeyError):
        system.lookup("nobody", "h")


def test_now_tracks_env():
    system = ArgusSystem()
    assert system.now == 0.0
    system.run(until=5.0)
    assert system.now == 5.0


def test_stats_snapshot_shape():
    stats = ArgusSystem().stats()
    assert set(stats) >= {
        "messages_sent",
        "messages_delivered",
        "bytes_sent",
        "kernel_calls",
    }


def test_process_spawn_overhead_plumbed():
    system = ArgusSystem(process_spawn_overhead=0.25)
    assert system.process_spawn_overhead == 0.25
