"""Per-stream sequencing and cross-stream concurrency (§2.1).

These are the mailer-guardian claims: one client's calls on a stream run
in order; different clients' (or different agents') calls overlap.
"""


from repro.apps import build_mailer
from repro.core import Signal
from repro.entities import ArgusSystem
from repro.types import INT, HandlerType


def test_same_stream_calls_execute_in_order():
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    mailer = build_mailer(system, handler_cost=1.0)
    client = system.create_guardian("client")

    def main(ctx):
        send_mail = ctx.lookup("mailer", "send_mail")
        for index in range(4):
            send_mail.stream_statement("alice", "msg%d" % index)
        yield send_mail.synch()
        return list(mailer.state["mail"]["alice"])

    process = client.spawn(main)
    assert system.run(until=process) == ["msg0", "msg1", "msg2", "msg3"]
    # Sequential execution: never more than one call at a time.
    assert mailer.state["max_concurrent"] == 1


def test_different_clients_overlap():
    """C1's and C2's calls are on different streams and may run
    concurrently."""
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    mailer = build_mailer(system, handler_cost=5.0)
    c1 = system.create_guardian("c1")
    c2 = system.create_guardian("c2")

    def client_main(ctx):
        send_mail = ctx.lookup("mailer", "send_mail")
        yield send_mail.call(ctx.guardian.name == "c1" and "alice" or "bob", "hi")

    p1 = c1.spawn(client_main)
    p2 = c2.spawn(client_main)
    system.run(until=system.env.all_of([p1, p2]))
    assert mailer.state["max_concurrent"] == 2


def test_same_client_different_agents_overlap():
    """'Calls made by different agents to ports in the same group are
    sent on different streams.'"""
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    mailer = build_mailer(system, handler_cost=5.0)
    client = system.create_guardian("client")

    def main(ctx):
        sibling = ctx.spawn_context("other-activity")
        a = ctx.lookup("mailer", "send_mail")
        b = sibling.lookup("mailer", "send_mail")
        a.stream_statement("alice", "from-a")
        b.stream_statement("bob", "from-b")
        yield a.synch()
        yield b.synch()

    process = client.spawn(main)
    system.run(until=process)
    assert mailer.state["max_concurrent"] == 2


def test_mailer_session_example():
    """The full §2.1 scenario, with observable interleaving."""
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    mailer = build_mailer(system, handler_cost=2.0)
    c1 = system.create_guardian("c1")
    c2 = system.create_guardian("c2")

    def c1_main(ctx):
        send_mail = ctx.lookup("mailer", "send_mail")
        read_mail = ctx.lookup("mailer", "read_mail")
        send_mail.stream_statement("alice", "hello")
        # read_mail on the SAME stream waits for send_mail to complete.
        messages = yield read_mail.call("alice")
        return messages

    def c2_main(ctx):
        read_mail = ctx.lookup("mailer", "read_mail")
        messages = yield read_mail.call("bob")
        return messages

    p1 = c1.spawn(c1_main)
    p2 = c2.spawn(c2_main)
    system.run(until=system.env.all_of([p1, p2]))
    assert p1.value == ["hello"]  # sequencing: the send happened first
    assert p2.value == []


def test_no_such_user_signal():
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    build_mailer(system)
    client = system.create_guardian("client")

    def main(ctx):
        read_mail = ctx.lookup("mailer", "read_mail")
        try:
            yield read_mail.call("mallory")
            return "normal"
        except Signal as sig:
            return sig.condition

    process = client.spawn(main)
    assert system.run(until=process) == "no_such_user"


def test_streams_to_different_groups_are_independent():
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    guardian = system.create_guardian("g")
    guardian.state["log"] = []

    def slow(ctx, x):
        yield ctx.compute(10.0)
        ctx.guardian.state["log"].append(("slow", x))
        return x

    def fast(ctx, x):
        yield ctx.compute(0.1)
        ctx.guardian.state["log"].append(("fast", x))
        return x

    echo_type = HandlerType(args=[INT], returns=[INT])
    guardian.create_handler("slow", echo_type, slow, group="g1")
    guardian.create_handler("fast", echo_type, fast, group="g2")
    client = system.create_guardian("client")

    def main(ctx):
        slow_ref = ctx.lookup("g", "slow")
        fast_ref = ctx.lookup("g", "fast")
        p_slow = slow_ref.stream(1)
        p_fast = fast_ref.stream(2)
        slow_ref.flush()
        fast_ref.flush()
        yield p_fast.claim()
        # Fast (different group/stream) finished while slow still runs.
        assert not p_slow.ready()
        yield p_slow.claim()

    process = client.spawn(main)
    system.run(until=process)
    assert guardian.state["log"] == [("fast", 2), ("slow", 1)]
