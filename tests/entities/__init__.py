"""Test package."""
