"""Guardians, ports, groups, agents (§2, §2.1)."""

import pytest

from repro.core import Failure
from repro.entities import Agent
from repro.types import INT, HandlerType

ECHO = HandlerType(args=[INT], returns=[INT])


def _noop_handler(ctx, x):
    yield ctx.compute(0.01)
    return x


def test_create_guardian_creates_node(system):
    guardian = system.create_guardian("g")
    assert guardian.node.name == "node:g"
    assert guardian.alive


def test_guardians_can_share_a_node(system):
    a = system.create_guardian("a", node="shared")
    b = system.create_guardian("b", node="shared")
    assert a.node is b.node


def test_duplicate_guardian_rejected(system):
    system.create_guardian("g")
    with pytest.raises(ValueError):
        system.create_guardian("g")


def test_unknown_guardian_lookup(system):
    with pytest.raises(KeyError):
        system.guardian("nope")


def test_create_handler_default_group(system):
    guardian = system.create_guardian("g")
    port = guardian.create_handler("echo", ECHO, _noop_handler)
    assert port.group.group_id == "main"
    assert guardian.descriptor("echo").port_id == "echo"


def test_create_handler_new_group(system):
    guardian = system.create_guardian("g")
    guardian.create_handler("echo", ECHO, _noop_handler, group="extra")
    assert "extra" in guardian.groups
    assert guardian.descriptor("echo", group="extra").group_id == "extra"


def test_duplicate_port_in_group_rejected(system):
    guardian = system.create_guardian("g")
    guardian.create_handler("echo", ECHO, _noop_handler)
    with pytest.raises(ValueError):
        guardian.create_handler("echo", ECHO, _noop_handler)


def test_duplicate_group_rejected(system):
    guardian = system.create_guardian("g")
    with pytest.raises(ValueError):
        guardian.create_group("main")


def test_descriptor_unknown_handler(system):
    guardian = system.create_guardian("g")
    with pytest.raises(KeyError):
        guardian.descriptor("ghost")
    with pytest.raises(KeyError):
        guardian.descriptor("ghost", group="main")


def test_descriptor_carries_type_fingerprint(system):
    guardian = system.create_guardian("g")
    guardian.create_handler("echo", ECHO, _noop_handler)
    descriptor = guardian.descriptor("echo")
    assert descriptor.handler_type == ECHO
    assert descriptor.node == "node:g"
    assert descriptor.group_address == "g:g"


def test_agents_are_unique():
    a = Agent("g")
    b = Agent("g")
    assert a != b
    assert a.agent_id != b.agent_id
    assert a == a
    assert len({a, b}) == 2


def test_each_spawn_gets_fresh_agent(system):
    guardian = system.create_guardian("g")
    seen = []

    def proc(ctx):
        seen.append(ctx.agent.agent_id)
        yield ctx.sleep(0)

    guardian.spawn(proc)
    guardian.spawn(proc)
    system.run()
    assert len(set(seen)) == 2


def test_spawn_on_destroyed_guardian_rejected(system):
    guardian = system.create_guardian("g")
    guardian.destroy()

    def proc(ctx):
        yield ctx.sleep(0)

    with pytest.raises(Failure):
        guardian.spawn(proc)


def test_node_crash_kills_guardian_processes(system):
    guardian = system.create_guardian("g")
    progress = []

    def proc(ctx):
        for _ in range(100):
            yield ctx.sleep(1.0)
            progress.append(ctx.now)

    guardian.spawn(proc)

    def crasher(env):
        yield env.timeout(3.5)
        guardian.node.crash()

    system.env.process(crasher(system.env))
    system.run()
    assert len(progress) == 3  # stopped at the crash


def test_state_dict_shared_between_handlers(system):
    guardian = system.create_guardian("g")

    def writer(ctx, x):
        ctx.guardian.state["value"] = x
        yield ctx.compute(0.01)
        return x

    def reader(ctx, _x):
        yield ctx.compute(0.01)
        return ctx.guardian.state.get("value", -1)

    guardian.create_handler("write", ECHO, writer)
    guardian.create_handler("read", ECHO, reader)
    client = system.create_guardian("client")

    def main(ctx):
        write = ctx.lookup("g", "write")
        read = ctx.lookup("g", "read")
        yield write.call(42)
        value = yield read.call(0)
        return value

    process = client.spawn(main)
    assert system.run(until=process) == 42
