"""The §2.1 parallel-execution override.

"We may provide some explicit overrides to allow more sophisticated
programs that process calls on the same stream in parallel."  With
``create_group(..., parallel=True)`` calls of one stream execute
concurrently, but promises still resolve in call order and replies still
travel in call order.
"""


from repro.entities import ArgusSystem
from repro.types import INT, HandlerType

SLEEPY = HandlerType(args=[INT, INT], returns=[INT])


def build(parallel):
    system = ArgusSystem(latency=1.0, kernel_overhead=0.05)
    server = system.create_guardian("server")
    server.create_group("work", parallel=parallel)
    server.state["active"] = 0
    server.state["max_active"] = 0
    server.state["completions"] = []

    def sleepy(ctx, ident, duration):
        state = ctx.guardian.state
        state["active"] += 1
        state["max_active"] = max(state["max_active"], state["active"])
        yield ctx.compute(float(duration))
        state["active"] -= 1
        state["completions"].append(ident)
        return ident

    server.create_handler("sleepy", SLEEPY, sleepy, group="work")
    return system, server


def run_calls(parallel, durations):
    system, server = build(parallel)

    def main(ctx):
        ref = ctx.lookup("server", "sleepy")
        promises = [
            ref.stream(index, duration) for index, duration in enumerate(durations)
        ]
        ref.flush()
        order = []
        values = []
        for index, promise in enumerate(promises):
            values.append((yield promise.claim()))
            # In-order release invariant must hold in both modes.
            assert all(p.ready() for p in promises[: index + 1])
        return values

    process = system.create_guardian("client").spawn(main)
    values = system.run(until=process)
    return system.now, server.state, values


def test_sequential_group_never_overlaps():
    duration, state, values = run_calls(False, [2, 2, 2, 2])
    assert state["max_active"] == 1
    assert values == [0, 1, 2, 3]


def test_parallel_group_overlaps_same_stream_calls():
    duration, state, values = run_calls(True, [2, 2, 2, 2])
    assert state["max_active"] == 4
    assert values == [0, 1, 2, 3]


def test_parallel_is_faster_for_slow_handlers():
    sequential_time, _s, _v = run_calls(False, [3, 3, 3])
    parallel_time, _s, _v = run_calls(True, [3, 3, 3])
    assert parallel_time < sequential_time


def test_parallel_replies_still_resolve_in_call_order():
    """A fast later call must not release before a slow earlier one."""
    system, server = build(True)

    def main(ctx):
        ref = ctx.lookup("server", "sleepy")
        slow = ref.stream(0, 5)
        fast = ref.stream(1, 0)
        ref.flush()
        # The fast call finishes first at the server...
        yield fast.claim()
        # ...but by the in-order rule, the slow one must be ready too.
        assert slow.ready()
        return (yield slow.claim())

    process = system.create_guardian("client").spawn(main)
    assert system.run(until=process) == 0
    # Execution genuinely overlapped and completed out of order.
    assert server.state["completions"] == [1, 0]


def test_parallel_exceptions_map_correctly():
    system = ArgusSystem(latency=1.0, kernel_overhead=0.05)
    server = system.create_guardian("server")
    server.create_group("work", parallel=True)

    from repro.core import Signal

    def moody(ctx, x, _d):
        yield ctx.compute(0.1)
        if x < 0:
            raise Signal("neg")
        return x

    server.create_handler(
        "moody",
        HandlerType(args=[INT, INT], returns=[INT], signals={"neg": []}),
        moody,
        group="work",
    )

    def main(ctx):
        ref = ctx.lookup("server", "moody")
        good = ref.stream(1, 0)
        bad = ref.stream(-1, 0)
        ref.flush()
        value = yield good.claim()
        try:
            yield bad.claim()
            return "normal"
        except Signal as sig:
            return (value, sig.condition)

    process = system.create_guardian("client").spawn(main)
    assert system.run(until=process) == (1, "neg")
