"""Stream-call semantics: promises, ordering, batching, sends (§2-§3)."""


from repro.core import Failure, Signal
from repro.streams import StreamConfig

from .helpers import build_echo_world, run_main


def test_stream_call_returns_blocked_promise_immediately():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        # The caller continues immediately; the promise is still blocked.
        assert not promise.ready()
        assert ctx.now == 0.0
        echo.flush()
        value = yield promise.claim()
        return value

    assert run_main(system, client, main) == 1


def test_rpc_waits_for_reply():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        value = yield echo.call(9)
        assert ctx.now > 0.0
        return value

    assert run_main(system, client, main) == 9


def test_promises_resolve_in_call_order():
    """'if the i+1st result is ready, then so is the ith.'"""
    system, server, client = build_echo_world()
    observed = []

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(8)]
        echo.flush()
        # Wait for the *last* promise, then check all earlier are ready.
        yield promises[-1].claim()
        observed.extend(promise.ready() for promise in promises)

    run_main(system, client, main)
    assert observed == [True] * 8


def test_claims_in_any_order():
    """'Claims can be done in any convenient order.'"""
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(5)]
        echo.flush()
        values = []
        for promise in reversed(promises):
            values.append((yield promise.claim()))
        return values

    assert run_main(system, client, main) == [4, 3, 2, 1, 0]


def test_batching_reduces_message_count():
    """Buffering amortizes per-message overhead (§2)."""
    n = 32
    unbuffered = StreamConfig().unbuffered()
    buffered = StreamConfig(batch_size=n, reply_batch_size=n, max_buffer_delay=50.0)
    counts = {}
    for name, config in [("rpc-like", unbuffered), ("stream", buffered)]:
        system, server, client = build_echo_world(stream_config=config)

        def main(ctx):
            echo = ctx.lookup("server", "echo")
            promises = [echo.stream(index) for index in range(n)]
            echo.flush()
            for promise in promises:
                yield promise.claim()

        run_main(system, client, main)
        counts[name] = system.stats()["messages_sent"]
    assert counts["stream"] < counts["rpc-like"] / 4


def test_statement_form_creates_no_promise():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        echo.stream_statement(5)
        yield echo.synch()
        return ctx.guardian.system.guardians["server"].state["echo_calls"]

    assert run_main(system, client, main) == 1


def test_no_result_handler_goes_as_send():
    """'whenever a stream call is made to a handler with no normal
    results, the Argus implementation makes the call as a send.'"""
    system, server, client = build_echo_world()

    def main(ctx):
        note = ctx.lookup("server", "note")
        promise = note.stream("hello")
        note.flush()
        value = yield promise.claim()  # send still resolves (normally, no data)
        yield note.synch()
        return (value, note.stream_sender.stats.sends_made)

    value, sends = run_main(system, client, main)
    assert value is None
    assert sends == 1
    assert server.state["notes"] == ["hello"]


def test_sends_omit_normal_replies():
    """Normal replies of sends never travel as reply entries."""
    config = StreamConfig(batch_size=64, max_buffer_delay=5.0, ack_delay=3.0)
    system, server, client = build_echo_world(stream_config=config)

    def main(ctx):
        note = ctx.lookup("server", "note")
        for index in range(16):
            note.send("note%d" % index)
        note.flush()
        yield note.synch()

    run_main(system, client, main)
    assert len(server.state["notes"]) == 16
    # Replies (if any packets flowed back) carried no entries, only acks.
    receivers = list(server.endpoint._receivers.values())
    assert receivers
    assert all(len(receiver._reply_log) == 0 for receiver in receivers)


def test_send_abnormal_termination_reports_back():
    """Sends report abnormal termination (the caller cares only then)."""
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        echo.send(-1)  # negative -> Signal("negative")
        try:
            yield echo.synch()
            return "normal"
        except Exception as exc:
            return type(exc).__name__

    assert run_main(system, client, main) == "ExceptionReply"


def test_exception_propagates_through_promise():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(-5)
        echo.flush()
        try:
            yield promise.claim()
        except Signal as sig:
            return sig.condition

    assert run_main(system, client, main) == "negative"


def test_encode_failure_raises_immediately_no_promise():
    """§3 step 1: encoding failure -> immediate failure, no promise."""
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        try:
            echo.stream("not an int")
            return "created a promise (wrong)"
        except Failure as failure:
            assert "could not encode" in failure.reason
            yield ctx.sleep(0)
            return "failed fast"

    assert run_main(system, client, main) == "failed fast"


def test_same_agent_same_group_shares_stream():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        note = ctx.lookup("server", "note")
        assert echo.stream_sender is note.stream_sender
        yield ctx.sleep(0)

    run_main(system, client, main)


def test_different_agents_use_different_streams():
    system, server, client = build_echo_world()

    def main(ctx):
        other = ctx.spawn_context("sibling")
        echo_a = ctx.lookup("server", "echo")
        echo_b = other.lookup("server", "echo")
        assert echo_a.stream_sender is not echo_b.stream_sender
        yield ctx.sleep(0)

    run_main(system, client, main)


def test_buffer_delay_sends_without_flush():
    """'Even without the flush, the system will send these messages
    eventually.'"""
    config = StreamConfig(batch_size=100, max_buffer_delay=3.0)
    system, server, client = build_echo_world(stream_config=config)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        # No flush: the buffer deadline must push it out.
        value = yield promise.claim()
        return (value, ctx.now)

    value, now = run_main(system, client, main)
    assert value == 1
    assert now >= 3.0  # waited for the buffer deadline


def test_interleaved_rpc_and_stream_calls_are_sequenced():
    system, server, client = build_echo_world()
    order = []

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        p1 = echo.stream(1)
        value = yield echo.call(2)  # RPC on the same stream
        order.append(("rpc", value))
        # The stream call made before the RPC must already be ready
        # (in-order processing and in-order reply release).
        assert p1.ready()
        order.append(("stream", (yield p1.claim())))

    run_main(system, client, main)
    assert order == [("rpc", 2), ("stream", 1)]
