"""The socket frame codec: round trips, torn reads, malformed input.

These tests are fully deterministic (no sockets, no clocks) and run in
tier-1; the real-socket integration lives in ``tests/rt`` behind the
``wallclock`` marker.
"""

import random
import struct

import pytest

from repro.encoding.errors import DecodeError
from repro.streams.frames import (
    FRAME_CALL,
    MAX_FRAME_BYTES,
    FrameAssembler,
    Hello,
    decode_body,
    encode_frame,
    encode_hello,
    encode_packet,
)
from repro.streams.wire import (
    KIND_RPC,
    KIND_SEND,
    KIND_STREAM,
    BreakNotice,
    CallEntry,
    CallPacket,
    ReplyEntry,
    ReplyPacket,
    StreamKey,
)


def make_key(**overrides):
    fields = dict(
        src_node="node:client",
        src_address="g:client",
        agent_id="client/7",
        dst_node="node:server",
        dst_address="g:server",
        group_id="main",
    )
    fields.update(overrides)
    return StreamKey(**fields)


def sample_call_packets():
    key = make_key()
    return [
        CallPacket(key, 0, [], ack_reply_seq=0),
        CallPacket(
            key,
            3,
            [
                CallEntry(1, "echo", KIND_STREAM, b"\x01\x02\x03", (7, 8, 0)),
                CallEntry(2, "put", KIND_SEND, b"", None),
                CallEntry(3, "get", KIND_RPC, b"\xff" * 100, (7, 9, 8)),
            ],
            ack_reply_seq=41,
            flush_replies=True,
            synch_seq=17,
            attempt=2,
        ),
        CallPacket(
            make_key(agent_id="agént/☃", group_id="grp"),
            1,
            [CallEntry(10**12, "h" * 50, KIND_STREAM, bytes(range(256)))],
            ack_reply_seq=10**12 - 1,
        ),
    ]


def sample_reply_packets():
    key = make_key()
    return [
        ReplyPacket(key, 0, [], ack_call_seq=0, completed_seq=0),
        ReplyPacket(
            key,
            2,
            [ReplyEntry(4, b"ok"), ReplyEntry(5, b"")],
            ack_call_seq=5,
            completed_seq=4,
            sack_ranges=((8, 9), (12, 15)),
            window=64,
        ),
        ReplyPacket(
            key,
            1,
            [],
            ack_call_seq=3,
            completed_seq=3,
            broken=BreakNotice(
                synchronous=True, after_seq=3, reason="no such port", permanent=True
            ),
        ),
        ReplyPacket(
            key,
            1,
            [],
            ack_call_seq=0,
            completed_seq=0,
            broken=BreakNotice(
                synchronous=False, after_seq=0, reason="crash ☠", permanent=False
            ),
            window=0,
        ),
    ]


def assert_packets_equal(a, b):
    assert type(a) is type(b)
    assert a.key == b.key
    assert a.incarnation == b.incarnation
    if isinstance(a, CallPacket):
        assert a.ack_reply_seq == b.ack_reply_seq
        assert a.flush_replies == b.flush_replies
        assert a.synch_seq == b.synch_seq
        assert a.attempt == b.attempt
        assert len(a.entries) == len(b.entries)
        for ea, eb in zip(a.entries, b.entries):
            assert (ea.seq, ea.port_id, ea.kind, bytes(ea.args_bytes), ea.span) == (
                eb.seq,
                eb.port_id,
                eb.kind,
                bytes(eb.args_bytes),
                eb.span,
            )
    else:
        assert a.ack_call_seq == b.ack_call_seq
        assert a.completed_seq == b.completed_seq
        assert a.sack_ranges == b.sack_ranges
        assert a.window == b.window
        assert (a.broken is None) == (b.broken is None)
        if a.broken is not None:
            assert (
                a.broken.synchronous,
                a.broken.after_seq,
                a.broken.reason,
                a.broken.permanent,
            ) == (
                b.broken.synchronous,
                b.broken.after_seq,
                b.broken.reason,
                b.broken.permanent,
            )
        assert len(a.entries) == len(b.entries)
        for ea, eb in zip(a.entries, b.entries):
            assert (ea.seq, bytes(ea.outcome_bytes)) == (eb.seq, bytes(eb.outcome_bytes))


ALL_PACKETS = sample_call_packets() + sample_reply_packets()


@pytest.mark.parametrize("index", range(len(ALL_PACKETS)))
def test_packet_round_trip(index):
    packet = ALL_PACKETS[index]
    body = encode_packet(packet)
    assert_packets_equal(packet, decode_body(body))


def test_hello_round_trip():
    body = encode_hello("node:écho-1")
    hello = decode_body(body)
    assert isinstance(hello, Hello)
    assert hello.node == "node:écho-1"


def test_encoding_is_deterministic():
    for packet in ALL_PACKETS:
        assert encode_packet(packet) == encode_packet(packet)


def test_assembler_byte_by_byte():
    bodies = [encode_packet(p) for p in ALL_PACKETS] + [encode_hello("n")]
    stream = b"".join(encode_frame(b) for b in bodies)
    assembler = FrameAssembler()
    out = []
    for i in range(len(stream)):
        out.extend(assembler.feed(stream[i : i + 1]))
    assert out == bodies
    assert assembler.pending_bytes == 0


def test_assembler_random_chunking():
    rng = random.Random(1234)
    bodies = [encode_packet(p) for p in ALL_PACKETS for _ in range(3)]
    stream = b"".join(encode_frame(b) for b in bodies)
    for _ in range(20):
        assembler = FrameAssembler()
        out = []
        pos = 0
        while pos < len(stream):
            step = rng.randint(1, 40)
            out.extend(assembler.feed(stream[pos : pos + step]))
            pos += step
        assert out == bodies


def test_assembler_single_feed_many_frames():
    bodies = [encode_hello("a"), encode_packet(ALL_PACKETS[1]), encode_hello("b")]
    stream = b"".join(encode_frame(b) for b in bodies)
    assert FrameAssembler().feed(stream) == bodies


def test_assembler_rejects_oversized_announcement():
    assembler = FrameAssembler()
    with pytest.raises(DecodeError):
        assembler.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))


def test_truncation_raises_decode_error():
    body = encode_packet(ALL_PACKETS[1])
    for cut in range(len(body)):
        with pytest.raises(DecodeError):
            decode_body(body[:cut])


def test_trailing_garbage_raises_decode_error():
    body = encode_packet(ALL_PACKETS[1])
    with pytest.raises(DecodeError):
        decode_body(body + b"\x00")


def test_unknown_frame_type_raises():
    with pytest.raises(DecodeError):
        decode_body(b"\x7fgarbage")


def test_unknown_call_kind_raises():
    body = bytearray(encode_packet(sample_call_packets()[1]))
    # Flip the first entry's kind byte (find it by re-encoding with a
    # sentinel port id would be brittle; instead corrupt every byte and
    # require that no corruption decodes to a *different* valid kind
    # silently while also round-tripping — decode must either raise or
    # produce a packet that re-encodes identically).
    for index in range(1, len(body)):
        corrupted = bytearray(body)
        corrupted[index] ^= 0xA5
        try:
            decoded = decode_body(bytes(corrupted))
        except DecodeError:
            continue
        if isinstance(decoded, (CallPacket, ReplyPacket)):
            assert encode_packet(decoded) == bytes(corrupted)


def test_invalid_utf8_raises():
    key_blob = encode_hello("x")
    # Replace the string payload with invalid UTF-8 of the same length.
    corrupted = key_blob[:-1] + b"\xff"
    with pytest.raises(DecodeError):
        decode_body(corrupted)


def test_empty_body_raises():
    with pytest.raises(DecodeError):
        decode_body(b"")


def test_zero_length_frame_yields_empty_body():
    assembler = FrameAssembler()
    bodies = assembler.feed(struct.pack(">I", 0))
    assert bodies == [b""]
    with pytest.raises(DecodeError):
        decode_body(bodies[0])
