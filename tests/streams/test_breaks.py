"""Broken streams: crashes, partitions, decode failures, restart (§2-§3)."""


from repro.core import Failure, Unavailable
from repro.encoding import failing_user_type
from repro.entities import ArgusSystem
from repro.net import schedule_crash, schedule_partition
from repro.streams import StreamConfig
from repro.types import HandlerType, INT, STRING

from .helpers import build_echo_world, run_main

#: Fast break detection for tests.
FAST = StreamConfig(batch_size=4, max_buffer_delay=1.0, rto=5.0, max_retries=2)


def test_partition_maps_to_unavailable():
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_partition(system.network, "node:client", "node:server", at=0.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        echo.flush()
        try:
            yield promise.claim()
            return "normal"
        except Unavailable as exc:
            return ("unavailable", ctx.now > 0)

    assert run_main(system, client, main) == ("unavailable", True)


def test_server_crash_maps_to_unavailable():
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_crash(system.network, "node:server", at=0.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        echo.flush()
        try:
            yield promise.claim()
            return "normal"
        except Unavailable:
            return "unavailable"

    assert run_main(system, client, main) == "unavailable"


def test_destroyed_guardian_maps_to_failure():
    """'failure means that the problem is permanent, e.g., the handler's
    guardian does not exist.'"""
    system, server, client = build_echo_world(stream_config=FAST)
    descriptor = server.descriptor("echo")
    server.destroy()

    def main(ctx):
        echo = ctx.bind(descriptor)
        promise = echo.stream(1)
        echo.flush()
        try:
            yield promise.claim()
            return "normal"
        except Failure as failure:
            return ("failure", "does not exist" in failure.reason)

    assert run_main(system, client, main) == ("failure", True)


def test_unknown_port_fails_that_call_only():
    system, server, client = build_echo_world(stream_config=FAST)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        bad_descriptor = echo.descriptor
        # Forge a descriptor for a non-existent port in the same group.
        from repro.encoding import PortDescriptor

        forged = PortDescriptor(
            bad_descriptor.node,
            bad_descriptor.group_address,
            bad_descriptor.group_id,
            "no_such_handler",
            "fp",
            echo.handler_type,
        )
        ghost = ctx.bind(forged)
        p_bad = ghost.stream(1)
        p_good = echo.stream(2)
        echo.flush()
        try:
            yield p_bad.claim()
            bad = "normal"
        except Failure as failure:
            bad = "does not exist" in failure.reason
        good = yield p_good.claim()
        return (bad, good)

    assert run_main(system, client, main) == (True, 2)


def test_calls_on_broken_stream_fail_fast_without_restart():
    """§3 step 1: 'if the stream being used is already broken, the call
    fails ... no promise object is created.'"""
    from dataclasses import replace

    config = replace(FAST, auto_restart=False)
    system, server, client = build_echo_world(stream_config=config)
    schedule_partition(system.network, "node:client", "node:server", at=0.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        echo.flush()
        try:
            yield promise.claim()
        except Unavailable:
            pass
        # The stream is now broken and stays broken (no auto-restart):
        try:
            echo.stream(2)
            return "promise created (wrong)"
        except Unavailable:
            return "failed fast"

    assert run_main(system, client, main) == "failed fast"


def test_auto_restart_reincarnates_stream():
    """'Broken streams are mapped into exceptions and then restarted
    automatically.'"""
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_partition(system.network, "node:client", "node:server", at=0.0, heal_at=30.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        echo.flush()
        try:
            yield promise.claim()
        except Unavailable:
            pass
        # Wait for the partition to heal, then the stream works again.
        yield ctx.sleep(40.0)
        value = yield echo.call(2)
        return (value, echo.stream_sender.incarnation)

    value, incarnation = run_main(system, client, main)
    assert value == 2
    assert incarnation >= 1


def test_manual_restart():
    system, server, client = build_echo_world(stream_config=FAST)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        echo.restart()  # breaks (outstanding call -> unavailable) + reincarnates
        try:
            yield promise.claim()
            first = "normal"
        except Unavailable:
            first = "unavailable"
        value = yield echo.call(2)
        return (first, value)

    assert run_main(system, client, main) == ("unavailable", 2)


def test_arg_decode_failure_breaks_stream_synchronously():
    """§3: decode failure at the receiver -> failure for that call, and
    the stream breaks so later calls are discarded."""
    fragile = failing_user_type(fail_decode=True)
    ht = HandlerType(args=[fragile], returns=[STRING])
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=FAST)
    server = system.create_guardian("server")

    def handle(ctx, value):
        yield ctx.compute(0.01)
        return "got %s" % value

    server.create_handler("take", ht, handle)
    client = system.create_guardian("client")

    def main(ctx):
        take = ctx.lookup("server", "take")
        p1 = take.stream("fine")
        p2 = take.stream("poison")  # decodes poorly at the receiver
        p3 = take.stream("after")
        take.flush()
        results = []
        for promise in (p1, p2, p3):
            try:
                results.append((yield promise.claim()))
            except Failure as failure:
                results.append("failure:" + ("decode" if "decode" in failure.reason else "?"))
            except Unavailable:
                results.append("unavailable")
        return results

    results = run_main(system, client, main)
    # Call 1 unaffected (synchronous break), call 2 fails, call 3 never ran.
    assert results[0] == "got fine"
    assert results[1] == "failure:decode"
    assert results[2] == "unavailable"


def test_reply_encode_failure_breaks_stream():
    """Encoding a *reply* fails at the receiver -> failure + break."""
    fragile = failing_user_type(fail_encode=True)
    ht = HandlerType(args=[STRING], returns=[fragile])
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=FAST)
    server = system.create_guardian("server")

    def produce(ctx, text):
        yield ctx.compute(0.01)
        return text  # "poison" fails at encode time

    server.create_handler("produce", ht, produce)
    client = system.create_guardian("client")

    def main(ctx):
        produce = ctx.lookup("server", "produce")
        p1 = produce.stream("poison")
        p2 = produce.stream("later")
        produce.flush()
        try:
            yield p1.claim()
            first = "normal"
        except Failure as failure:
            first = "could not encode" in failure.reason
        try:
            yield p2.claim()
            second = "normal"
        except (Failure, Unavailable):
            second = "dead"
        return (first, second)

    assert run_main(system, client, main) == (True, "dead")


def test_message_loss_recovered_by_retransmission():
    """Exactly-once delivery over a lossy network."""
    config = StreamConfig(batch_size=4, max_buffer_delay=1.0, rto=8.0, max_retries=10)
    system, server, client = build_echo_world(stream_config=config, loss_rate=0.25, seed=3)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(20)]
        echo.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values

    values = run_main(system, client, main)
    assert values == list(range(20))
    # Exactly-once: the handler ran once per call despite retransmissions.
    assert server.state["echo_calls"] == 20


def test_handler_crash_maps_to_failure():
    """A bug in handler code becomes failure, not a hung call."""
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=FAST)
    server = system.create_guardian("server")

    def buggy(ctx, x):
        yield ctx.compute(0.01)
        raise ZeroDivisionError("oops")

    server.create_handler("buggy", HandlerType(args=[INT], returns=[INT]), buggy)
    client = system.create_guardian("client")

    def main(ctx):
        buggy = ctx.lookup("server", "buggy")
        try:
            yield buggy.call(1)
            return "normal"
        except Failure as failure:
            return "crashed" in failure.reason

    assert run_main(system, client, main) is True


def test_break_resolves_all_outstanding_promises():
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_partition(system.network, "node:client", "node:server", at=0.5)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(6)]
        echo.flush()
        outcomes = []
        for promise in promises:
            try:
                outcomes.append((yield promise.claim()))
            except Unavailable:
                outcomes.append("unavailable")
        return outcomes

    outcomes = run_main(system, client, main)
    assert len(outcomes) == 6
    assert "unavailable" in outcomes  # at least the tail broke


def test_crash_never_duplicates_execution():
    """Exactly-once survives the nastiest interleaving: the call executes,
    its reply is lost, the receiver crashes, and the sender retransmits
    into the recovered node.  The retransmission must be refused (an
    asynchronous break), never re-executed."""
    from repro.entities import ArgusSystem

    config = StreamConfig(batch_size=1, max_buffer_delay=0.0, rto=6.0, max_retries=5)
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config)
    server = system.create_guardian("server")
    server.state["executed"] = []

    def record(ctx, x):
        ctx.guardian.state["executed"].append(x)
        yield ctx.compute(0.1)
        return x

    server.create_handler("record", HandlerType(args=[INT], returns=[INT]), record)
    client = system.create_guardian("client")

    # Drop the first reply: partition just after the request goes through.
    schedule_partition(system.network, "node:client", "node:server", at=1.3, heal_at=4.0)
    # The server crashes (losing receiver state) and recovers before the
    # sender's retransmission lands.
    schedule_crash(system.network, "node:server", at=4.5, recover_at=5.0)

    def main(ctx):
        ref = ctx.lookup("server", "record")
        promise = ref.stream(7)
        try:
            value = yield promise.claim()
            outcome = ("ok", value)
        except Unavailable:
            outcome = ("unavailable",)
        yield ctx.sleep(60.0)  # let any stray retransmissions settle
        return outcome

    process = client.spawn(main)
    outcome = system.run(until=process)
    executed = server.state["executed"]
    # The call may have executed once (pre-crash) or not at all — but
    # never twice.
    assert executed in ([], [7]), executed
    if executed == [7]:
        # If it executed but the reply was lost across the crash, the
        # client must have been told 'unavailable' (nondeterministic
        # outcome of an asynchronous break), not given a fabricated reply.
        assert outcome == ("unavailable",) or outcome == ("ok", 7)
