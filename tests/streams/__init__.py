"""Test package."""
