"""Shared world-building helpers for stream tests."""

from __future__ import annotations

from repro.core import Signal
from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, STRING, HandlerType

ECHO_TYPE = HandlerType(args=[INT], returns=[INT], signals={"negative": []})
NOTE_TYPE = HandlerType(args=[STRING])  # no results -> stream calls go as sends


def build_echo_world(
    stream_config: StreamConfig = None,
    echo_cost: float = 0.0,
    **system_kwargs,
):
    """A server guardian with an ``echo`` handler and a ``note`` handler.

    ``echo(x)`` returns ``x`` (signals ``negative`` for x < 0) after
    ``echo_cost`` simulated time; ``note(s)`` records s in
    ``server.state['notes']`` and has no results.
    """
    defaults = dict(latency=1.0, kernel_overhead=0.1)
    defaults.update(system_kwargs)
    system = ArgusSystem(stream_config=stream_config, **defaults)
    server = system.create_guardian("server")
    server.state["notes"] = []
    server.state["echo_calls"] = 0

    def echo(ctx, x):
        ctx.guardian.state["echo_calls"] += 1
        if echo_cost > 0:
            yield ctx.compute(echo_cost)
        if x < 0:
            raise Signal("negative")
        return x

    def note(ctx, text):
        if echo_cost > 0:
            yield ctx.compute(echo_cost)
        ctx.guardian.state["notes"].append(text)
        return None

    server.create_handler("echo", ECHO_TYPE, echo)
    server.create_handler("note", NOTE_TYPE, note)
    client = system.create_guardian("client")
    return system, server, client


def run_main(system, client, procedure, *args):
    process = client.spawn(procedure, *args)
    return system.run(until=process)
