"""The PR 5 adaptive windowed transport: SACK, flow control, AIMD, RTT.

Four families of tests:

* SACK correctness under each chaos link-fault flavour (drop, duplicate,
  reorder, delay) across a small seed corpus — exactly-once, in-order
  resolution must survive selective retransmission, with the strict
  monitor suite watching every event;
* window back-pressure — a slow receiver bounds the sender's in-flight
  count, promises still resolve FIFO, and a one-call window cannot
  deadlock (zero-window probe);
* AIMD batching — the effective batch limit grows on clean acks, shrinks
  on loss, and never leaves the configured [floor, ceiling] band;
* the RTT estimator — samples accumulate, track the link latency, and
  the derived RTO stays inside [min_rto, max_rto].
"""

from __future__ import annotations

import pytest

from repro.core import Unavailable
from repro.net.faults import LinkFaultInjector, LinkFaultProfile
from repro.obs.monitor import MonitorSuite
from repro.streams import StreamConfig

from .helpers import build_echo_world, run_main

ADAPTIVE = StreamConfig(
    batch_size=4,
    reply_batch_size=4,
    max_buffer_delay=1.0,
    reply_max_delay=1.0,
    rto=5.0,
    ack_delay=2.0,
    reply_ack_delay=6.0,
    max_batch_size=16,
    min_rto=1.0,
    max_rto=30.0,
    max_inflight_calls=32,
)

N_CALLS = 40

LINK_PROFILES = {
    "drop": LinkFaultProfile(drop_rate=0.15),
    "duplicate": LinkFaultProfile(dup_rate=0.25),
    "reorder": LinkFaultProfile(reorder_rate=0.3, delay_min=1.0, delay_max=6.0),
    "delay": LinkFaultProfile(delay_rate=0.3, delay_min=1.0, delay_max=6.0),
}


def build_chaotic_echo_world(profile, seed, config=ADAPTIVE, **kwargs):
    system, server, client = build_echo_world(
        stream_config=config, tracing=True, seed=seed, **kwargs
    )
    suite = MonitorSuite.install(system.tracer, strict=True)
    system.network.install_link_faults(
        LinkFaultInjector(system.rng.stream("chaos.link"), default=profile)
    )
    return system, server, client, suite


def streaming_driver(ctx, n=N_CALLS, chunk=8):
    """Stream *n* echo calls in chunks, flush each chunk, claim in order."""
    echo = ctx.lookup("server", "echo")
    values = []
    for base in range(0, n, chunk):
        promises = [echo.stream(i) for i in range(base, base + chunk)]
        echo.flush()
        for promise in promises:
            values.append((yield promise.claim()))
    return values


def pipelined_driver(ctx, n=N_CALLS, chunk=4):
    """Keep many call packets in flight at once (claims only at the end),
    so link chaos can actually interleave, reorder and duplicate them."""
    echo = ctx.lookup("server", "echo")
    promises = []
    for base in range(0, n, chunk):
        promises.extend(echo.stream(i) for i in range(base, base + chunk))
        echo.flush()
        yield ctx.sleep(0.3)
    values = []
    for promise in promises:
        values.append((yield promise.claim()))
    return values


@pytest.mark.parametrize("fault", sorted(LINK_PROFILES))
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_sack_exactly_once_in_order_under_link_chaos(fault, seed):
    """Whatever the link does, every call executes exactly once and every
    promise resolves in order with the right value — with selective
    retransmission doing the repairing instead of go-back-N."""
    system, server, client, suite = build_chaotic_echo_world(
        LINK_PROFILES[fault], seed
    )
    values = run_main(system, client, streaming_driver)
    assert values == list(range(N_CALLS))
    # Exactly-once at the application: the handler body ran once per call.
    assert server.state["echo_calls"] == N_CALLS
    # The strict monitor suite saw no duplicate delivery, no reordering,
    # no promise-lifecycle violation (strict=True would have raised, but
    # assert anyway so a future monitor-mode change cannot silence this).
    assert suite.violations == []


def test_reorder_produces_sack_traffic():
    """A reordering link leaves the receiver holding out-of-order seqs: it
    must advertise them as SACK ranges immediately."""
    system, server, client, suite = build_chaotic_echo_world(
        LINK_PROFILES["reorder"], seed=7
    )

    def main(ctx):
        values = yield from pipelined_driver(ctx)
        sender = ctx.lookup("server", "echo").stream_sender
        return values, sender.stats.snapshot()

    values, stats = run_main(system, client, main)
    assert values == list(range(N_CALLS))
    [receiver] = server.endpoint._receivers.values()
    assert receiver.stats.sack_ranges_sent > 0
    assert suite.violations == []


def test_duplicate_link_traffic_is_absorbed():
    system, server, client, suite = build_chaotic_echo_world(
        LINK_PROFILES["duplicate"], seed=7
    )
    values = run_main(system, client, pipelined_driver)
    assert values == list(range(N_CALLS))
    assert server.state["echo_calls"] == N_CALLS
    [receiver] = server.endpoint._receivers.values()
    # Stray duplicates reached the receiver and were recognized, not
    # re-executed.
    assert receiver.stats.duplicates > 0
    assert suite.violations == []


def test_drop_link_sack_spares_retransmissions():
    system, server, client, suite = build_chaotic_echo_world(
        LINK_PROFILES["drop"], seed=23
    )

    def main(ctx):
        values = yield from streaming_driver(ctx)
        sender = ctx.lookup("server", "echo").stream_sender
        return values, sender.stats.snapshot()

    values, stats = run_main(system, client, main)
    assert values == list(range(N_CALLS))
    assert stats["retransmissions"] > 0
    assert suite.violations == []


# ----------------------------------------------------------------------
# Flow control
# ----------------------------------------------------------------------

def test_window_bounds_sender_inflight_and_keeps_fifo():
    """A slow receiver advertises a shrinking window; the sender must never
    exceed max_inflight_calls in flight, and resolution stays FIFO."""
    config = StreamConfig(
        batch_size=4,
        reply_batch_size=4,
        max_buffer_delay=0.5,
        reply_max_delay=0.5,
        ack_delay=2.0,
        max_inflight_calls=8,
    )
    system, server, client = build_echo_world(
        stream_config=config, echo_cost=0.6, tracing=True
    )
    suite = MonitorSuite.install(system.tracer, strict=True)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(i) for i in range(48)]
        echo.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values, echo.stream_sender.stats.snapshot()

    values, stats = run_main(system, client, main)
    assert values == list(range(48))
    assert stats["max_inflight"] <= 8
    assert stats["window_stalls"] > 0
    assert suite.violations == []


def test_one_call_window_cannot_deadlock():
    """The degenerate window (one call in flight) still makes progress —
    the idle-stream probe allowance prevents a zero-window wedge."""
    config = StreamConfig(
        batch_size=4,
        max_buffer_delay=0.5,
        reply_max_delay=0.5,
        max_inflight_calls=1,
    )
    system, server, client = build_echo_world(
        stream_config=config, echo_cost=0.2, tracing=True
    )
    suite = MonitorSuite.install(system.tracer, strict=True)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(i) for i in range(12)]
        echo.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values, echo.stream_sender.stats.snapshot()

    values, stats = run_main(system, client, main)
    assert values == list(range(12))
    assert stats["max_inflight"] <= 1
    assert suite.violations == []


def test_flow_control_disabled_with_zero_limit():
    """max_inflight_calls=0 switches the window off: the whole burst may
    be in flight at once (legacy behaviour, adaptive everything else)."""
    config = StreamConfig(
        batch_size=64,
        max_buffer_delay=0.0,
        max_inflight_calls=0,
    )
    system, server, client = build_echo_world(stream_config=config)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(i) for i in range(64)]
        echo.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values, echo.stream_sender.stats.snapshot()

    values, stats = run_main(system, client, main)
    assert values == list(range(64))
    assert stats["window_stalls"] == 0
    assert stats["max_inflight"] == 64


# ----------------------------------------------------------------------
# AIMD batching
# ----------------------------------------------------------------------

def test_batch_limit_grows_on_clean_acks():
    config = StreamConfig(
        batch_size=2,
        reply_batch_size=2,
        max_buffer_delay=0.5,
        reply_max_delay=0.5,
        max_batch_size=32,
    )
    system, server, client = build_echo_world(stream_config=config)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        # Many small waves with claims in between, so acks flow cleanly
        # and the AIMD controller gets credit after every packet.
        for wave in range(15):
            promises = [echo.stream(wave * 4 + i) for i in range(4)]
            echo.flush()
            for promise in promises:
                yield promise.claim()
        return echo.stream_sender._batch_limit

    batch_limit = run_main(system, client, main)
    assert batch_limit > config.batch_size
    assert batch_limit <= config.max_batch_size


def test_batch_limit_shrinks_on_loss_and_respects_floor():
    system, server, client, suite = build_chaotic_echo_world(
        LINK_PROFILES["drop"], seed=7
    )

    def main(ctx):
        values = yield from streaming_driver(ctx)
        sender = ctx.lookup("server", "echo").stream_sender
        return values, sender._batch_limit, sender.stats.snapshot()

    values, batch_limit, stats = run_main(system, client, main)
    assert values == list(range(N_CALLS))
    assert stats["retransmissions"] > 0
    floor = min(ADAPTIVE.min_batch_size, ADAPTIVE.batch_size)
    ceiling = max(ADAPTIVE.max_batch_size, ADAPTIVE.batch_size)
    assert floor <= batch_limit <= ceiling
    # The multiplicative decrease actually fired: the trace shows at least
    # one downward move of the limit.
    limits = [
        event.fields["limit"]
        for event in system.tracer.events_of("stream.batch_limit")
    ]
    assert any(b < a for a, b in zip(limits, limits[1:]))


def test_adaptive_batching_off_keeps_static_threshold():
    config = StreamConfig(
        batch_size=4,
        max_buffer_delay=0.5,
        reply_max_delay=0.5,
        adaptive_batching=False,
    )
    system, server, client = build_echo_world(stream_config=config, tracing=True)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        for wave in range(10):
            promises = [echo.stream(wave * 4 + i) for i in range(4)]
            echo.flush()
            for promise in promises:
                yield promise.claim()
        return echo.stream_sender._batch_limit

    batch_limit = run_main(system, client, main)
    assert batch_limit == config.batch_size
    assert system.tracer.events_of("stream.batch_limit") == []


# ----------------------------------------------------------------------
# RTT estimation
# ----------------------------------------------------------------------

def rtt_probe_driver(ctx):
    echo = ctx.lookup("server", "echo")
    for wave in range(8):
        promises = [echo.stream(wave * 4 + i) for i in range(4)]
        echo.flush()
        for promise in promises:
            yield promise.claim()
    sender = echo.stream_sender
    return sender._srtt, sender._current_rto(), sender.stats.snapshot()


def test_rtt_estimator_accumulates_samples_and_bounds_rto():
    system, server, client = build_echo_world(
        stream_config=ADAPTIVE, tracing=True, latency=2.0
    )
    srtt, rto, stats = run_main(system, client, rtt_probe_driver)
    assert stats["rtt_samples"] > 0
    assert srtt is not None and srtt > 0
    assert ADAPTIVE.min_rto <= rto <= ADAPTIVE.max_rto


def test_rtt_estimator_tracks_link_latency():
    """A 10x slower link must produce a clearly larger SRTT estimate."""
    estimates = {}
    for label, latency in (("fast", 1.0), ("slow", 10.0)):
        system, server, client = build_echo_world(
            stream_config=ADAPTIVE, latency=latency
        )
        srtt, rto, stats = run_main(system, client, rtt_probe_driver)
        estimates[label] = srtt
    assert estimates["slow"] > 2.0 * estimates["fast"]


def test_adaptive_rto_off_uses_fixed_rto():
    config = StreamConfig(
        batch_size=4, max_buffer_delay=0.5, reply_max_delay=0.5, adaptive_rto=False
    )
    system, server, client = build_echo_world(stream_config=config)
    srtt, rto, stats = run_main(system, client, rtt_probe_driver)
    assert stats["rtt_samples"] == 0
    assert srtt is None
    assert rto == config.rto


# ----------------------------------------------------------------------
# Breaks still behave under the adaptive transport
# ----------------------------------------------------------------------

def test_partition_break_resolves_all_promises_adaptively():
    """A partition under the adaptive transport still breaks the stream
    (with exponential backoff lengthening the ladder, not wedging it) and
    every outstanding promise resolves to unavailable."""
    from repro.net import schedule_partition

    system, server, client = build_echo_world(stream_config=ADAPTIVE, tracing=True)
    suite = MonitorSuite.install(system.tracer, strict=True)
    schedule_partition(system.network, "node:client", "node:server", at=1.0)

    def main(ctx):
        yield ctx.sleep(2.0)
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(i) for i in range(6)]
        echo.flush()
        tags = []
        for promise in promises:
            try:
                yield promise.claim()
                tags.append("ok")
            except Unavailable:
                tags.append("unavailable")
        return tags

    tags = run_main(system, client, main)
    assert tags == ["unavailable"] * 6
    assert suite.violations == []


# ----------------------------------------------------------------------
# Reply-gap probe: lost reply packets are recovered at ~RTT, not RTO
# ----------------------------------------------------------------------

class _SingleDropInjector(LinkFaultInjector):
    """Deterministically eat the Nth message towards *victim*."""

    def __init__(self, rng, victim, index):
        super().__init__(rng)
        self._victim = victim
        self._index = index
        self._seen = 0

    def decide(self, src, dst):
        if dst == self._victim:
            self._seen += 1
            if self._seen == self._index:
                self.drops += 1
                return self.DROP
        return None


def test_lost_reply_triggers_reply_gap_probe():
    """When a reply packet is lost mid-stream, a later outcome beyond the
    resolve cursor proves the gap; the sender must probe immediately (the
    receiver then resends its unacked reply log) rather than stall every
    claim behind the RTO."""
    system, server, client = build_echo_world(
        stream_config=ADAPTIVE, tracing=True
    )
    suite = MonitorSuite.install(system.tracer, strict=True)
    # Server->client messages alternate outcome-carrying replies (odd)
    # with pure acks (even); the third is the reply carrying the second
    # chunk's outcomes.  Later chunks' replies still arrive, exposing the
    # gap without any call-packet loss muddying the picture.
    system.network.install_link_faults(
        _SingleDropInjector(system.rng.stream("chaos.link"), "node:client", 3)
    )

    def main(ctx):
        values = yield from pipelined_driver(ctx)
        sender = ctx.lookup("server", "echo").stream_sender
        return values, sender.stats.snapshot()

    values, stats = run_main(system, client, main)
    assert values == list(range(N_CALLS))
    assert server.state["echo_calls"] == N_CALLS
    assert stats["reply_gap_probes"] >= 1
    # The probe is not a call retransmission: no call packet was lost, so
    # selective retransmission had nothing to resend.
    assert stats["retransmissions"] == 0
    assert suite.violations == []


def test_clean_run_sends_no_reply_gap_probes():
    """No loss, no probes: the gap detector must not misfire on a healthy
    pipelined stream."""
    system, server, client = build_echo_world(stream_config=ADAPTIVE)

    def main(ctx):
        values = yield from pipelined_driver(ctx)
        sender = ctx.lookup("server", "echo").stream_sender
        return values, sender.stats.snapshot()

    values, stats = run_main(system, client, main)
    assert values == list(range(N_CALLS))
    assert stats["reply_gap_probes"] == 0
    assert stats["retransmissions"] == 0
