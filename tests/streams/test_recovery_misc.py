"""Crash recovery, same-node streams, incarnation hygiene, stats."""


from repro.core import ExceptionReply, Signal, Unavailable
from repro.entities import ArgusSystem
from repro.net import schedule_crash
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .helpers import build_echo_world, run_main

FAST = StreamConfig(batch_size=4, max_buffer_delay=0.5, rto=4.0, max_retries=2)


def test_calls_succeed_after_crash_and_recovery():
    """Guardians survive crashes (Argus stable state); once the node is
    back and the stream reincarnates, calls flow again."""
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_crash(system.network, "node:server", at=0.0, recover_at=20.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        doomed = echo.stream(1)
        echo.flush()
        try:
            yield doomed.claim()
            first = "normal"
        except Unavailable:
            first = "unavailable"
        yield ctx.sleep(30.0)  # node recovered
        value = yield echo.call(2)
        return (first, value, echo.stream_sender.incarnation)

    first, value, incarnation = run_main(system, client, main)
    assert first == "unavailable"
    assert value == 2
    assert incarnation >= 1
    # The server's state dict survived the crash (stable storage).
    assert server.state["echo_calls"] >= 1


def test_receiver_state_cleared_on_crash():
    system, server, client = build_echo_world(stream_config=FAST)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        yield echo.call(1)
        assert len(server.endpoint._receivers) == 1
        server.node.crash()
        assert len(server.endpoint._receivers) == 0
        server.node.recover()
        yield ctx.sleep(1.0)

    run_main(system, client, main)


def test_datagram_for_previous_incarnation_is_dropped():
    """A crash flushes the NIC: a datagram sent to incarnation N is never
    delivered to incarnation N+1, even if the node is back up when it
    arrives — otherwise an in-flight first transmission could re-open a
    stream on the recovered node and re-execute pre-crash calls."""
    system, server, client = build_echo_world(stream_config=FAST)
    # Crash and recover entirely while the first packet is on the wire
    # (sent ~0.1, latency 1.0): at arrival the node is alive again but
    # one incarnation later.
    schedule_crash(system.network, "node:server", at=0.5, recover_at=0.7)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        doomed = echo.stream(1)
        echo.flush()
        try:
            yield doomed.claim()
            first = "normal"
        except Unavailable:
            first = "unavailable"
        value = yield echo.call(2)
        return (first, value)

    first, value = run_main(system, client, main)
    # The stale datagram was dropped; the retransmission was refused
    # (receiver state lost), breaking the stream.  The follow-up call
    # rode the next incarnation.
    assert first == "unavailable"
    assert value == 2
    assert system.network.stats.messages_dropped_crash >= 1
    # Exactly-once held throughout: only the follow-up call executed.
    assert server.state["echo_calls"] == 1


def test_mid_stream_open_after_recovery_is_refused_not_replayed():
    """A first-transmission packet that does not start at seq 1 must not
    open a fresh receiver on a recovered node: entries below its window
    may have executed pre-crash, and accepting it would let a later
    go-back-N retransmission replay them."""
    system, server, client = build_echo_world(stream_config=FAST)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        value1 = yield echo.call(1)  # seq 1 delivered and executed
        server.node.crash()  # receiver state lost
        server.node.recover()  # incarnation 1
        doomed = echo.stream(2)  # seq 2, attempt 0: a mid-stream open
        echo.flush()
        try:
            yield doomed.claim()
            second = "normal"
        except Unavailable:
            second = "unavailable"
        value3 = yield echo.call(3)  # next incarnation restarts at seq 1
        return (value1, second, value3, echo.stream_sender.incarnation)

    value1, second, value3, incarnation = run_main(system, client, main)
    assert (value1, value3) == (1, 3)
    assert second == "unavailable"
    assert incarnation >= 1
    # seq 1 executed once, the refused call never executed, the
    # follow-up executed once: exactly two executions, no replays.
    assert server.state["echo_calls"] == 2


def test_same_node_stream_uses_local_fast_path():
    """Guardians on one node talk without network messages."""
    system = ArgusSystem(latency=5.0, kernel_overhead=0.5, stream_config=FAST)
    server = system.create_guardian("server", node="shared")

    def echo(ctx, x):
        yield ctx.compute(0.1)
        return x

    server.create_handler("echo", HandlerType(args=[INT], returns=[INT]), echo)
    client = system.create_guardian("client", node="shared")

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        promises = [ref.stream(index) for index in range(5)]
        ref.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values

    process = client.spawn(main)
    assert system.run(until=process) == list(range(5))
    stats = system.stats()
    assert stats["messages_sent"] == 0  # all local
    assert stats["kernel_calls"] == 0
    assert system.now < 2.0  # no latency paid


def test_stale_incarnation_replies_ignored():
    system, server, client = build_echo_world(stream_config=FAST)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        sender = echo.stream_sender
        old = echo.stream(1)
        echo.restart()  # incarnation bumps; old promise unavailable
        new = echo.stream(2)
        echo.flush()
        value = yield new.claim()
        # The old reply (if it arrives late) must not corrupt anything.
        yield ctx.sleep(10.0)
        return (old.outcome().condition, value, sender.incarnation)

    condition, value, incarnation = run_main(system, client, main)
    assert condition == "unavailable"
    assert value == 2
    assert incarnation == 1


def test_rpc_on_partitioned_network_raises_unavailable():
    system, server, client = build_echo_world(stream_config=FAST)
    system.network.partition("node:client", "node:server")

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        try:
            yield echo.call(1)
            return "normal"
        except Unavailable:
            return "unavailable"

    assert run_main(system, client, main) == "unavailable"


def test_sender_stats_track_activity():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        note = ctx.lookup("server", "note")
        yield echo.call(1)
        echo.stream_statement(2)
        note.send("hi")
        echo.flush()
        yield echo.synch()
        stats = echo.stream_sender.stats
        return (
            stats.calls_made,
            stats.rpcs_made,
            stats.sends_made,
            stats.flushes,
            stats.synchs,
        )

    calls, rpcs, sends, flushes, synchs = run_main(system, client, main)
    assert calls == 3
    assert rpcs == 1
    assert sends == 1
    assert flushes == 1
    assert synchs == 1


def test_receiver_stats_track_activity():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        for index in range(5):
            echo.stream_statement(index)
        yield echo.synch()

    run_main(system, client, main)
    (receiver,) = server.endpoint._receivers.values()
    assert receiver.stats.calls_delivered == 5
    assert receiver.stats.reply_packets_sent >= 1
    assert receiver.stats.breaks == 0


def test_want_promise_send_claims_abnormal_outcome():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream_sender.send(
            "echo", echo.handler_type, (-1,), want_promise=True
        )
        echo.flush()
        try:
            yield promise.claim()
            return "normal"
        except Signal as sig:
            return sig.condition

    assert run_main(system, client, main) == "negative"


def test_break_during_synch_wait_raises_exception_reply():
    system, server, client = build_echo_world(stream_config=FAST)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        echo.stream_statement(1)
        system.network.partition("node:client", "node:server")
        try:
            yield echo.synch()
            return "normal"
        except ExceptionReply:
            return "exception_reply"

    assert run_main(system, client, main) == "exception_reply"


def test_many_streams_one_endpoint_are_isolated():
    """One guardian endpoint multiplexes many concurrent streams."""
    system, server, client = build_echo_world(echo_cost=0.5)

    def worker(ctx, base):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(base + index) for index in range(4)]
        echo.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values

    def main(ctx):
        forks = [ctx.fork(worker, base) for base in (0, 100, 200)]
        results = []
        for fork_promise in forks:
            results.append((yield fork_promise.claim()))
        return results

    results = run_main(system, client, main)
    assert results == [
        [0, 1, 2, 3],
        [100, 101, 102, 103],
        [200, 201, 202, 203],
    ]


def test_idle_stream_reply_log_is_garbage_collected():
    """After replies are resolved, the sender eventually acknowledges them
    even with no further calls, letting the receiver drop its reply log."""
    config = StreamConfig(
        batch_size=4, max_buffer_delay=0.5, reply_ack_delay=5.0
    )
    system, server, client = build_echo_world(stream_config=config)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(3)]
        echo.flush()
        for promise in promises:
            yield promise.claim()
        (receiver,) = server.endpoint._receivers.values()
        before = len(receiver._reply_log)
        # Go idle; the reply-ack deadline must drain the log.
        yield ctx.sleep(30.0)
        after = len(receiver._reply_log)
        return (before, after)

    before, after = run_main(system, client, main)
    assert before > 0
    assert after == 0
