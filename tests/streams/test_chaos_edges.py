"""Edge interleavings the chaos campaigns exercise, pinned as unit tests:
back-to-back breaks, breaks racing restart, breaks with buffered replies,
and crashes racing in-flight flush/synch."""

from dataclasses import replace

from repro.core import ExceptionReply, Failure, Unavailable
from repro.net import schedule_crash, schedule_partition
from repro.streams import StreamConfig

from .helpers import build_echo_world, run_main

# Legacy fixed-RTO transport: these interleavings were pinned against its
# exact retransmission ladder (5.0 + 5.0 + 5.0 before a break); the
# adaptive transport's exponential backoff shifts break times, which is
# covered separately in test_adaptive_transport.py.
FAST = StreamConfig.legacy(
    batch_size=4, max_buffer_delay=1.0, rto=5.0, max_retries=2, auto_restart=True
)


def test_back_to_back_breaks_reincarnate_twice_and_drain():
    """Two disjoint partition windows: each break resolves its outstanding
    calls, each heal lets the reincarnated stream deliver again."""
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_partition(system.network, "node:client", "node:server", at=2.0, heal_at=25.0)
    schedule_partition(system.network, "node:client", "node:server", at=50.0, heal_at=75.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        rounds = []
        for start in (0.0, 30.0, 55.0, 80.0):
            yield ctx.sleep(max(0.0, start - ctx.now))
            try:
                promise = echo.stream(int(start))
                echo.flush()
                rounds.append((yield promise.claim()))
            except Unavailable:
                rounds.append("unavailable")
        return (rounds, echo.stream_sender.incarnation)

    rounds, incarnation = run_main(system, client, main)
    # Rounds 1 and 3 hit partitions; rounds 2 and 4 ran on fresh
    # incarnations after each heal.
    assert rounds[0] == "unavailable"
    assert rounds[1] == 30
    assert rounds[2] == "unavailable"
    assert rounds[3] == 80
    assert incarnation >= 2


def test_break_during_restart_window():
    """A call made immediately after a break (while the restart
    announcement is still in flight through a dead network) must itself
    break cleanly and leave the stream usable after the heal."""
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_partition(system.network, "node:client", "node:server", at=1.0, heal_at=40.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        p1 = echo.stream(1)
        echo.flush()
        try:
            yield p1.claim()
            first = "ok"
        except Unavailable:
            first = "unavailable"
        # The stream auto-restarted into the same partition: the next call
        # rides the new incarnation and must break too (not hang).
        try:
            p2 = echo.stream(2)
            echo.flush()
            yield p2.claim()
            second = "ok"
        except Unavailable:
            second = "unavailable"
        yield ctx.sleep(50.0 - ctx.now)
        value = yield echo.call(3)
        return (first, second, value, echo.stream_sender.incarnation)

    first, second, value, incarnation = run_main(system, client, main)
    assert first == "unavailable"
    assert second == "unavailable"
    assert value == 3
    assert incarnation >= 2


def test_manual_restart_storm():
    """restart() twice in a row (the second while the first announcement
    is still in flight) stays consistent: each outstanding call resolves
    exactly once and the final incarnation still works."""
    system, server, client = build_echo_world(stream_config=FAST)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        p1 = echo.stream(1)
        echo.restart()
        p2 = echo.stream(2)
        echo.restart()
        outcomes = []
        for promise in (p1, p2):
            try:
                outcomes.append((yield promise.claim()))
            except Unavailable:
                outcomes.append("unavailable")
        value = yield echo.call(3)
        return (outcomes, value)

    outcomes, value = run_main(system, client, main)
    assert outcomes == ["unavailable", "unavailable"]
    assert value == 3


def test_break_with_nonempty_reply_buffer():
    """Replies executed but still sitting in the receiver's reply batch
    when the link dies: the client's break must resolve those promises
    (to unavailable), and exactly-once must hold across the heal."""
    # Large reply batch + long reply delay: replies linger server-side.
    config = replace(
        FAST, reply_batch_size=16, reply_max_delay=30.0, reply_ack_delay=60.0
    )
    system, server, client = build_echo_world(stream_config=config, echo_cost=0.1)
    # Cut the link after the calls arrive but before the reply batch flushes.
    schedule_partition(system.network, "node:client", "node:server", at=3.0, heal_at=60.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(4)]
        echo.flush()
        outcomes = []
        for promise in promises:
            try:
                outcomes.append((yield promise.claim()))
            except Unavailable:
                outcomes.append("unavailable")
        yield ctx.sleep(70.0 - ctx.now)
        value = yield echo.call(99)
        return (outcomes, value)

    outcomes, value = run_main(system, client, main)
    # Every promise resolved (none hung), all to unavailable since the
    # replies never escaped the partition.
    assert outcomes == ["unavailable"] * 4
    assert value == 99
    # The handler executed each delivered call exactly once — buffered
    # replies dying with the break never cause re-execution visible here.
    assert server.state["echo_calls"] in (4, 5)  # 4 + the post-heal call


def test_crash_races_inflight_flush():
    """Node.crash() landing while flushed packets are on the wire: every
    promise resolves, nothing executes twice."""
    system, server, client = build_echo_world(stream_config=FAST)
    # Crash just after the flush leaves the client (latency is 1.0, so
    # packets are mid-flight), recover shortly after.
    schedule_crash(system.network, "node:server", at=1.05, recover_at=10.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        yield ctx.sleep(0.9)
        promises = [echo.stream(index) for index in range(4)]
        echo.flush()
        outcomes = []
        for promise in promises:
            try:
                outcomes.append((yield promise.claim()))
            except Unavailable:
                outcomes.append("unavailable")
        yield ctx.sleep(30.0 - ctx.now)
        value = yield echo.call(7)
        return (outcomes, value)

    outcomes, value = run_main(system, client, main)
    assert len(outcomes) == 4
    assert value == 7
    # Exactly-once: each of the 4 calls ran at most once, plus the late call.
    assert server.state["echo_calls"] <= 5


def test_crash_races_inflight_synch():
    """A synch racing a receiver crash must raise, not hang.

    The nasty interleaving: the first send is executed *and acked* before
    the crash, so the sender never notices the receiver's state died.  The
    next send rides the stale incarnation; its retransmission into the
    recovered node is refused (an asynchronous break — re-executing
    already-processed calls would violate exactly-once), the synch resolves
    exceptionally, and the reincarnated stream works on retry."""
    system, server, client = build_echo_world(stream_config=FAST)
    schedule_crash(system.network, "node:server", at=1.5, recover_at=20.0)

    def main(ctx):
        note = ctx.lookup("server", "note")
        note.send("before-crash")
        note.flush()
        try:
            yield note.synch()
            first = "ok"
        except (Unavailable, ExceptionReply, Failure):
            first = "broken"
        yield ctx.sleep(30.0 - ctx.now)
        attempts = []
        for _ in range(3):
            try:
                note.send("after-recover")
                note.flush()
                yield note.synch()
                attempts.append("ok")
                break
            except (Unavailable, ExceptionReply, Failure):
                attempts.append("broken")
                yield ctx.sleep(10.0)
        return first, attempts

    first, attempts = run_main(system, client, main)
    assert first in ("ok", "broken")  # resolved either way, never hung
    assert attempts[-1] == "ok"  # the reincarnated stream drained
    assert "after-recover" in server.state["notes"]
    # Exactly-once held throughout: each note executed at most once per
    # accepted delivery (a broken synch may or may not have delivered).
    assert server.state["notes"].count("before-crash") <= 1
