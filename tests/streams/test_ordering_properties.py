"""Property-based tests of the stream guarantees (§2).

Under randomized batch sizes, latencies, handler costs and message loss,
the transport must always provide: exactly-once execution, execution in
call order, and in-call-order promise resolution.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

ECHO = HandlerType(args=[INT], returns=[INT])


def build_world(batch_size, reply_batch_size, latency, loss_rate, seed, handler_cost):
    config = StreamConfig(
        batch_size=batch_size,
        reply_batch_size=reply_batch_size,
        max_buffer_delay=2.0,
        reply_max_delay=2.0,
        rto=max(20.0, latency * 6),
        max_retries=50,
    )
    system = ArgusSystem(
        latency=latency,
        kernel_overhead=0.05,
        loss_rate=loss_rate,
        seed=seed,
        stream_config=config,
    )
    server = system.create_guardian("server")
    server.state["log"] = []

    def echo(ctx, x):
        ctx.guardian.state["log"].append(x)
        if handler_cost > 0:
            yield ctx.compute(handler_cost)
        return x

    server.create_handler("echo", ECHO, echo)
    client = system.create_guardian("client")
    return system, server, client


@settings(max_examples=25, deadline=None)
@given(
    n_calls=st.integers(min_value=1, max_value=30),
    batch_size=st.integers(min_value=1, max_value=16),
    reply_batch_size=st.integers(min_value=1, max_value=16),
    latency=st.floats(min_value=0.1, max_value=5.0),
    loss_rate=st.sampled_from([0.0, 0.0, 0.1, 0.3]),
    seed=st.integers(min_value=0, max_value=1000),
    handler_cost=st.sampled_from([0.0, 0.2]),
)
def test_exactly_once_in_order_always(
    n_calls, batch_size, reply_batch_size, latency, loss_rate, seed, handler_cost
):
    system, server, client = build_world(
        batch_size, reply_batch_size, latency, loss_rate, seed, handler_cost
    )
    ready_prefix_violations = []

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(n_calls)]
        echo.flush()
        values = []
        for index, promise in enumerate(promises):
            value = yield promise.claim()
            values.append(value)
            # Invariant: when promise i is ready, every j < i is ready.
            if not all(p.ready() for p in promises[: index + 1]):
                ready_prefix_violations.append(index)
        return values

    process = client.spawn(main)
    values = system.run(until=process)

    # Exactly-once, in call order, correct results.
    assert values == list(range(n_calls))
    assert server.state["log"] == list(range(n_calls))
    assert ready_prefix_violations == []


@settings(max_examples=15, deadline=None)
@given(
    n_calls=st.integers(min_value=2, max_value=20),
    batch_size=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_interleaved_claim_orders_see_same_outcomes(n_calls, batch_size, seed):
    """Claiming out of order never changes any outcome."""
    system, server, client = build_world(batch_size, batch_size, 1.0, 0.0, seed, 0.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(n_calls)]
        echo.flush()
        # Claim odd indices first, then everything twice.
        values = {}
        for index in range(1, n_calls, 2):
            values[index] = yield promises[index].claim()
        for index in range(n_calls):
            first = yield promises[index].claim()
            second = yield promises[index].claim()
            assert first == second
            if index in values:
                assert values[index] == first
            values[index] = first
        return [values[index] for index in range(n_calls)]

    process = client.spawn(main)
    assert system.run(until=process) == list(range(n_calls))


@settings(max_examples=10, deadline=None)
@given(
    n_calls=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=50),
)
def test_sequential_rpc_equals_stream_results(n_calls, seed):
    """'the effect of making a sequence of calls is the same as if the
    sender waited for the reply to each call before making the next.'"""
    outcomes = {}
    for mode in ("rpc", "stream"):
        system, server, client = build_world(4, 4, 1.0, 0.0, seed, 0.1)

        def main(ctx, mode=mode):
            echo = ctx.lookup("server", "echo")
            values = []
            if mode == "rpc":
                for index in range(n_calls):
                    values.append((yield echo.call(index)))
            else:
                promises = [echo.stream(index) for index in range(n_calls)]
                echo.flush()
                for promise in promises:
                    values.append((yield promise.claim()))
            return (values, list(server.state["log"]))

        process = client.spawn(main)
        outcomes[mode] = system.run(until=process)

    assert outcomes["rpc"] == outcomes["stream"]
