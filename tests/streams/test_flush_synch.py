"""The flush and synch primitives (§2, §3)."""


from repro.core import ExceptionReply
from repro.streams import StreamConfig

from .helpers import build_echo_world, run_main


def test_flush_speeds_up_delivery():
    """'the flush merely speeds this up.'"""
    config = StreamConfig(batch_size=100, max_buffer_delay=20.0)
    times = {}
    for flushing in (False, True):
        system, server, client = build_echo_world(stream_config=config)

        def main(ctx, flushing=flushing):
            echo = ctx.lookup("server", "echo")
            promise = echo.stream(1)
            if flushing:
                echo.flush()
            yield promise.claim()
            return ctx.now

        times[flushing] = run_main(system, client, main)
    assert times[True] < times[False]


def test_synch_waits_for_all_earlier_calls():
    system, server, client = build_echo_world(echo_cost=0.5)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(4)]
        yield echo.synch()
        # After synch, every earlier call has completed.
        return all(promise.ready() for promise in promises)

    assert run_main(system, client, main) is True


def test_synch_normal_when_all_calls_normal():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        for index in range(3):
            echo.stream_statement(index)
        yield echo.synch()
        return "ok"

    assert run_main(system, client, main) == "ok"


def test_synch_signals_exception_reply_on_any_exception():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        echo.stream_statement(1)
        echo.stream_statement(-1)  # will signal
        echo.stream_statement(2)
        try:
            yield echo.synch()
            return "normal"
        except ExceptionReply:
            return "exception_reply"

    assert run_main(system, client, main) == "exception_reply"


def test_synch_scope_resets_after_synch():
    """synch covers calls 'since the last synch or regular RPC'."""
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        echo.stream_statement(-1)
        try:
            yield echo.synch()
        except ExceptionReply:
            pass
        # New window: only normal calls since.
        echo.stream_statement(1)
        yield echo.synch()
        return "second synch normal"

    assert run_main(system, client, main) == "second synch normal"


def test_rpc_resets_synch_window():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        echo.stream_statement(-1)  # exceptional
        try:
            yield echo.call(5)  # RPC: a synch point
        except Exception:
            pass
        echo.stream_statement(1)
        yield echo.synch()  # covers only the call after the RPC
        return "normal"

    assert run_main(system, client, main) == "normal"


def test_synch_with_no_calls_is_immediate():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        yield echo.synch()
        return ctx.now

    # No calls outstanding: synch returns without waiting for any reply.
    assert run_main(system, client, main) < 1.0


def test_flush_counts_in_stats():
    system, server, client = build_echo_world()

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        echo.flush()
        echo.flush()
        yield promise.claim()
        return echo.stream_sender.stats.flushes

    assert run_main(system, client, main) == 2


def test_synch_forces_prompt_reply_flush():
    """synch asks the receiver to flush replies as soon as the covered
    calls complete, instead of waiting out the reply buffer delay."""
    config = StreamConfig(batch_size=100, reply_batch_size=100, max_buffer_delay=1.0, reply_max_delay=30.0)
    system, server, client = build_echo_world(stream_config=config)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        echo.stream_statement(1)
        yield echo.synch()
        return ctx.now

    # Without the synch-triggered flush this would take ~30 time units.
    assert run_main(system, client, main) < 10.0
