"""Local forks: promises for local procedures (§3.2)."""


from repro.core import Failure, Signal
from repro.types import INT, PromiseType, STRING

from ..conftest import run_client


def test_fork_runs_in_parallel_with_caller(system):
    def helper(ctx, n):
        yield ctx.sleep(5.0)
        return n * 2

    def main(ctx):
        promise = ctx.fork(helper, 21)
        # Caller continues immediately.
        assert ctx.now == 0.0
        assert not promise.ready()
        value = yield promise.claim()
        return (value, ctx.now)

    assert run_client(system, main) == (42, 5.0)


def test_fork_passes_arguments_by_sharing(system):
    """'a pointer to the argument object (in the heap) is passed' — no
    copying, mutations are visible."""
    def appender(ctx, shared_list):
        yield ctx.sleep(1.0)
        shared_list.append("from-fork")

    def main(ctx):
        data = ["original"]
        promise = ctx.fork(appender, data)
        yield promise.claim()
        return data

    assert run_client(system, main) == ["original", "from-fork"]


def test_fork_propagates_user_signal(system):
    def failing(ctx):
        yield ctx.sleep(0.5)
        raise Signal("e", "detail")

    def main(ctx):
        promise = ctx.fork(failing, ptype=PromiseType(signals={"e": [STRING]}))
        try:
            yield promise.claim()
        except Signal as sig:
            return (sig.condition, sig.exception_args())

    assert run_client(system, main) == ("e", ("detail",))


def test_fork_python_crash_becomes_failure(system):
    def buggy(ctx):
        yield ctx.sleep(0.1)
        raise KeyError("bug")

    def main(ctx):
        promise = ctx.fork(buggy)
        try:
            yield promise.claim()
        except Failure as failure:
            return "crashed" in failure.reason

    assert run_client(system, main) is True


def test_fork_typed_promise_result_checked(system):
    def wrong_type(ctx):
        yield ctx.sleep(0.1)
        return "not an int"

    def main(ctx):
        promise = ctx.fork(wrong_type, ptype=PromiseType(returns=[INT]))
        try:
            yield promise.claim()
        except Failure as failure:
            return "could not decode" in failure.reason

    assert run_client(system, main) is True


def test_fork_claimed_multiple_times(system):
    def helper(ctx):
        yield ctx.sleep(0.1)
        return 7

    def main(ctx):
        promise = ctx.fork(helper)
        first = yield promise.claim()
        second = yield promise.claim()
        return (first, second)

    assert run_client(system, main) == (7, 7)


def test_fork_gets_its_own_agent(system):
    agents = []

    def helper(ctx):
        agents.append(ctx.agent.agent_id)
        yield ctx.sleep(0)

    def main(ctx):
        agents.append(ctx.agent.agent_id)
        promise = ctx.fork(helper)
        yield promise.claim()

    run_client(system, main)
    assert len(set(agents)) == 2


def test_forked_process_killed_resolves_unavailable(system):
    guardian = system.create_guardian("worker")

    def helper(ctx):
        yield ctx.sleep(100.0)
        return "never"

    outcomes = []

    def main(ctx):
        promise = ctx.fork(helper)
        yield ctx.sleep(1.0)
        # The guardian's node crashes, killing the forked process.
        ctx.guardian.node.crash()
        outcomes.append(promise.ready())
        return promise

    def observer(env, process):
        promise = yield process
        outcome = promise.outcome()
        return outcome.condition

    process = guardian.spawn(main)
    # main itself dies too (same guardian) — watch from outside.
    system.run()
    # The fork promise was resolved unavailable when the process was killed.
    # (main was killed before observing, so check directly.)


def test_fork_multiple_results_via_tuple(system):
    def pair(ctx):
        yield ctx.sleep(0.1)
        return (1, 2)

    def main(ctx):
        promise = ctx.fork(pair, ptype=PromiseType(returns=[INT, INT]))
        value = yield promise.claim()
        return value

    assert run_client(system, main) == (1, 2)


def test_fork_nested_forks(system):
    def leaf(ctx, n):
        yield ctx.sleep(0.5)
        return n

    def branch(ctx, n):
        left = ctx.fork(leaf, n)
        right = ctx.fork(leaf, n + 1)
        a = yield left.claim()
        b = yield right.claim()
        return a + b

    def main(ctx):
        promise = ctx.fork(branch, 10)
        value = yield promise.claim()
        return value

    assert run_client(system, main) == 21
