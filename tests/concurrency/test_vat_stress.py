"""Vat scheduler stress runs (PR 6 tentpole scale check).

Excluded from the default tier-1 run (see ``addopts`` in pyproject.toml);
CI runs them in a dedicated ``vat-stress`` step with
``pytest -m vat_stress``.  The point: one process — in fact *zero*
simulated processes — can hold 10^5 pending promises and consume every
resolution, which is exactly what the blocking ``claim`` model cannot do
without 10^5 generators.
"""

import time

import pytest

from repro.core.outcome import Outcome
from repro.core.promise import Promise
from repro.sim.kernel import Environment

N = 100_000


@pytest.mark.vat_stress
def test_hundred_thousand_pending_promises_zero_processes():
    env = Environment()
    promises = [Promise(env) for _ in range(N)]
    state = {"consumed": 0}

    def consume(outcome):
        state["consumed"] += outcome.results[0]

    start = time.perf_counter()
    for promise in promises:
        promise.on_resolved(consume)

    def resolve_all():
        for promise in promises:
            promise.resolve(Outcome.normal(1))

    env.call_in(1.0, resolve_all)
    env.run()
    elapsed = time.perf_counter() - start
    assert state["consumed"] == N
    assert env._next_pid == 0  # no simulated process was ever created
    assert env.vat.callbacks_run == N
    # Generous wall-clock budget (regression guard, not a benchmark —
    # BENCH_PR6.json holds the real numbers): ~2s locally, 30s allowed.
    assert elapsed < 30.0, "vat consumed %d promises in %.1fs" % (N, elapsed)


@pytest.mark.vat_stress
def test_hundred_thousand_promise_gather():
    env = Environment()
    promises = [Promise(env) for _ in range(N)]
    gathered = Promise.all(env, promises)

    def resolve_all():
        for index, promise in enumerate(promises):
            promise.resolve(Outcome.normal(index))

    env.call_in(1.0, resolve_all)
    env.run()
    (values,) = gathered.outcome().results
    assert len(values) == N and values[0] == 0 and values[-1] == N - 1
    assert env._next_pid == 0


@pytest.mark.vat_stress
def test_deep_continuation_chain_does_not_recurse():
    # 50k chained hops settle iteratively through vat drains; a recursive
    # delivery scheme would blow the interpreter stack three orders of
    # magnitude earlier.
    env = Environment()
    depth = 50_000
    promise = Promise(env)
    tail = promise
    for _ in range(depth):
        tail = tail.when_fulfilled(lambda value: value + 1)
    promise.resolve(Outcome.normal(0))
    env.run()
    assert tail.outcome().results == (depth,)
