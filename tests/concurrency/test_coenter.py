"""The coenter statement: grouping, early termination, wounding (§4.2)."""

import pytest

from repro.concurrency import CoenterTerminated, PromiseQueue, QueueClosed
from repro.core import Signal, Unavailable
from repro.sim import Interrupt

from ..conftest import run_client


def test_all_arms_complete_normally(system):
    def arm(ctx, n):
        yield ctx.sleep(n)
        return n * 10

    def main(ctx):
        co = ctx.coenter()
        co.arm(arm, 1)
        co.arm(arm, 2)
        co.arm(arm, 3)
        results = yield co.run()
        return (results, ctx.now)

    results, now = run_client(system, main)
    assert results == [10, 20, 30]
    assert now == 3.0  # parent halted until all subprocesses complete


def test_parent_halted_until_all_arms_finish(system):
    finished = []

    def arm(ctx, n):
        yield ctx.sleep(n)
        finished.append(n)

    def main(ctx):
        co = ctx.coenter()
        co.arm(arm, 5)
        co.arm(arm, 1)
        yield co.run()
        return list(finished)

    assert run_client(system, main) == [1, 5]


def test_exception_terminates_sibling_arms(system):
    progress = []

    def failing(ctx):
        yield ctx.sleep(1.0)
        raise Signal("trouble")

    def worker(ctx):
        try:
            for index in range(100):
                yield ctx.sleep(1.0)
                progress.append(index)
        except Interrupt:
            progress.append("terminated")
            raise

    def main(ctx):
        co = ctx.coenter()
        co.arm(failing)
        co.arm(worker)
        try:
            yield co.run()
            return "normal"
        except Signal as sig:
            return sig.condition

    assert run_client(system, main) == "trouble"
    assert progress[-1] == "terminated"
    assert len(progress) <= 2


def test_first_exception_wins(system):
    def fail_at(ctx, t, name):
        yield ctx.sleep(t)
        raise Signal(name)

    def main(ctx):
        co = ctx.coenter()
        co.arm(fail_at, 2.0, "second")
        co.arm(fail_at, 1.0, "first")
        try:
            yield co.run()
        except Signal as sig:
            return sig.condition

    assert run_client(system, main) == "first"


def test_guarded_queue_closed_on_termination(system):
    """The Figure 4-1 hang, solved: the consumer is terminated instead of
    blocking in deq forever."""
    witnessed = []

    def producer(ctx, queue):
        yield ctx.sleep(1.0)
        raise Signal("cannot_produce")

    def consumer(ctx, queue):
        try:
            yield queue.deq()
            witnessed.append("got item")
        except (Interrupt, QueueClosed) as exc:
            witnessed.append(type(exc).__name__)
            raise

    def main(ctx):
        co = ctx.coenter()
        queue = PromiseQueue(ctx.env)
        co.guard_queue(queue.raw)
        co.arm(producer, queue)
        co.arm(consumer, queue)
        try:
            yield co.run()
        except Signal as sig:
            return (sig.condition, ctx.now)

    condition, now = run_client(system, main)
    assert condition == "cannot_produce"
    assert now < 5.0  # terminated promptly, no hang
    assert witnessed and witnessed[0] in ("Interrupt", "QueueClosed")


def test_critical_section_delays_termination(system):
    """'The Argus runtime system keeps track of how many critical sections
    a process is in and delays its termination until the count is zero.'"""
    log = []

    def careful(ctx):
        try:
            with ctx.critical():
                yield ctx.sleep(3.0)  # must not be interrupted here
                log.append(("left critical", ctx.now))
            yield ctx.sleep(100.0)
        except Interrupt:
            log.append(("terminated", ctx.now))
            raise

    def failing(ctx):
        yield ctx.sleep(1.0)
        raise Signal("abort_now")

    def main(ctx):
        co = ctx.coenter()
        co.arm(careful)
        co.arm(failing)
        try:
            yield co.run()
        except Signal:
            return log

    log = run_client(system, main)
    # The critical section completed in full before termination landed.
    assert log == [("left critical", 3.0), ("terminated", 3.0)]


def test_wounded_process_cannot_make_remote_calls(system):
    """'we "wound" it ... it cannot make any remote calls at such a
    point.'"""
    server = system.create_guardian("server")
    from repro.types import HandlerType, INT

    def echo(ctx, x):
        yield ctx.compute(0.1)
        return x

    server.create_handler("echo", HandlerType(args=[INT], returns=[INT]), echo)
    outcome = []

    def wounded_arm(ctx):
        echo_ref = ctx.lookup("server", "echo")
        with ctx.critical():
            yield ctx.sleep(2.0)  # sibling fails at t=1; we get wounded
            try:
                echo_ref.stream(1)
                outcome.append("call allowed")
            except Unavailable as exc:
                outcome.append("refused" if "wounded" in exc.reason else "other")

    def failing(ctx):
        yield ctx.sleep(1.0)
        raise Signal("die")

    def main(ctx):
        co = ctx.coenter()
        co.arm(wounded_arm)
        co.arm(failing)
        try:
            yield co.run()
        except Signal:
            return outcome

    assert run_client(system, main) == ["refused"]


def test_arm_each_dynamic_arms(system):
    def per_item(ctx, item):
        yield ctx.sleep(0.1)
        return item * item

    def main(ctx):
        co = ctx.coenter()
        co.arm_each(per_item, [1, 2, 3, 4])
        results = yield co.run()
        return results

    assert run_client(system, main) == [1, 4, 9, 16]


def test_empty_coenter_is_noop(system):
    def main(ctx):
        results = yield ctx.coenter().run()
        return results

    assert run_client(system, main) == []


def test_coenter_cannot_run_twice(system):
    def arm(ctx):
        yield ctx.sleep(0.1)

    def main(ctx):
        co = ctx.coenter()
        co.arm(arm)
        yield co.run()
        with pytest.raises(RuntimeError):
            co.run()
        with pytest.raises(RuntimeError):
            co.arm(arm)

    run_client(system, main)


def test_terminated_arm_sees_coenter_terminated_cause(system):
    causes = []

    def victim(ctx):
        try:
            yield ctx.sleep(100.0)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)
            raise

    def failing(ctx):
        yield ctx.sleep(1.0)
        raise Signal("reason")

    def main(ctx):
        co = ctx.coenter()
        co.arm(victim)
        co.arm(failing)
        try:
            yield co.run()
        except Signal:
            pass

    run_client(system, main)
    assert len(causes) == 1
    assert isinstance(causes[0], CoenterTerminated)
    assert isinstance(causes[0].cause, Signal)


def test_nested_coenter(system):
    def leaf(ctx, n):
        yield ctx.sleep(0.1)
        return n

    def inner_arm(ctx):
        co = ctx.coenter()
        co.arm(leaf, 1)
        co.arm(leaf, 2)
        results = yield co.run()
        return sum(results)

    def main(ctx):
        co = ctx.coenter()
        co.arm(inner_arm)
        co.arm(leaf, 10)
        results = yield co.run()
        return results

    assert run_client(system, main) == [3, 10]


# ----------------------------------------------------------------------
# as_promise: the coenter as a continuation-layer citizen (PR 6)
# ----------------------------------------------------------------------
def test_as_promise_fulfils_with_arm_results(system):
    def arm(ctx, n):
        yield ctx.sleep(n)
        return n * 10

    def main(ctx):
        co = ctx.coenter()
        co.arm(arm, 1)
        co.arm(arm, 2)
        chained = co.as_promise().when_fulfilled(lambda results: sum(results))
        total = yield chained.claim()
        return (total, ctx.now)

    total, now = run_client(system, main)
    assert total == 30
    assert now == 2.0  # same termination time as co.run()


def test_as_promise_breaks_with_argus_error(system):
    def failing(ctx):
        yield ctx.sleep(1.0)
        raise Signal("arm_down")

    def main(ctx):
        co = ctx.coenter()
        co.arm(failing)
        recovered = co.as_promise().when_broken(lambda exc: exc.condition)
        condition = yield recovered.claim()
        return condition

    assert run_client(system, main) == "arm_down"


def test_as_promise_wraps_plain_exception_as_failure(system):
    def buggy(ctx):
        yield ctx.sleep(0.5)
        raise ValueError("not an argus error")

    def main(ctx):
        co = ctx.coenter()
        co.arm(buggy)
        outcome = yield co.as_promise().wait()
        return outcome.condition

    assert run_client(system, main) == "failure"


def test_as_promise_composes_with_gathers(system):
    from repro.core import Promise

    def arm(ctx, n):
        yield ctx.sleep(n)
        return n

    def main(ctx):
        first = ctx.coenter()
        first.arm(arm, 1)
        second = ctx.coenter()
        second.arm(arm, 2)
        second.arm(arm, 3)
        gathered = Promise.all(ctx.env, [first.as_promise(), second.as_promise()])
        results = yield gathered.claim()
        return results

    assert run_client(system, main) == [[1], [2, 3]]
