"""Ring-buffer mechanics of the vat's callback lane (PR 7).

The FIFO/turn semantics are covered by test_vat.py; these tests target
the ring itself: growth past the initial capacity (including growth
triggered from inside a drain), slot clearing, and the abort-resume
path when a callback raises mid-drain.
"""

import pytest

from repro.concurrency.vat import _INITIAL_CAPACITY, vat_of
from repro.sim import Environment


def test_burst_past_initial_capacity_preserves_fifo():
    env = Environment()
    vat = vat_of(env)
    n = _INITIAL_CAPACITY * 8 + 3
    ran = []
    for index in range(n):
        vat.do_soon(ran.append, index)
    assert vat.pending() == n
    env.run()
    assert ran == list(range(n))
    assert vat.pending() == 0


def test_grow_from_inside_a_drain_preserves_fifo():
    env = Environment()
    vat = vat_of(env)
    ran = []

    def fanout(tag):
        ran.append(tag)
        if tag == 0:
            # Flood well past capacity while the drain loop is running:
            # _ring/_mask swap under its feet and it must not care.
            for index in range(_INITIAL_CAPACITY * 4):
                vat.do_soon(ran.append, ("child", index))

    vat.do_soon(fanout, 0)
    vat.do_soon(ran.append, 1)
    env.run()
    assert ran[:2] == [0, 1]
    assert ran[2:] == [("child", index) for index in range(_INITIAL_CAPACITY * 4)]
    # The whole cascade settled in a single turn (documented guarantee).
    assert vat.turns == 1


def test_consumed_slots_are_cleared():
    env = Environment()
    vat = vat_of(env)
    for index in range(5):
        vat.do_soon(lambda _: None, index)
    env.run()
    assert all(slot is None for slot in vat._ring)


def test_exception_consumes_entry_and_resumes_remainder():
    env = Environment()
    vat = vat_of(env)
    ran = []

    def boom(_):
        raise RuntimeError("boom")

    vat.do_soon(ran.append, "a")
    vat.do_soon(boom, None)
    vat.do_soon(ran.append, "b")
    vat.do_soon(ran.append, "c")
    with pytest.raises(RuntimeError):
        env.run()
    # popleft-then-call: the failing entry is consumed, the rest run in a
    # fresh turn at the same timestamp.
    assert vat.pending() == 2
    env.run()
    assert ran == ["a", "b", "c"]
    assert vat.pending() == 0
    assert vat.turns == 2


def test_span_context_is_set_per_callback_and_reset():
    env = Environment()
    vat = vat_of(env)
    seen = []
    vat.do_soon(lambda _: seen.append(vat.current_span), None, span=(1, 2, 3))
    vat.do_soon(lambda _: seen.append(vat.current_span), None)
    env.run()
    assert seen == [(1, 2, 3), None]
    assert vat.current_span is None
