"""Property-based tests on the promise tree (§3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency import PromiseTree
from repro.sim import Environment


@given(keys=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=60))
def test_in_order_traversal_is_sorted_unique(keys):
    env = Environment()
    tree = PromiseTree(env)
    for key in keys:
        tree.insert(key)
    assert tree.keys_in_order() == sorted(set(keys))
    assert len(tree) == len(set(keys))


@given(keys=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=40, unique=True))
def test_every_inserted_key_probes_successfully(keys):
    env = Environment()
    tree = PromiseTree(env)
    for key in keys:
        tree.insert(key, key * 2)
    for key in keys:
        node = tree.try_search(key)
        assert node is not None
        assert node.value == key * 2
    # A key never inserted does not probe.
    assert tree.try_search(max(keys) + 1) is None


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=25, unique=True),
    data=st.data(),
)
def test_concurrent_searches_always_resolve(keys, data):
    """Whatever the insertion order and search targets, every search for
    an eventually-inserted key resolves with the right value, at or after
    its insertion time."""
    env = Environment()
    tree = PromiseTree(env)
    targets = data.draw(
        st.lists(st.sampled_from(keys), min_size=1, max_size=5, unique=True)
    )
    insert_times = {}
    results = {}

    def inserter(env):
        for key in keys:
            yield env.timeout(1.0)
            tree.insert(key, "v%d" % key)
            insert_times[key] = env.now

    def searcher(env, key):
        value = yield from tree.search(key)
        results[key] = (value, env.now)

    env.process(inserter(env))
    for key in targets:
        env.process(searcher(env, key))
    env.run()

    for key in targets:
        value, found_at = results[key]
        assert value == "v%d" % key
        assert found_at >= insert_times[key]
