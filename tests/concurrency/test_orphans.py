"""Orphan destruction (§4.2).

"When an action is terminated, we do not wait to terminate any calls that
may be running elsewhere.  Instead, the Argus system guarantees that it
will find these computations and destroy them later."
"""


from repro.core import Signal
from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from ..conftest import run_client

SLOW = HandlerType(args=[INT], returns=[INT])


def build(handler_cost=20.0):
    config = StreamConfig(batch_size=1, max_buffer_delay=0.0)
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config)
    server = system.create_guardian("server")
    server.state["started"] = []
    server.state["finished"] = []

    def slow(ctx, x):
        ctx.guardian.state["started"].append(x)
        yield ctx.compute(handler_cost)
        ctx.guardian.state["finished"].append(x)
        return x

    server.create_handler("slow", SLOW, slow)
    return system, server


def test_coenter_does_not_wait_for_remote_calls():
    """The coenter finishes at the failure time, not at the remote call's
    completion time."""
    system, server = build(handler_cost=50.0)

    def caller_arm(ctx):
        ref = ctx.lookup("server", "slow")
        promise = ref.stream(1)
        yield promise.claim()

    def failing_arm(ctx):
        yield ctx.sleep(5.0)
        raise Signal("abort")

    def main(ctx):
        co = ctx.coenter()
        co.arm(caller_arm)
        co.arm(failing_arm)
        try:
            yield co.run()
        except Signal:
            return ctx.now

    finished_at = run_client(system, main)
    assert finished_at < 10.0  # far less than the 50-unit handler


def test_orphaned_remote_execution_is_destroyed():
    """The remote handler started, but termination reaches the server and
    kills it before it completes its effect."""
    system, server = build(handler_cost=50.0)

    def caller_arm(ctx):
        ref = ctx.lookup("server", "slow")
        promise = ref.stream(1)
        yield promise.claim()

    def failing_arm(ctx):
        yield ctx.sleep(5.0)
        raise Signal("abort")

    def main(ctx):
        co = ctx.coenter()
        co.arm(caller_arm)
        co.arm(failing_arm)
        try:
            yield co.run()
        except Signal:
            pass
        # Give the reincarnation announcement time to travel and beat the
        # 50-unit handler completion.
        yield ctx.sleep(20.0)

    run_client(system, main)
    assert server.state["started"] == [1]  # the call did start...
    assert server.state["finished"] == []  # ...but was destroyed, not run


def test_unrelated_streams_survive_orphan_cleanup():
    """Abandoning a terminated arm's streams leaves other activities'
    streams untouched."""
    system, server = build(handler_cost=1.0)

    def victim_arm(ctx):
        ref = ctx.lookup("server", "slow")
        yield ref.stream(10).claim()

    def failing_arm(ctx):
        yield ctx.sleep(0.2)
        raise Signal("abort")

    def main(ctx):
        co = ctx.coenter()
        co.arm(victim_arm)
        co.arm(failing_arm)
        try:
            yield co.run()
        except Signal:
            pass
        # The parent's own agent was never part of the coenter: its stream
        # works normally.
        ref = ctx.lookup("server", "slow")
        value = yield ref.call(99)
        return value

    assert run_client(system, main) == 99
