"""Promise-based binary tree (§3.2) and the shared promise queue."""

import pytest

from repro.concurrency import PromiseQueue, PromiseTree, QueueClosed
from repro.core import Outcome, Promise
from repro.types import PromiseType, REAL

from ..conftest import run_client


# ----------------------------------------------------------------------
# PromiseTree
# ----------------------------------------------------------------------
def test_insert_and_nonblocking_probe(env):
    tree = PromiseTree(env)
    tree.insert(5, "five")
    tree.insert(3, "three")
    tree.insert(8, "eight")
    assert len(tree) == 3
    assert tree.try_search(3).value == "three"
    assert tree.try_search(9) is None
    assert tree.keys_in_order() == [3, 5, 8]


def test_duplicate_insert_updates_value(env):
    tree = PromiseTree(env)
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert len(tree) == 1
    assert tree.try_search(1).value == "b"


def test_search_waits_for_future_insert(system):
    """'If a search reaches a node that cannot be claimed yet, it waits
    until the promise is ready.'"""
    tree = PromiseTree(system.env)
    tree.insert(10, "ten")

    def searcher(ctx):
        value = yield from tree.search(15)
        return (value, ctx.now)

    def inserter(ctx):
        yield ctx.sleep(2.0)
        tree.insert(15, "fifteen")

    client = system.create_guardian("client")
    search_proc = client.spawn(searcher)
    client.spawn(inserter)
    assert system.run(until=search_proc) == ("fifteen", 2.0)


def test_parallel_inserters_and_searchers(system):
    tree = PromiseTree(system.env)
    results = {}

    def searcher(ctx, key):
        value = yield from tree.search(key)
        results[key] = value

    def inserter(ctx, items):
        for key, value in items:
            yield ctx.sleep(0.5)
            tree.insert(key, value)

    client = system.create_guardian("client")
    for key in (4, 9, 1):
        client.spawn(searcher, key)
    client.spawn(inserter, [(9, "nine"), (1, "one"), (4, "four")])
    system.run()
    assert results == {4: "four", 9: "nine", 1: "one"}
    assert tree.keys_in_order() == [1, 4, 9]


def test_search_in_order_of_bst(env):
    tree = PromiseTree(env)
    for key in (50, 30, 70, 20, 40, 60, 80):
        tree.insert(key)
    assert tree.keys_in_order() == [20, 30, 40, 50, 60, 70, 80]


# ----------------------------------------------------------------------
# PromiseQueue
# ----------------------------------------------------------------------
def test_queue_fifo_of_promises(system):
    queue = PromiseQueue(system.env)

    def main(ctx):
        first = Promise(ctx.env)
        second = Promise(ctx.env)
        yield queue.enq(first)
        yield queue.enq(second)
        a = yield queue.deq()
        b = yield queue.deq()
        return (a is first, b is second)

    assert run_client(system, main) == (True, True)


def test_queue_element_type_enforced(system):
    pt = PromiseType(returns=[REAL])
    queue = PromiseQueue(system.env, element_type=pt)

    def main(ctx):
        good = Promise(ctx.env, pt)
        yield queue.enq(good)
        bad = Promise(ctx.env, PromiseType())
        with pytest.raises(TypeError):
            queue.enq(bad)

    run_client(system, main)


def test_queue_close_reason_propagates(system):
    queue = PromiseQueue(system.env)

    def main(ctx):
        queue.close("shutting down")
        try:
            yield queue.deq()
        except QueueClosed:
            return "closed"

    assert run_client(system, main) == "closed"


def test_queue_deq_blocks_until_enq(system):
    queue = PromiseQueue(system.env)
    promise = Promise(system.env)
    promise.resolve(Outcome.normal("payload"))

    def consumer(ctx):
        item = yield queue.deq()
        value = yield item.claim()
        return (value, ctx.now)

    def producer(ctx):
        yield ctx.sleep(3.0)
        yield queue.enq(promise)

    client = system.create_guardian("client")
    consumer_proc = client.spawn(consumer)
    client.spawn(producer)
    assert system.run(until=consumer_proc) == ("payload", 3.0)


def test_queue_len_tracks_contents(system):
    queue = PromiseQueue(system.env)

    def main(ctx):
        assert len(queue) == 0
        yield queue.enq(Promise(ctx.env))
        assert len(queue) == 1
        yield queue.deq()
        assert len(queue) == 0

    run_client(system, main)
