"""Unit tests for the vat scheduler's documented guarantees (PR 6).

These pin the execution model the combinator layer relies on: FIFO
ordering, run-to-completion drains, nested enqueues joining the current
drain, same-timestamp dispatch, recovery after an escaped exception, and
span bookkeeping.
"""

import pytest

from repro.concurrency.vat import Vat, vat_of
from repro.obs.trace import EV_VAT_TURN, Tracer
from repro.sim.kernel import Environment


def test_vat_of_creates_once_and_attaches():
    env = Environment()
    assert env.vat is None
    vat = vat_of(env)
    assert env.vat is vat
    assert vat_of(env) is vat
    assert isinstance(vat, Vat)


def test_fifo_order_across_bursts():
    env = Environment()
    vat = vat_of(env)
    log = []
    for tag in range(10):
        vat.do_soon(log.append, tag)
    env.run()
    assert log == list(range(10))


def test_nested_enqueues_join_the_current_drain():
    env = Environment()
    vat = vat_of(env)
    log = []

    def outer(_arg):
        log.append("outer")
        vat.do_soon(lambda _a: log.append("nested"))

    vat.do_soon(outer)
    vat.do_soon(lambda _a: log.append("sibling"))
    env.run()
    # The nested callback ran in the same drain, after the sibling that
    # was already queued (FIFO), not in a new calendar slot.
    assert log == ["outer", "sibling", "nested"]
    assert vat.turns == 1
    assert vat.callbacks_run == 3


def test_same_timestamp_dispatch():
    env = Environment()
    vat = vat_of(env)
    seen = []
    env.call_in(5.0, lambda: vat.do_soon(lambda _a: seen.append(env.now)))
    env.call_in(9.0, lambda: vat.do_soon(lambda _a: seen.append(env.now)))
    env.run()
    # Each burst drains at the simulated time it was enqueued at.
    assert seen == [5.0, 9.0]
    assert vat.turns == 2


def test_run_to_completion_is_not_preempted_by_the_calendar():
    env = Environment()
    vat = vat_of(env)
    log = []
    env.call_in(1.0, lambda: log.append("timer"))

    def first(_arg):
        log.append("first")
        # Queued mid-drain: must still run before any later-time event.
        vat.do_soon(lambda _a: log.append("second"))

    vat.do_soon(first)
    env.run()
    assert log == ["first", "second", "timer"]


def test_escaped_exception_reschedules_the_remainder():
    env = Environment()
    vat = vat_of(env)
    log = []

    def bad(_arg):
        raise RuntimeError("callback escaped")

    vat.do_soon(lambda _a: log.append("before"))
    vat.do_soon(bad)
    vat.do_soon(lambda _a: log.append("after"))
    with pytest.raises(RuntimeError, match="callback escaped"):
        env.run()
    assert log == ["before"]
    env.run()  # the rescheduled drain picks up the survivors
    assert log == ["before", "after"]
    assert vat.turns == 2


def test_current_span_set_during_callback_and_cleared_after():
    env = Environment()
    vat = vat_of(env)
    seen = []
    span = (1, 2, 3)
    vat.do_soon(lambda _a: seen.append(vat.current_span), span=span)
    vat.do_soon(lambda _a: seen.append(vat.current_span))
    env.run()
    assert seen == [span, None]
    assert vat.current_span is None


def test_vat_turn_trace_event():
    env = Environment()
    Tracer.install(env)
    vat = vat_of(env)
    vat.do_soon(lambda _a: None)
    vat.do_soon(lambda _a: None)
    env.run()
    turns = [e for e in env.tracer.events if e.type == EV_VAT_TURN]
    assert len(turns) == 1
    assert turns[0].fields == {"callbacks": 2, "pending": 0}


def test_pending_counts_queued_callbacks():
    env = Environment()
    vat = vat_of(env)
    assert vat.pending() == 0
    vat.do_soon(lambda _a: None)
    vat.do_soon(lambda _a: None)
    assert vat.pending() == 2
    env.run()
    assert vat.pending() == 0
