"""Test package."""
