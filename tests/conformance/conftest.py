"""Backend parametrization for the conformance suite.

Every test taking the ``backend`` fixture runs twice: once on the
deterministic simulator (plain tier-1 test) and once on the wallclock
asyncio backend (marked ``wallclock``, excluded from tier-1 by the
default ``addopts`` and run by the ``net-parity`` CI job).
"""

from __future__ import annotations

import os
import re

import pytest

from tests.conformance.harness import AsyncioBackend, SimBackend


def _trace_root() -> str:
    """Where wallclock traces go: ``RT_TRACE_DIR`` in CI (uploaded as
    artifacts on failure), pytest's tmp dir otherwise."""
    return os.environ.get("RT_TRACE_DIR", "")


@pytest.fixture(
    params=["sim", pytest.param("asyncio", marks=pytest.mark.wallclock)]
)
def backend(request, tmp_path):
    if request.param == "sim":
        return SimBackend()
    root = _trace_root()
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    trace_dir = os.path.join(root, slug) if root else str(tmp_path / "traces")
    return AsyncioBackend(trace_dir=trace_dir)
