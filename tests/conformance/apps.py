"""Shared scenario applications for the backend-conformance suite.

Every scenario here is expressed purely against the facade both
backends present (``create_guardian`` / ``create_handler`` / ``lookup``
on the owner object), so the *same* guardian setup functions build the
world on a traced :class:`~repro.entities.system.ArgusSystem` and
inside an :class:`~repro.rt.host.RtHost` worker process.  Setup
functions must stay module-level: the wallclock backend ships them to
spawned worker interpreters by pickling them *by reference*.

A :class:`World` bundles the server setups with the topology
declarations the wallclock client needs (guardian -> handler -> type);
the simulator backend ignores the topology because its registry is
shared.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.types.signatures import INT, ArrayOf, HandlerType

__all__ = [
    "World",
    "ECHO_T",
    "APPEND_T",
    "DUMP_T",
    "ECHO_WORLD",
    "SEQ_WORLD",
    "client_exactly_once",
    "client_ordering",
    "client_effects_exactly_once",
    "client_promise_claims",
    "client_coenter",
    "client_flow_control",
    "client_span_flow",
]

ECHO_T = HandlerType(args=[INT], returns=[INT])
APPEND_T = HandlerType(args=[INT], returns=[])
DUMP_T = HandlerType(args=[], returns=[ArrayOf(INT)])


class World:
    """One conformance scenario's server side.

    ``servers`` maps guardian name -> module-level ``setup(owner)``
    function; ``topology`` maps guardian name -> {handler: type} so the
    wallclock client host can :meth:`~repro.rt.host.RtHost.declare` the
    remote handlers.  Guardian *g* always lives on node ``node:g`` —
    the default both backends use.
    """

    def __init__(
        self,
        name: str,
        servers: Dict[str, Callable],
        topology: Dict[str, Dict[str, HandlerType]],
    ) -> None:
        self.name = name
        self.servers = dict(servers)
        self.topology = {g: dict(h) for g, h in topology.items()}


# ----------------------------------------------------------------------
# Server guardians
# ----------------------------------------------------------------------
def setup_echo(owner) -> None:
    """A pure-function guardian: ``echo(n) = 3n + 1``."""
    guardian = owner.create_guardian("echo")

    def echo_impl(ctx, n):
        return 3 * n + 1
        yield  # pragma: no cover - marks impl as a generator

    guardian.create_handler("echo", ECHO_T, echo_impl)


def setup_seq(owner) -> None:
    """A side-effecting guardian: ``append`` logs, ``dump`` reads back.

    The log makes duplicate execution *observable*: a call delivered or
    executed twice shows up as a repeated entry, which no end-value
    check on a pure function could ever catch.
    """
    guardian = owner.create_guardian("seq")

    def append_impl(ctx, n):
        guardian.state.setdefault("log", []).append(n)
        return None
        yield  # pragma: no cover

    def dump_impl(ctx):
        return list(guardian.state.get("log", ()))
        yield  # pragma: no cover

    guardian.create_handler("append", APPEND_T, append_impl)
    guardian.create_handler("dump", DUMP_T, dump_impl)


ECHO_WORLD = World("echo", {"echo": setup_echo}, {"echo": {"echo": ECHO_T}})
SEQ_WORLD = World(
    "seq", {"seq": setup_seq}, {"seq": {"append": APPEND_T, "dump": DUMP_T}}
)


# ----------------------------------------------------------------------
# Client procedures (run in the test process on both backends)
# ----------------------------------------------------------------------
def client_ordering(ctx):
    """40 buffered sends, a synch barrier, then a read-back RPC."""
    append = ctx.lookup("seq", "append")
    for i in range(40):
        append.send(i)
    yield append.synch()
    dump = ctx.lookup("seq", "dump")
    log = yield dump.call()
    return log


def client_effects_exactly_once(ctx):
    """Like :func:`client_ordering` but sized for a disturbed link."""
    append = ctx.lookup("seq", "append")
    for i in range(30):
        append.send(i)
    yield append.synch()
    dump = ctx.lookup("seq", "dump")
    log = yield dump.call()
    return log


def client_exactly_once(ctx):
    """50 stream calls claimed in order; values betray re-execution."""
    echo = ctx.lookup("echo", "echo")
    promises = [echo.stream(i) for i in range(50)]
    echo.flush()
    values = []
    for promise in promises:
        value = yield promise.claim()
        values.append(value)
    return values


def client_promise_claims(ctx):
    """Out-of-order claims, repeated claims, and a continuation chain."""
    echo = ctx.lookup("echo", "echo")
    p1 = echo.stream(1)
    p2 = echo.stream(2)
    p3 = echo.stream(3)
    echo.flush()
    derived = p1.when_fulfilled(lambda v: v * 10)
    v3 = yield p3.claim()  # claim newest first: no ordering constraint
    v1 = yield p1.claim()
    v1_again = yield p1.claim()  # a promise claims the same value forever
    dv = yield derived.claim()
    v2 = yield p2.claim()
    return [v1, v1_again, v2, v3, dv]


def _coenter_arm(arm_ctx, n):
    echo = arm_ctx.lookup("echo", "echo")
    value = yield echo.call(n)
    return value


def client_coenter(ctx):
    """Three concurrent arms each doing a blocking RPC (§4.2)."""
    co = ctx.coenter()
    for n in (5, 6, 7):
        co.arm(_coenter_arm, n)
    results = yield co.run()
    return results


def client_flow_control(ctx):
    """60 stream calls through a 4-call window; returns sender stats."""
    echo = ctx.lookup("echo", "echo")
    promises = [echo.stream(i) for i in range(60)]
    echo.flush()
    values = []
    for promise in promises:
        value = yield promise.claim()
        values.append(value)
    return {"values": values, "sender": echo.stream_sender.stats.snapshot()}


def client_span_flow(ctx):
    """A handful of calls whose spans must surface server-side."""
    echo = ctx.lookup("echo", "echo")
    promises = [echo.stream(i) for i in range(5)]
    echo.flush()
    values = []
    for promise in promises:
        value = yield promise.claim()
        values.append(value)
    return values
