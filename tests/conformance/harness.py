"""Backend harnesses for the conformance suite.

Both harnesses expose one method::

    result = backend.run(world, client_procedure,
                         stream_config=..., lossy=...)

and return a :class:`RunResult` carrying the client procedure's return
value plus every captured trace, so the tests assert the *same*
application-level outcomes and replay the *same* invariant monitors
regardless of which backend produced the events.

* :class:`SimBackend` builds one traced
  :class:`~repro.entities.system.ArgusSystem`; everything is
  bit-deterministic, including the ``lossy`` disturbance (seeded packet
  loss).
* :class:`AsyncioBackend` spawns the world's guardians as real OS
  processes via :class:`~repro.rt.cluster.RtCluster` and drives the
  client from this process over TCP; ``lossy`` becomes forced
  connection resets every few frames.  Per-process JSONL traces land in
  ``trace_dir`` (the ``net-parity`` CI job uploads them on failure).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.entities.system import ArgusSystem
from repro.obs.monitor import DEFAULT_MONITORS, MonitorSuite, MonitorViolation
from repro.obs.trace import TraceEvent, load_jsonl
from repro.streams.config import StreamConfig

from tests.conformance.apps import World

__all__ = [
    "RunResult",
    "SimBackend",
    "AsyncioBackend",
    "check_invariants",
    "executing_seqs",
    "trace_ids",
]

#: Seed for the simulator's disturbed runs: fixed so "lossy" is as
#: reproducible as the clean path.
SIM_LOSS_SEED = 2026
SIM_LOSS_RATE = 0.15
#: On the wallclock backend, abort every connection after this many
#: outgoing frames (both directions die; the stream layer redials and
#: retransmits).
RT_RESET_AFTER_FRAMES = 4


class RunResult:
    """Outcome of one scenario run on one backend."""

    def __init__(
        self,
        backend: str,
        value: Any,
        traces: Dict[str, List[TraceEvent]],
        stats: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> None:
        self.backend = backend
        self.value = value
        #: trace label (process) -> events.  The simulator has a single
        #: combined trace; the wallclock backend has one per process.
        self.traces = traces
        self.stats = stats or {}

    def all_events(self) -> List[TraceEvent]:
        events: List[TraceEvent] = []
        for trace in self.traces.values():
            events.extend(trace)
        return events


def check_invariants(events: List[TraceEvent]) -> List[MonitorViolation]:
    """Replay *events* through the transport-invariant monitors.

    Each process's trace must be replayed separately — stream serials
    and promise ids are per-process namespaces.
    """
    suite = MonitorSuite(strict=False, monitors=DEFAULT_MONITORS)
    for event in events:
        suite.observe(event.type, event.time, event.fields)
    return suite.violations


def assert_invariants(result: RunResult) -> None:
    for label, trace in result.traces.items():
        violations = check_invariants(trace)
        assert not violations, "[%s/%s] %s" % (
            result.backend,
            label,
            "; ".join(str(v) for v in violations),
        )


def executing_seqs(events: List[TraceEvent], port_id: str) -> List[int]:
    """Stream serials of ``stream.call_executing`` events for *port_id*,
    in execution order — the server-side exactly-once/FIFO witness."""
    return [
        ev.fields["seq"]
        for ev in events
        if ev.type == "stream.call_executing" and ev.fields.get("port") == port_id
    ]


def trace_ids(events: List[TraceEvent], etype: Optional[str] = None) -> set:
    """Distinct non-null trace ids on *events* (optionally one type)."""
    out = set()
    for ev in events:
        if etype is not None and ev.type != etype:
            continue
        tid = ev.fields.get("trace_id")
        if tid is not None:
            out.add(tid)
    return out


class SimBackend:
    """The deterministic twin: one traced in-process simulation."""

    name = "sim"

    def run(
        self,
        world: World,
        client: Callable,
        stream_config: Optional[StreamConfig] = None,
        lossy: bool = False,
    ) -> RunResult:
        system = ArgusSystem(
            latency=1.0,
            kernel_overhead=0.1,
            tracing=True,
            stream_config=stream_config,
            loss_rate=SIM_LOSS_RATE if lossy else 0.0,
            seed=SIM_LOSS_SEED,
        )
        for setup in world.servers.values():
            setup(system)
        client_guardian = system.create_guardian("client")
        proc = client_guardian.spawn(client)
        value = system.run(until=proc)
        return RunResult(
            self.name,
            value,
            {"sim": list(system.tracer.events)},
            {"sim": system.stats()},
        )


class AsyncioBackend:
    """The wallclock backend: worker processes on real sockets."""

    name = "asyncio"

    def __init__(self, trace_dir: str, timeout: float = 60.0) -> None:
        self.trace_dir = trace_dir
        self.timeout = timeout

    def run(
        self,
        world: World,
        client: Callable,
        stream_config: Optional[StreamConfig] = None,
        lossy: bool = False,
    ) -> RunResult:
        from repro.rt import RtCluster

        workers = {
            "node:%s" % name: setup for name, setup in world.servers.items()
        }
        cluster = RtCluster(
            workers,
            stream_config=stream_config,
            trace_dir=self.trace_dir,
        )
        cluster.start()
        host = None
        stats: Dict[str, Dict[str, int]] = {}
        try:
            host = cluster.client_host(tracing=True, stream_config=stream_config)
            for guardian_name, handlers in world.topology.items():
                for handler_name, handler_type in handlers.items():
                    host.declare(
                        guardian_name,
                        handler_name,
                        handler_type,
                        node="node:%s" % guardian_name,
                    )
            if lossy:
                host.network.reset_after_frames = RT_RESET_AFTER_FRAMES
            client_guardian = host.create_guardian("client")
            proc = client_guardian.spawn(client)
            value = host.run(until=proc, timeout=self.timeout)
            client_events = list(host.tracer.events)
            host.export_trace(os.path.join(self.trace_dir, "node_client.trace.jsonl"))
            stats["node:client"] = host.stats()
        except BaseException:
            # A failed or timed-out run: hard-stop the workers so the
            # original failure surfaces, not a secondary stop() error.
            # Best-effort client trace export first — it is the artifact
            # the net-parity CI job uploads to debug the failure.
            if host is not None:
                try:
                    host.export_trace(
                        os.path.join(self.trace_dir, "node_client.trace.jsonl")
                    )
                except Exception:
                    pass
                host.shutdown()
            cluster.kill()
            raise
        host.shutdown()
        stats.update(cluster.stop())
        traces: Dict[str, List[TraceEvent]] = {"node:client": client_events}
        for node in workers:
            path = cluster.trace_path(node)
            if path and os.path.exists(path):
                traces[node] = load_jsonl(path)
        return RunResult(self.name, value, traces, stats)
