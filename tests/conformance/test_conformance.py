"""The backend-conformance battery (DESIGN.md §15).

One set of application-level scenarios — call ordering, exactly-once
under disturbance, promise claim semantics, coenter, stream flow
control, span propagation — asserted identically against the
deterministic simulator and the real-socket asyncio backend.  The
transport invariants (exactly-once delivery, FIFO order, promise
lifecycle) are additionally replayed through the
:mod:`repro.obs.monitor` oracles over every captured trace.

The simulator rows are ordinary tier-1 tests and must stay
bit-deterministic (see ``test_sim_runs_are_bit_deterministic``); the
asyncio rows carry the ``wallclock`` marker and tolerate real-time
jitter — they assert outcomes and invariants, never timings.
"""

from __future__ import annotations

from repro.streams.config import StreamConfig

from tests.conformance import apps
from tests.conformance.harness import (
    SimBackend,
    assert_invariants,
    executing_seqs,
    trace_ids,
)


def test_call_ordering(backend):
    """40 buffered sends arrive in order; synch fences the read-back."""
    result = backend.run(apps.SEQ_WORLD, apps.client_ordering)
    assert result.value == list(range(40))
    assert_invariants(result)


def test_exactly_once_effects_under_disturbance(backend):
    """Side effects happen exactly once despite loss/connection resets.

    The server log is the witness: a duplicated execution would append
    twice, a dropped one would leave a gap — the transport must deliver
    ``0..29`` exactly, in order, through retransmission and dedup.
    """
    result = backend.run(
        apps.SEQ_WORLD, apps.client_effects_exactly_once, lossy=True
    )
    assert result.value == list(range(30))
    assert_invariants(result)


def test_exactly_once_stream_claims_under_disturbance(backend):
    """50 claimed stream calls return exact values under disturbance."""
    result = backend.run(apps.ECHO_WORLD, apps.client_exactly_once, lossy=True)
    assert result.value == [3 * i + 1 for i in range(50)]
    assert_invariants(result)
    # Server-side witness: every serial executed exactly once, in order.
    for label, trace in result.traces.items():
        seqs = executing_seqs(trace, "echo")
        if seqs:  # the trace of the process hosting the echo guardian
            assert seqs == list(range(1, 51)), label


def test_promise_claim_semantics(backend):
    """Out-of-order claims, repeated claims, continuation chaining."""
    result = backend.run(apps.ECHO_WORLD, apps.client_promise_claims)
    # echo(n) = 3n+1: p1=4, p2=7, p3=10; derived = p1 * 10 = 40.
    assert result.value == [4, 4, 7, 10, 40]
    assert_invariants(result)


def test_coenter(backend):
    """Concurrent arms each block on an RPC; results in arm order."""
    result = backend.run(apps.ECHO_WORLD, apps.client_coenter)
    assert result.value == [16, 19, 22]
    assert_invariants(result)


def test_stream_flow_control(backend):
    """A 4-call window forces stalls without losing or reordering."""
    config = StreamConfig(max_inflight_calls=4, batch_size=2)
    result = backend.run(
        apps.ECHO_WORLD, apps.client_flow_control, stream_config=config
    )
    assert result.value["values"] == [3 * i + 1 for i in range(60)]
    sender = result.value["sender"]
    assert sender["window_stalls"] > 0, sender
    assert_invariants(result)


def test_span_propagation(backend):
    """Client-minted trace ids surface in server-side executing events."""
    result = backend.run(apps.ECHO_WORLD, apps.client_span_flow)
    assert result.value == [3 * i + 1 for i in range(5)]
    client_ids = trace_ids(result.all_events(), "stream.call_buffered")
    assert client_ids, "client emitted no spans on buffered calls"
    server_ids = set()
    for trace in result.traces.values():
        server_ids |= trace_ids(trace, "stream.call_executing")
    assert server_ids, "server executed no spanned calls"
    assert server_ids <= client_ids, (server_ids, client_ids)


def test_sim_runs_are_bit_deterministic():
    """The simulator rows above are reproducible event-for-event."""

    def one_run():
        result = SimBackend().run(
            apps.SEQ_WORLD, apps.client_effects_exactly_once, lossy=True
        )
        return [
            (ev.time, ev.type, sorted(ev.fields.items()))
            for ev in result.all_events()
        ]

    assert one_run() == one_run()
