"""Atomic actions and atomic objects (§4.2's all-or-nothing guarantee)."""

import pytest

from repro.core import Signal
from repro.transactions import (
    Action,
    ActionAborted,
    AtomicCell,
    AtomicMap,
    run_as_action,
)

from ..conftest import run_client


def test_commit_makes_writes_permanent(system):
    cell = AtomicCell(system.env, 0)

    def body(ctx):
        yield cell.write(ctx.action, 42)

    def main(ctx):
        yield from run_as_action(ctx, body)
        return cell.peek()

    assert run_client(system, main) == 42


def test_abort_undoes_writes(system):
    cell = AtomicCell(system.env, "original")

    def body(ctx):
        yield cell.write(ctx.action, "tainted")
        raise Signal("problem")

    def main(ctx):
        try:
            yield from run_as_action(ctx, body)
        except Signal:
            pass
        return cell.peek()

    assert run_client(system, main) == "original"


def test_abort_undoes_multiple_writes_in_reverse(system):
    store = AtomicMap(system.env)

    def body(ctx):
        yield store.write(ctx.action, "a", 1)
        yield store.write(ctx.action, "b", 2)
        raise Signal("stop")

    def main(ctx):
        try:
            yield from run_as_action(ctx, body)
        except Signal:
            pass
        return store.snapshot()

    assert run_client(system, main) == {"a": None, "b": None}


def test_read_sees_own_writes(system):
    cell = AtomicCell(system.env, 1)

    def body(ctx):
        yield cell.write(ctx.action, 2)
        value = yield cell.read(ctx.action)
        return value

    def main(ctx):
        value = yield from run_as_action(ctx, body)
        return value

    assert run_client(system, main) == 2


def test_write_lock_excludes_other_action(system):
    cell = AtomicCell(system.env, 0)
    log = []

    def writer(ctx, value, hold):
        def body(bctx):
            yield cell.write(bctx.action, value)
            yield bctx.sleep(hold)
            log.append((value, bctx.now))

        yield from run_as_action(ctx, body)

    def main(ctx):
        first = ctx.fork(writer, 1, 5.0)
        yield ctx.sleep(0.1)
        second = ctx.fork(writer, 2, 0.0)
        yield first.claim()
        yield second.claim()
        return (log, cell.peek())

    log, final = run_client(system, main)
    # The second writer waited for the first to commit.
    assert log[0][0] == 1
    assert log[1][1] >= 5.0
    assert final == 2


def test_readers_share_writer_excluded(system):
    cell = AtomicCell(system.env, 7)
    times = {}

    def reader(ctx, tag):
        def body(bctx):
            value = yield cell.read(bctx.action)
            yield bctx.sleep(2.0)
            times[tag] = bctx.now
            return value

        result = yield from run_as_action(ctx, body)
        return result

    def main(ctx):
        a = ctx.fork(reader, "r1")
        b = ctx.fork(reader, "r2")
        va = yield a.claim()
        vb = yield b.claim()
        return (va, vb)

    assert run_client(system, main) == (7, 7)
    # Readers overlapped (both finished at 2.0).
    assert times == {"r1": 2.0, "r2": 2.0}


def test_abort_releases_locks(system):
    cell = AtomicCell(system.env, 0)

    def failing(ctx):
        def body(bctx):
            yield cell.write(bctx.action, 99)
            raise Signal("die")

        yield from run_as_action(ctx, body)

    def succeeding(ctx):
        def body(bctx):
            yield cell.write(bctx.action, 1)

        yield from run_as_action(ctx, body)

    def main(ctx):
        p1 = ctx.fork(failing)
        try:
            yield p1.claim()
        except Signal:
            pass
        p2 = ctx.fork(succeeding)
        yield p2.claim()
        return cell.peek()

    assert run_client(system, main) == 1


def test_operations_on_finished_action_rejected(system):
    cell = AtomicCell(system.env, 0)

    def main(ctx):
        action = Action(ctx.env)
        action.commit()
        with pytest.raises(ActionAborted):
            cell.write(action, 1)
        yield ctx.sleep(0)

    run_client(system, main)


def test_commit_twice_is_idempotent_abort_after_commit_rejected(system):
    action = Action(system.env)
    action.commit()
    action.commit()
    with pytest.raises(RuntimeError):
        action.abort()


def test_abort_twice_is_idempotent(system):
    action = Action(system.env)
    action.abort()
    action.abort()
    assert action.state == "aborted"


def test_coenter_atomic_arm_aborts_on_early_termination(system):
    """§4.2: 'running the recording process as an atomic transaction can
    ensure that if it is not possible to record all grades, none will be
    recorded.'"""
    store = AtomicMap(system.env)

    def recorder(ctx):
        for index in range(10):
            yield store.write(ctx.action, index, "grade%d" % index)
            yield ctx.sleep(1.0)

    def failing(ctx):
        yield ctx.sleep(3.5)
        raise Signal("trouble")

    def main(ctx):
        co = ctx.coenter()
        co.arm(recorder, atomic=True)
        co.arm(failing)
        try:
            yield co.run()
            return "normal"
        except Signal:
            # The recorder was terminated mid-way; its writes were undone.
            return store.snapshot()

    snapshot = run_client(system, main)
    assert all(value is None for value in snapshot.values())


def test_coenter_atomic_arm_commits_on_success(system):
    store = AtomicMap(system.env)

    def recorder(ctx):
        for index in range(3):
            yield store.write(ctx.action, index, index * 10)

    def main(ctx):
        co = ctx.coenter()
        co.arm(recorder, atomic=True)
        yield co.run()
        return store.snapshot()

    assert run_client(system, main) == {0: 0, 1: 10, 2: 20}
