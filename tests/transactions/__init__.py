"""Test package."""
