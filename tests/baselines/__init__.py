"""Test package."""
