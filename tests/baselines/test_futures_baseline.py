"""MultiLisp-style futures: implicit claim cost and error values (§3.3)."""

import pytest

from repro.baselines import ErrorValue, FutureRuntime, MLFuture
from repro.core import Signal

from ..conftest import run_client


def test_future_computes_in_parallel(system):
    runtime = FutureRuntime(system.env)

    def slow_add(ctx, a, b):
        yield ctx.sleep(3.0)
        return a + b

    def main(ctx):
        future = runtime.future(ctx, slow_add, 1, 2)
        assert ctx.now == 0.0
        value = yield runtime.touch(future)
        return (value, ctx.now)

    assert run_client(system, main) == (3, 3.0)


def test_touch_of_plain_value_passes_through(system):
    runtime = FutureRuntime(system.env)

    def main(ctx):
        value = yield runtime.touch(42)
        return value

    assert run_client(system, main) == 42
    assert runtime.examinations == 1
    assert runtime.futures_found == 0


def test_every_access_is_examined(system):
    """The §3.3 inefficiency: touch() runs per operand, future or not."""
    runtime = FutureRuntime(system.env)

    def main(ctx):
        total = 0
        for index in range(10):
            total = yield from runtime.strict_apply("add", lambda a, b: a + b, total, index)
        return total

    assert run_client(system, main) == 45
    assert runtime.examinations == 20  # two operands per addition


def test_check_cost_charged_per_examination(system):
    runtime = FutureRuntime(system.env, check_cost=0.5)

    def main(ctx):
        yield runtime.touch(1)
        yield runtime.touch(2)
        return ctx.now

    assert run_client(system, main) == 1.0


def test_exception_becomes_error_value_not_raise(system):
    """'exceptions are turned into error values automatically.'"""
    runtime = FutureRuntime(system.env)

    def failing(ctx):
        yield ctx.sleep(0.1)
        raise Signal("root_cause")

    def main(ctx):
        future = runtime.future(ctx, failing)
        value = yield runtime.touch(future)
        return value

    value = run_client(system, main)
    assert isinstance(value, ErrorValue)
    assert isinstance(value.cause, Signal)


def test_error_value_propagates_through_expressions(system):
    """'information about the error value propagates through the
    expression that caused the future to be claimed and then through
    surrounding expressions' — making the origin hard to find."""
    runtime = FutureRuntime(system.env)

    def failing(ctx):
        yield ctx.sleep(0.1)
        raise Signal("root_cause")

    def main(ctx):
        future = runtime.future(ctx, failing)
        a = yield from runtime.strict_apply("add", lambda x, y: x + y, future, 1)
        b = yield from runtime.strict_apply("mul", lambda x, y: x * y, a, 2)
        c = yield from runtime.strict_apply("sub", lambda x, y: x - y, b, 3)
        return c

    value = run_client(system, main)
    assert isinstance(value, ErrorValue)
    # The error value silently flowed through three expressions.
    assert value.history == ["future body", "add", "mul", "sub"]


def test_strict_apply_catches_direct_exception(system):
    runtime = FutureRuntime(system.env)

    def main(ctx):
        value = yield from runtime.strict_apply(
            "div", lambda a, b: a / b, 1, 0
        )
        return value

    value = run_client(system, main)
    assert isinstance(value, ErrorValue)
    assert isinstance(value.cause, ZeroDivisionError)


def test_wrap_promise_as_future(system):
    """Remote promises can be viewed as untyped futures (for E7)."""
    from repro.types import HandlerType, INT

    runtime = FutureRuntime(system.env)
    server = system.create_guardian("server")

    def double(ctx, x):
        yield ctx.compute(0.1)
        return x * 2

    server.create_handler("double", HandlerType(args=[INT], returns=[INT]), double)

    def main(ctx):
        ref = ctx.lookup("server", "double")
        promise = ref.stream(21)
        ref.flush()
        future = runtime.wrap_promise(promise)
        value = yield runtime.touch(future)
        return value

    assert run_client(system, main) == 42


def test_future_double_resolution_rejected(env):
    future = MLFuture(env)
    future.resolve(1)
    with pytest.raises(RuntimeError):
        future.resolve(2)


def test_negative_check_cost_rejected(env):
    with pytest.raises(ValueError):
        FutureRuntime(env, check_cost=-1)
