"""Send/receive and RPC-only baselines (§5)."""

import pytest

from repro.baselines import (
    DatagramBatch,
    Mailbox,
    PairingTable,
    call_sequence,
    call_sequence_collect,
)
from repro.core import Signal
from repro.entities import ArgusSystem
from repro.net import Network
from repro.types import INT, HandlerType

from ..conftest import run_client


def build_mailbox_pair(env, **kwargs):
    defaults = dict(latency=1.0, kernel_overhead=0.1)
    defaults.update(kwargs)
    network = Network(env, **defaults)
    a = network.add_node("a")
    b = network.add_node("b")
    return (
        Mailbox(env, network, a, "mbox:a"),
        Mailbox(env, network, b, "mbox:b"),
        network,
    )


def test_mailbox_send_receive(env):
    box_a, box_b, _network = build_mailbox_pair(env)

    def receiver(env):
        payload = yield box_b.receive()
        return payload

    process = env.process(receiver(env))
    box_a.send("b", "mbox:b", {"hello": True}, 32)
    assert env.run(until=process) == {"hello": True}


def test_mailbox_receive_blocks(env):
    box_a, box_b, _network = build_mailbox_pair(env)
    arrival = []

    def receiver(env):
        yield box_b.receive()
        arrival.append(env.now)

    def sender(env):
        yield env.timeout(5.0)
        box_a.send("b", "mbox:b", "late", 8)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert arrival and arrival[0] > 5.0


def test_user_code_must_pair_replies(env):
    """The §5 complaint: with many calls in flight, user code must
    match replies to requests itself."""
    box_client, box_server, _network = build_mailbox_pair(env)
    pairing = PairingTable()

    def server(env):
        for _ in range(3):
            request = yield box_server.receive()
            conversation_id, value = request
            box_server.send("a", "mbox:a", (conversation_id, value * 2), 16)

    def client(env):
        for value in (10, 20, 30):
            conversation_id = pairing.new_conversation(context=value)
            box_client.send("b", "mbox:b", (conversation_id, value), 16)
        results = {}
        for _ in range(3):
            conversation_id, doubled = yield box_client.receive()
            original = pairing.match(conversation_id)
            results[original] = doubled
        return results

    env.process(server(env))
    process = env.process(client(env))
    assert env.run(until=process) == {10: 20, 20: 40, 30: 60}
    assert pairing.operations == 6  # 3 expects + 3 matches: the burden
    assert pairing.outstanding == 0


def test_unmatched_reply_detected(env):
    pairing = PairingTable()
    with pytest.raises(KeyError):
        pairing.match(9999)
    assert pairing.unmatched == 1


def test_batched_datagrams_reduce_message_count(env):
    box_a, box_b, network = build_mailbox_pair(env)
    got = []

    def receiver(env):
        batch = yield box_b.receive()
        got.extend(payload for _cid, payload, _size in batch.entries)

    process = env.process(receiver(env))
    batch = DatagramBatch([(i, "msg%d" % i, 8) for i in range(10)])
    box_a.send_batch("b", "mbox:b", batch)
    env.run(until=process)
    assert got == ["msg%d" % i for i in range(10)]
    assert network.stats.messages_sent == 1


def test_batch_size_accounts_entries(env):
    batch = DatagramBatch([(1, None, 100), (2, None, 50)])
    assert batch.size == 16 + (16 + 100) + (16 + 50)


# ----------------------------------------------------------------------
# RPC-only helpers
# ----------------------------------------------------------------------
def build_echo_system():
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.1)
        if x < 0:
            raise Signal("negative")
        return x

    server.create_handler(
        "echo", HandlerType(args=[INT], returns=[INT], signals={"negative": []}), echo
    )
    return system


def test_call_sequence_is_strictly_synchronous():
    system = build_echo_system()

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        results = yield from call_sequence(ctx, ref, [(1,), (2,), (3,)])
        return (results, ctx.now)

    results, duration = run_client(system, main)
    assert results == [1, 2, 3]
    # Three full round trips: no overlap possible.
    assert duration > 3 * 2.0


def test_call_sequence_stops_at_first_exception():
    system = build_echo_system()

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        try:
            yield from call_sequence(ctx, ref, [(1,), (-1,), (3,)])
        except Signal as sig:
            return sig.condition

    assert run_client(system, main) == "negative"


def test_call_sequence_collect_gathers_outcomes():
    system = build_echo_system()

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        results = yield from call_sequence_collect(ctx, ref, [(1,), (-1,), (3,)])
        return [(tag, getattr(value, "condition", value)) for tag, value in results]

    assert run_client(system, main) == [
        ("ok", 1),
        ("exception", "negative"),
        ("ok", 3),
    ]
