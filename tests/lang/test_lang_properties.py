"""Property-based robustness tests for the language front end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import LangError, LexError, tokenize
from repro.lang.lexer import KEYWORDS
from repro.lang.parser import parse_module
from repro.lang.pretty import pretty_module

# ----------------------------------------------------------------------
# Lexer robustness
# ----------------------------------------------------------------------
@given(source=st.text(max_size=200))
def test_lexer_never_crashes(source):
    """Arbitrary text either tokenizes or raises LexError — never a raw
    Python exception."""
    try:
        tokens = tokenize(source)
    except LexError:
        return
    assert tokens[-1].kind == "eof"


@given(value=st.integers(min_value=0, max_value=10**15))
def test_int_literals_lex_exactly(value):
    tokens = tokenize(str(value))
    assert tokens[0].kind == "int"
    assert tokens[0].value == value


@given(
    text=st.text(
        alphabet=st.characters(blacklist_characters='"\\\n', blacklist_categories=("Cs",)),
        max_size=50,
    )
)
def test_string_literals_lex_exactly(text):
    tokens = tokenize('"%s"' % text)
    assert tokens[0].kind == "string"
    assert tokens[0].value == text


@given(
    name=st.from_regex(r"[a-z_][a-z0-9_]{0,15}", fullmatch=True).filter(
        lambda word: word not in KEYWORDS
    )
)
def test_identifiers_lex_exactly(name):
    tokens = tokenize(name)
    assert tokens[0].kind == "ident"
    assert tokens[0].value == name


# ----------------------------------------------------------------------
# Parser robustness
# ----------------------------------------------------------------------
@given(source=st.text(max_size=200))
@settings(max_examples=200)
def test_parser_never_crashes(source):
    """Arbitrary text parses or raises a LangError subclass."""
    try:
        parse_module(source)
    except LangError:
        pass


# ----------------------------------------------------------------------
# Generated-program round trips through the pretty-printer
# ----------------------------------------------------------------------
_int_expr = st.recursive(
    st.one_of(
        st.integers(min_value=0, max_value=99).map(str),
        st.sampled_from(["x", "y"]),
    ),
    lambda inner: st.tuples(inner, st.sampled_from(["+", "-", "*"]), inner).map(
        lambda t: "(%s %s %s)" % t
    ),
    max_leaves=8,
)


@given(expr=_int_expr)
@settings(max_examples=100)
def test_generated_expressions_roundtrip(expr):
    source = "program main\n x: int := 1\n y: int := 2\n z: int := %s\nend" % expr
    module = parse_module(source)
    printed = pretty_module(module)
    reparsed = parse_module(printed)
    assert pretty_module(reparsed) == printed
