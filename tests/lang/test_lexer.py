"""Lexer unit tests."""

import pytest

from repro.lang import LexError, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


def test_empty_source():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_identifiers_and_keywords():
    assert kinds("stream foo fork bar") == [
        ("keyword", "stream"),
        ("ident", "foo"),
        ("keyword", "fork"),
        ("ident", "bar"),
    ]


def test_underscored_identifiers():
    assert kinds("record_grade _x a_1") == [
        ("ident", "record_grade"),
        ("ident", "_x"),
        ("ident", "a_1"),
    ]


def test_integers_and_reals():
    assert kinds("42 0 3.5 1e3 2.5e-2") == [
        ("int", 42),
        ("int", 0),
        ("real", 3.5),
        ("real", 1000.0),
        ("real", 0.025),
    ]


def test_int_followed_by_dot_is_not_real():
    # "grades[i].stu" style: 1 . foo must lex as int, dot, ident.
    assert kinds("1.foo") == [("int", 1), ("op", "."), ("ident", "foo")]


def test_string_literals_with_escapes():
    assert kinds(r'"hello" "a\nb" "q\"q"') == [
        ("string", "hello"),
        ("string", "a\nb"),
        ("string", 'q"q'),
    ]


def test_unterminated_string_rejected():
    with pytest.raises(LexError, match="unterminated"):
        tokenize('"oops')


def test_newline_in_string_rejected():
    with pytest.raises(LexError):
        tokenize('"a\nb"')


def test_char_literals():
    assert kinds(r"'a' '\n' '\\'") == [
        ("char", "a"),
        ("char", "\n"),
        ("char", "\\"),
    ]


def test_unterminated_char_rejected():
    with pytest.raises(LexError):
        tokenize("'a")


def test_comments_stripped():
    assert kinds("x % this is a comment\ny") == [("ident", "x"), ("ident", "y")]


def test_operators():
    assert [v for _k, v in kinds(":= <= >= ~= = < > + - * / $ # .")] == [
        ":=",
        "<=",
        ">=",
        "~=",
        "=",
        "<",
        ">",
        "+",
        "-",
        "*",
        "/",
        "$",
        "#",
        ".",
    ]


def test_positions_tracked():
    tokens = tokenize("a\n  b")
    assert tokens[0].pos.line == 1 and tokens[0].pos.column == 1
    assert tokens[1].pos.line == 2 and tokens[1].pos.column == 3


def test_unexpected_character_rejected():
    with pytest.raises(LexError, match="unexpected character"):
        tokenize("a @ b")


def test_unknown_escape_rejected():
    with pytest.raises(LexError):
        tokenize(r'"\q"')
