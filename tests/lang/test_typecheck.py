"""Static type checker tests: the paper's typing guarantees as code."""

import pytest

from repro.lang import TypeCheckError, load_module


def accepts(source):
    load_module(source)


def rejects(source, match=None):
    with pytest.raises(TypeCheckError, match=match):
        load_module(source)


GUARDIAN = """
guardian g is
  handler h (x: int) returns (real) signals (foo(char), e2)
    return (float(x))
  end
  handler noresult (x: int)
    return ()
  end
end
"""


def test_well_typed_program_accepted():
    accepts(
        GUARDIAN
        + """
        pt = promise returns (real) signals (foo(char), e2)
        program main
          p: pt := stream g.h(3)
          y: real := pt$claim(p)
        end
        """
    )


def test_stream_call_has_derived_promise_type():
    """§3: 'Associated with each handler type is a related promise type'
    — assigning to the wrong promise type is a static error."""
    rejects(
        GUARDIAN
        + """
        wrong = promise returns (int)
        program main
          p: wrong := stream g.h(3)
        end
        """,
        match="cannot initialize",
    )


def test_promise_type_must_carry_signals():
    rejects(
        GUARDIAN
        + """
        incomplete = promise returns (real)
        program main
          p: incomplete := stream g.h(3)
        end
        """
    )


def test_call_argument_types_checked():
    rejects(
        GUARDIAN + 'program main\n y: real := g.h("text")\nend',
        match="expected int",
    )


def test_call_argument_count_checked():
    rejects(
        GUARDIAN + "program main\n y: real := g.h(1, 2)\nend",
        match="takes 1 arguments",
    )


def test_claim_result_type_checked():
    rejects(
        GUARDIAN
        + """
        pt = promise returns (real) signals (foo(char), e2)
        program main
          p: pt := stream g.h(3)
          y: string := pt$claim(p)
        end
        """,
        match="cannot initialize",
    )


def test_claim_of_mismatched_promise_rejected():
    rejects(
        GUARDIAN
        + """
        pt = promise returns (real) signals (foo(char), e2)
        other = promise returns (string)
        program main
          p: pt := stream g.h(3)
          y: real := other$claim(p)
        end
        """
    )


def test_except_arm_must_be_raisable():
    """The headline guarantee: an except arm naming an exception no call
    can raise is rejected statically."""
    rejects(
        GUARDIAN
        + """
        pt = promise returns (real) signals (foo(char), e2)
        program main
          p: pt := stream g.h(3)
          y: real := 0.0
          y := pt$claim(p) except when ghost: y := 1.0 end
        end
        """,
        match="ghost",
    )


def test_except_arm_for_declared_signal_accepted():
    accepts(
        GUARDIAN
        + """
        pt = promise returns (real) signals (foo(char), e2)
        program main
          p: pt := stream g.h(3)
          y: real := 0.0
          y := pt$claim(p) except when foo(c: char): y := 1.0 when e2: y := 2.0 end
        end
        """
    )


def test_unavailable_failure_always_allowed():
    """'Since any call can fail, every handler can raise ... failure and
    unavailable.'"""
    accepts(
        GUARDIAN
        + """
        program main
          y: real := 0.0
          y := g.h(1) except
            when unavailable(s: string): y := 1.0
            when failure(s: string): y := 2.0
          end
        end
        """
    )


def test_exception_reply_allowed_on_synch():
    accepts(
        GUARDIAN
        + """
        program main
          begin
            stream g.noresult(1)
            synch g.noresult
          end except when exception_reply: x: int := 0 end
        end
        """
    )


def test_when_arm_param_types_checked():
    rejects(
        GUARDIAN
        + """
        pt = promise returns (real) signals (foo(char), e2)
        program main
          p: pt := stream g.h(3)
          y: real := 0.0
          y := pt$claim(p) except when foo(n: int): y := 1.0 end
        end
        """,
        match="carries",
    )


def test_signal_must_be_declared():
    rejects(
        """
        guardian g is
          handler h (x: int) returns (int)
            signal oops
          end
        end
        """,
        match="not declared",
    )


def test_signal_arg_types_checked():
    rejects(
        """
        guardian g is
          handler h (x: int) returns (int) signals (bad(string))
            signal bad(42)
          end
        end
        """,
        match="expected string",
    )


def test_signal_in_program_rejected():
    rejects(
        "program main\n signal anything\nend",
        match="not allowed in a program",
    )


def test_return_type_checked():
    rejects(
        """
        guardian g is
          handler h (x: int) returns (int)
            return ("nope")
          end
        end
        """,
        match="expected int",
    )


def test_return_count_checked():
    rejects(
        """
        guardian g is
          handler h (x: int) returns (int)
            return (1, 2)
          end
        end
        """,
        match="declares 1",
    )


def test_undeclared_variable_rejected():
    rejects("program main\n x := 5\nend", match="undeclared")


def test_redeclaration_rejected():
    rejects(
        "program main\n x: int := 1\n x: int := 2\nend", match="redeclaration"
    )


def test_condition_must_be_bool():
    rejects("program main\n if 1 then x: int := 0 end\nend", match="bool")
    rejects("program main\n while 1 do x: int := 0 end\nend", match="bool")


def test_for_iterates_arrays_only():
    rejects(
        "program main\n for x: int in 5 do y: int := x end\nend",
        match="iterates arrays",
    )


def test_for_variable_type_must_match():
    rejects(
        "program main\n xs: array[int] := #[1]\n for x: string in xs do y: string := x end\nend",
        match="cannot hold",
    )


def test_arithmetic_type_rules():
    accepts("program main\n x: int := 1 + 2\n y: real := 1 + 2.5\n z: real := 1 / 2\nend")
    rejects('program main\n x: int := 1 + "s"\nend')
    rejects("program main\n x: int := 1 + 2.5\nend", match="cannot initialize")


def test_string_concatenation():
    accepts('program main\n s: string := "a" + "b"\nend')


def test_comparison_rules():
    accepts('program main\n b: bool := 1 < 2\n c: bool := "a" = "b"\nend')
    rejects('program main\n b: bool := 1 < "2"\nend', match="compare")


def test_guardian_not_a_value():
    rejects(GUARDIAN + "program main\n x: int := g\nend", match="not a value")


def test_unknown_handler_rejected():
    rejects(GUARDIAN + "program main\n x: int := g.nothing(1)\nend", match="no handler")


def test_flush_synch_require_handler():
    rejects("program main\n x: int := 1\n flush x\nend", match="requires a handler")


def test_fork_unknown_proc_rejected():
    rejects("program main\n p: promise := fork nobody(1)\nend", match="unknown procedure")


def test_fork_promise_type_derived_from_proc():
    accepts(
        """
        proc work (x: int) returns (int) signals (neg)
          if x < 0 then signal neg end
          return (x)
        end
        pt = promise returns (int) signals (neg)
        program main
          p: pt := fork work(3)
          v: int := 0
          v := pt$claim(p) except when neg: v := -1 end
        end
        """
    )


def test_array_literal_element_types_unify():
    accepts("program main\n xs: array[real] := #[1, 2.5]\nend")
    rejects('program main\n xs: array[int] := #[1, "two"]\nend', match="mixes")


def test_empty_array_literal_takes_context_type():
    accepts("program main\n xs: array[int] := #[]\nend")


def test_record_construction_checked():
    source = """
    sinfo = record [ stu: string, grade: int ]
    program main
      s: sinfo := sinfo${stu: "amy", grade: 90}
    end
    """
    accepts(source)
    rejects(source.replace('grade: 90', 'grade: "A"'), match="expected int")
    rejects(
        """
        sinfo = record [ stu: string, grade: int ]
        program main
          s: sinfo := sinfo${stu: "amy"}
        end
        """,
        match="do not match",
    )


def test_queue_ops_typed():
    accepts(
        """
        pt = promise returns (int)
        guardian g is
          handler h (x: int) returns (int)
            return (x)
          end
        end
        program main
          q: queue[pt] := queue[pt]$create()
          queue[pt]$enq(q, stream g.h(1))
          p: pt := queue[pt]$deq(q)
        end
        """
    )
    rejects(
        """
        pt = promise returns (int)
        other = promise returns (string)
        guardian g is
          handler h (x: int) returns (int)
            return (x)
          end
        end
        program main
          q: queue[other] := queue[other]$create()
          queue[other]$enq(q, stream g.h(1))
        end
        """
    )


def test_duplicate_guardian_names_rejected():
    rejects(
        "guardian a is end\nguardian a is end",
        match="duplicate name",
    )


def test_duplicate_handler_names_rejected():
    rejects(
        """
        guardian g is
          handler h (x: int) returns (int)
            return (x)
          end
          handler h (y: int) returns (int)
            return (y)
          end
        end
        """,
        match="duplicate handler",
    )


def test_others_binds_string_reason():
    accepts(
        GUARDIAN
        + """
        program main
          y: real := 0.0
          y := g.h(1) except when others(why: string): y := 1.0 end
        end
        """
    )
    rejects(
        GUARDIAN
        + """
        program main
          y: real := 0.0
          y := g.h(1) except when others(why: int): y := 1.0 end
        end
        """,
        match="string reason",
    )
