"""Parser unit tests."""

import pytest

from repro.lang import ParseError, parse_module
from repro.lang import ast as A
from repro.types import INT, REAL, STRING, ArrayOf, HandlerType, PromiseType, RecordOf


def test_equates_resolve_in_order():
    module = parse_module(
        """
        sinfo = record [ stu: string, grade: int ]
        info = array [ sinfo ]
        """
    )
    assert module.equates["sinfo"] == RecordOf({"stu": STRING, "grade": INT})
    assert module.equates["info"] == ArrayOf(module.equates["sinfo"])


def test_equate_forward_reference_rejected():
    with pytest.raises(ParseError, match="unknown type name"):
        parse_module("info = array [ sinfo ]\nsinfo = record [ x: int ]")


def test_duplicate_equate_rejected():
    with pytest.raises(ParseError, match="duplicate equate"):
        parse_module("t = int\nt = real")


def test_paper_handlertype_syntax():
    """`ht = handlertype (int) returns (real) signals (e1(char), e2)`"""
    module = parse_module(
        "ht = handlertype (int) returns (real) signals (e1(char), e2)"
    )
    ht = module.equates["ht"]
    assert isinstance(ht, HandlerType)
    assert ht.args == (INT,)
    assert ht.returns == (REAL,)
    assert set(ht.signals) == {"e1", "e2"}


def test_paper_promise_syntax():
    """`pt = promise returns (real) signals (foo)`"""
    module = parse_module("pt = promise returns (real) signals (foo)")
    pt = module.equates["pt"]
    assert isinstance(pt, PromiseType)
    assert pt.returns == (REAL,)
    assert "foo" in pt.signals


def test_guardian_with_handlers():
    module = parse_module(
        """
        guardian mailer is
          handler send_mail (user: string, msg: string) signals (no_such_user)
            return ()
          end
          handler read_mail (user: string) returns (array[string]) signals (no_such_user)
            return (#["m"])
          end
        end
        """
    )
    guardian = module.guardian("mailer")
    assert [h.name for h in guardian.handlers] == ["send_mail", "read_mail"]
    assert guardian.handler("read_mail").handler_type.returns == (ArrayOf(STRING),)


def test_program_and_proc_declarations():
    module = parse_module(
        """
        proc helper (x: int) returns (int)
          return (x)
        end
        program main
          y: int := helper(1)
        end
        """
    )
    assert module.proc("helper").returns == (INT,)
    assert module.program("main").name == "main"


def test_statement_forms_parse():
    module = parse_module(
        """
        guardian g is
          handler h (x: int) returns (int)
            return (x)
          end
          handler n (x: int)
            return ()
          end
        end
        pt = promise returns (int)
        program main
          p: pt := stream g.h(1)
          stream g.n(2)
          send g.n(3)
          flush g.n
          synch g.n
          v: int := pt$claim(p)
          if v > 0 then
            v := v - 1
          elseif v = 0 then
            v := 1
          else
            v := 0
          end
          while v > 0 do
            v := v - 1
          end
          xs: array[int] := #[1, 2, 3]
          for x: int in xs do
            v := v + x
          end
          begin
            v := v * 2
          end
          coenter
          action
            v := 1
          action
            v := 2
          end
        end
        """
    )
    statements = module.program("main").body.statements
    expected = [
        A.VarDecl,
        A.StreamStmt,
        A.SendStmt,
        A.FlushStmt,
        A.SynchStmt,
        A.VarDecl,
        A.IfStmt,
        A.WhileStmt,
        A.VarDecl,
        A.ForStmt,
        A.BeginStmt,
        A.CoenterStmt,
    ]
    assert [type(s) for s in statements] == expected


def test_except_attaches_to_statement():
    module = parse_module(
        """
        guardian g is
          handler h (x: int) returns (int) signals (bad)
            return (x)
          end
        end
        program main
          v: int := 0
          v := g.h(1) except when bad: v := -1 when others: v := -2 end
        end
        """
    )
    statements = module.program("main").body.statements
    assert isinstance(statements[1], A.ExceptStmt)
    arms = statements[1].arms
    assert arms[0].names == ["bad"]
    assert arms[1].is_others


def test_except_requires_when():
    with pytest.raises(ParseError, match="when"):
        parse_module(
            """
            program main
              x: int := 1 except end
            end
            """
        )


def test_when_with_params():
    module = parse_module(
        """
        guardian g is
          handler h (x: int) returns (int) signals (e(string, int))
            return (x)
          end
        end
        program main
          v: int := g.h(1) except when e(s: string, n: int): v: int := n end
        end
        """
    )
    arm = module.program("main").body.statements[0].arms[0]
    assert arm.params == [("s", STRING), ("n", INT)]


def test_operator_precedence():
    module = parse_module("program main\n x: int := 1 + 2 * 3\nend")
    expr = module.program("main").body.statements[0].expr
    assert isinstance(expr, A.BinOp) and expr.op == "+"
    assert isinstance(expr.right, A.BinOp) and expr.right.op == "*"


def test_comparison_is_non_associative():
    with pytest.raises(ParseError):
        parse_module("program main\n x: bool := 1 < 2 < 3\nend")


def test_record_construction_and_field_access():
    module = parse_module(
        """
        sinfo = record [ stu: string, grade: int ]
        program main
          s: sinfo := sinfo${stu: "amy", grade: 90}
          g: int := s.grade
        end
        """
    )
    construct = module.program("main").body.statements[0].expr
    assert isinstance(construct, A.RecordConstruct)
    access = module.program("main").body.statements[1].expr
    assert isinstance(access, A.FieldAccess)


def test_fork_expression():
    module = parse_module(
        """
        proc work (x: int) returns (int)
          return (x)
        end
        pt = promise returns (int)
        program main
          p: pt := fork work(5)
        end
        """
    )
    expr = module.program("main").body.statements[0].expr
    assert isinstance(expr, A.ForkExpr)
    assert expr.proc_name == "work"


def test_queue_type_and_ops():
    module = parse_module(
        """
        pt = promise returns (int)
        program main
          q: queue[pt] := queue[pt]$create()
        end
        """
    )
    decl = module.program("main").body.statements[0]
    assert isinstance(decl.var_type, A.QueueType)


def test_stream_requires_call():
    with pytest.raises(ParseError, match="requires a call"):
        parse_module("program main\n stream x\nend")


def test_coenter_requires_action():
    with pytest.raises(ParseError, match="action"):
        parse_module("program main\n coenter end\nend")


def test_unknown_declaration_rejected():
    with pytest.raises(ParseError, match="declaration"):
        parse_module("42")


def test_signal_statement():
    module = parse_module(
        """
        proc p (x: int) signals (bad(int))
          signal bad(x)
        end
        """
    )
    stmt = module.proc("p").body.statements[0]
    assert isinstance(stmt, A.SignalStmt)
    assert stmt.name == "bad"
