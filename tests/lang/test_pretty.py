"""Pretty-printer round trips: parse -> print -> parse is a fixed point."""

import pytest

from repro.lang.parser import parse_module
from repro.lang.pretty import pretty_expr, pretty_module, pretty_type
from repro.lang.typecheck import check_module
from repro.types import INT, REAL, STRING, ArrayOf, HandlerType, PromiseType, RecordOf

GRADES = """
sinfo = record [ stu: string, grade: int ]
info = array [ sinfo ]
pt = promise returns (real) signals (bad_grade)
averages = array [ pt ]

guardian grades_db is
  handler record_grade (stu: string, grade: int) returns (real) signals (bad_grade)
    if grade < 0 then signal bad_grade end
    sleep(0.2)
    return (float(grade))
  end
end

guardian printer is
  handler print (line: string)
    sleep(0.1)
    return ()
  end
end

proc helper (x: int) returns (int) signals (neg)
  if x < 0 then signal neg end
  return (x * 2)
end

program main
  grades: info := #[ sinfo${stu: "amy", grade: 90} ]
  a: averages := averages$new()
  for s: sinfo in grades do
    averages$addh(a, stream grades_db.record_grade(s.stu, s.grade))
  end
  flush grades_db.record_grade
  i: int := 0
  while i < averages$len(a) do
    begin
      stream printer.print(make_string(grades[i].stu, pt$claim(a[i])))
    end except when bad_grade: i := i when others(why: string): i := i end
    i := i + 1
  end
  synch printer.print
  coenter
  action
    x: int := 1
  foreach s: sinfo in grades
    y: string := s.stu
  end
  p2: promise returns (int) signals (neg) := fork helper(3)
  send printer.print("bye")
  return (i)
end
"""


def roundtrip(source):
    module = parse_module(source)
    printed = pretty_module(module)
    reparsed = parse_module(printed)
    reprinted = pretty_module(reparsed)
    return module, printed, reparsed, reprinted


def test_grades_module_roundtrips():
    module, printed, reparsed, reprinted = roundtrip(GRADES)
    assert printed == reprinted  # fixed point
    # The reparsed module still type-checks.
    check_module(reparsed)
    # And preserves structure.
    assert [g.name for g in reparsed.guardians] == ["grades_db", "printer"]
    assert reparsed.guardian("grades_db").handler("record_grade").handler_type == (
        module.guardian("grades_db").handler("record_grade").handler_type
    )


def test_pretty_type_spellings():
    assert pretty_type(INT) == "int"
    assert pretty_type(ArrayOf(REAL)) == "array[real]"
    assert pretty_type(RecordOf({"a": INT})) == "record[a: int]"
    assert (
        pretty_type(HandlerType(args=[INT], returns=[REAL], signals={"e": [STRING]}))
        == "handlertype (int) returns (real) signals (e(string))"
    )
    assert pretty_type(PromiseType(returns=[REAL])) == "promise returns (real)"


@pytest.mark.parametrize(
    "snippet,expected",
    [
        ("1 + 2 * 3", "(1 + (2 * 3))"),
        ("(1 + 2) * 3", "((1 + 2) * 3)"),
        ("-x", "(-x)"),
        ("not a and b", "((not a) and b)"),
        ('"say \\"hi\\""', '"say \\"hi\\""'),
        ("xs[i].field", "xs[i].field"),
        ("#[1, 2]", "#[1, 2]"),
    ],
)
def test_expression_printing(snippet, expected):
    # Wrap in a trivial program to reuse the full parser.
    module = parse_module("program main\n ignored: int := %s\nend" % snippet)
    expr = module.program("main").body.statements[0].expr
    assert pretty_expr(expr) == expected


def test_printed_real_literals_reparse_as_reals():
    module = parse_module("program main\n x: real := 2.5\n y: real := 1e10\nend")
    printed = pretty_module(module)
    reparsed = parse_module(printed)
    values = [stmt.expr.value for stmt in reparsed.program("main").body.statements]
    assert values == [2.5, 1e10]


def test_char_literals_roundtrip():
    module = parse_module("program main\n c: char := '\\n'\n d: char := 'x'\nend")
    printed = pretty_module(module)
    reparsed = parse_module(printed)
    values = [stmt.expr.value for stmt in reparsed.program("main").body.statements]
    assert values == ["\n", "x"]


def test_every_test_corpus_module_roundtrips():
    """All DSL sources used elsewhere in the test suite round-trip."""
    corpus = [
        "t = int\nprogram main\n x: t := 1\n return (x)\nend",
        """
        guardian g is
          handler h (x: int) returns (int) signals (e(string, int))
            return (x)
          end
        end
        program main
          v: int := g.h(1) except when e(s: string, n: int): v: int := n end
        end
        """,
        """
        pt = promise returns (int)
        guardian g is
          handler h (x: int) returns (int)
            return (x)
          end
        end
        program main
          q: queue[pt] := queue[pt]$create()
          queue[pt]$enq(q, stream g.h(1))
          p: pt := queue[pt]$deq(q)
        end
        """,
    ]
    for source in corpus:
        module, printed, reparsed, reprinted = roundtrip(source)
        assert printed == reprinted
