"""Test package."""
