"""Interpreter end-to-end tests: mini-Argus programs on the runtime."""

import pytest

from repro.entities import ArgusSystem
from repro.lang import Interpreter, load_module, run_source

GUARDIAN = """
guardian g is
  handler h (x: int) returns (int) signals (neg)
    if x < 0 then signal neg end
    sleep(0.1)
    return (x * 2)
  end
  handler note (s: string)
    return ()
  end
end
"""


def run(source, program="main"):
    result, system = run_source(source, latency=1.0, kernel_overhead=0.1)
    return result


def test_rpc_expression():
    assert run(GUARDIAN + "program main\n v: int := g.h(21)\n return (v)\nend") == 42


def test_stream_claim_roundtrip():
    assert (
        run(
            GUARDIAN
            + """
            pt = promise returns (int) signals (neg)
            program main
              p: pt := stream g.h(5)
              flush g.h
              return (pt$claim(p))
            end
            """
        )
        == 10
    )


def test_ready_probe():
    assert (
        run(
            GUARDIAN
            + """
            pt = promise returns (int) signals (neg)
            program main
              p: pt := stream g.h(5)
              early: bool := pt$ready(p)
              flush g.h
              v: int := pt$claim(p)
              late: bool := pt$ready(p)
              if early then return (1) end
              if late then return (2) end
              return (3)
            end
            """
        )
        == 2
    )


def test_exception_handled_by_when_arm():
    assert (
        run(
            GUARDIAN
            + """
            program main
              v: int := 0
              v := g.h(-1) except when neg: v := -99 end
              return (v)
            end
            """
        )
        == -99
    )


def test_unhandled_signal_selects_others_arm():
    assert (
        run(
            GUARDIAN
            + """
            program main
              v: int := 0
              v := g.h(-1) except
                when others(why: string): v := -1
              end
              return (v)
            end
            """
        )
        == -1
    )


def test_arithmetic_and_control_flow():
    assert (
        run(
            """
            program main
              total: int := 0
              i: int := 1
              while i <= 10 do
                if i / 2.0 = trunc(i / 2.0) * 1.0 then
                  total := total + i
                end
                i := i + 1
              end
              return (total)
            end
            """
        )
        == 30
    )


def test_arrays_and_for_loops():
    assert (
        run(
            """
            program main
              xs: array[int] := #[3, 1, 4, 1, 5]
              total: int := 0
              for x: int in xs do
                total := total + x
              end
              return (total)
            end
            """
        )
        == 14
    )


def test_records_and_field_update():
    assert (
        run(
            """
            point = record [ x: int, y: int ]
            program main
              p: point := point${x: 1, y: 2}
              p.y := 10
              return (p.x + p.y)
            end
            """
        )
        == 11
    )


def test_make_string_formats_like_the_paper():
    assert (
        run(
            """
            program main
              return (make_string("amy", 85.5))
            end
            """
        )
        == "amy 85.5"
    )


def test_local_proc_call():
    assert (
        run(
            """
            proc square (x: int) returns (int)
              return (x * x)
            end
            program main
              return (square(7))
            end
            """
        )
        == 49
    )


def test_fork_and_claim():
    assert (
        run(
            """
            pt = promise returns (int)
            proc slow_double (x: int) returns (int)
              sleep(2.0)
              return (x * 2)
            end
            program main
              a: pt := fork slow_double(10)
              b: pt := fork slow_double(20)
              return (pt$claim(a) + pt$claim(b))
            end
            """
        )
        == 60
    )


def test_coenter_shares_enclosing_scope():
    assert (
        run(
            """
            program main
              total: int := 0
              coenter
              action
                sleep(1.0)
                total := total + 1
              action
                sleep(2.0)
                total := total + 10
              end
              return (total)
            end
            """
        )
        == 11
    )


def test_index_out_of_bounds_is_failure():
    assert (
        run(
            """
            program main
              xs: array[int] := #[1]
              v: int := 0
              begin
                v := xs[5]
              end except when failure(why: string): v := -1 end
              return (v)
            end
            """
        )
        == -1
    )


def test_division_by_zero_is_failure():
    assert (
        run(
            """
            program main
              v: real := 0.0
              begin
                v := 1 / 0
              end except when failure(why: string): v := -1.0 end
              return (v)
            end
            """
        )
        == -1.0
    )


def test_interpreted_handler_calls_other_guardian():
    """Interpreted handlers can themselves make remote calls."""
    assert (
        run(
            """
            guardian inner is
              handler base (x: int) returns (int)
                return (x + 1)
              end
            end
            guardian outer is
              handler wrap (x: int) returns (int)
                return (inner.base(x) * 10)
              end
            end
            program main
              return (outer.wrap(4))
            end
            """
        )
        == 50
    )


def test_program_with_arguments():
    module = load_module(
        """
        program main (n: int)
          return (n * 3)
        end
        """
    )
    system = ArgusSystem()
    interp = Interpreter(module, system)
    interp.instantiate()
    process = interp.spawn_program("main", 14)
    assert system.run(until=process) == 42


def test_interp_and_python_guardians_interoperate():
    """A DSL program calling a handler written in Python."""
    from repro.types import HandlerType, INT

    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    native = system.create_guardian("native")

    def triple(ctx, x):
        yield ctx.compute(0.1)
        return x * 3

    native.create_handler("triple", HandlerType(args=[INT], returns=[INT]), triple)

    # The DSL module must declare the native guardian's interface to call
    # it; declare a shim guardian that forwards.
    module = load_module(
        """
        guardian shim is
          handler noop (x: int) returns (int)
            return (x)
          end
        end
        program main
          return (shim.noop(5))
        end
        """
    )
    interp = Interpreter(module, system)
    interp.instantiate()
    process = interp.spawn_program("main")
    assert system.run(until=process) == 5


def test_boolean_short_circuit():
    assert (
        run(
            """
            program main
              xs: array[int] := #[1]
              ok: bool := false
              if 1 = 2 and xs[9] = 0 then
                ok := true
              end
              if ok then return (1) end
              return (0)
            end
            """
        )
        == 0
    )


def test_coenter_foreach_dynamic_arms():
    """§4.3: the coenter extended 'to allow a dynamic number of
    processes' — one arm per array element."""
    assert (
        run(
            """
            program main
              xs: array[int] := #[1, 2, 3, 4, 5]
              total: int := 0
              coenter
              foreach x: int in xs
                sleep(1.0)
                total := total + x
              end
              return (total)
            end
            """
        )
        == 15
    )


def test_coenter_foreach_runs_in_parallel():
    """All foreach arms sleep concurrently: wall time ~1, not ~5."""
    source = """
    program main
      xs: array[int] := #[1, 2, 3, 4, 5]
      coenter
      foreach x: int in xs
        sleep(1.0)
      end
      return (0)
    end
    """
    result, system = run_source(source)
    assert system.now == 1.0


def test_coenter_mixed_action_and_foreach():
    assert (
        run(
            """
            program main
              xs: array[int] := #[10, 20]
              total: int := 0
              coenter
              action
                total := total + 1
              foreach x: int in xs
                total := total + x
              end
              return (total)
            end
            """
        )
        == 31
    )


def test_coenter_foreach_requires_array():
    import pytest
    from repro.lang import TypeCheckError, load_module

    with pytest.raises(TypeCheckError, match="iterates arrays"):
        load_module(
            """
            program main
              coenter
              foreach x: int in 5
                sleep(1.0)
              end
            end
            """
        )


def test_array_elements_and_indexes_iterators():
    """The paper's CLU iterators: info$elements and averages$indexes."""
    assert (
        run(
            """
            program main
              xs: array[string] := #["a", "b", "c"]
              joined: string := ""
              for s: string in array[string]$elements(xs) do
                joined := joined + s
              end
              total: int := 0
              for i: int in array[string]$indexes(xs) do
                total := total + i
              end
              if joined = "abc" and total = 3 then
                return (1)
              end
              return (0)
            end
            """
        )
        == 1
    )


def test_except_attached_to_coenter():
    """'The except statement can be attached ... to any textually
    including statement' — including a coenter whose arm fails."""
    assert (
        run(
            GUARDIAN
            + """
            program main
              outcome: int := 0
              coenter
              action
                v: int := g.h(-1)
              action
                sleep(0.1)
              end except when neg: outcome := 1 when others: outcome := 2 end
              return (outcome)
            end
            """
        )
        == 1
    )


def test_nested_except_inner_arm_wins():
    assert (
        run(
            GUARDIAN
            + """
            program main
              v: int := 0
              begin
                begin
                  v := g.h(-1)
                end except when neg: v := 10 end
              end except when neg: v := 20 end
              return (v)
            end
            """
        )
        == 10
    )


def test_unhandled_exception_propagates_out_of_program():
    from repro.core import Signal
    from repro.lang import run_source

    import pytest

    with pytest.raises(Signal):
        run_source(
            GUARDIAN
            + """
            program main
              v: int := g.h(-1)
            end
            """
        )


def test_dsl_program_sees_unavailable_under_partition():
    """The system exception vocabulary reaches DSL except-arms."""
    from repro.entities import ArgusSystem
    from repro.lang import Interpreter, load_module
    from repro.streams import StreamConfig

    module = load_module(
        GUARDIAN
        + """
        program main
          v: int := 0
          v := g.h(1) except when unavailable(why: string): v := -7 end
          return (v)
        end
        """
    )
    config = StreamConfig(batch_size=2, max_buffer_delay=0.5, rto=3.0, max_retries=1)
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config)
    interp = Interpreter(module, system)
    interp.instantiate()
    system.network.partition("node:client", "node:g")
    process = interp.spawn_program("main")
    assert system.run(until=process) == -7
