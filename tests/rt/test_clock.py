"""WallclockDriver semantics: Environment.run parity against real time.

These touch the real clock (tiny waits, milliseconds) so they carry the
``wallclock`` marker and run in the net-parity CI job, not tier-1.
"""

from __future__ import annotations

import time

import pytest

from repro.rt.clock import WallclockDriver, WallclockTimeout
from repro.sim.events import Event
from repro.sim.kernel import Environment

pytestmark = pytest.mark.wallclock


@pytest.fixture
def driver():
    d = WallclockDriver(Environment(), time_unit=1e-4)
    yield d
    if not d.loop.is_closed():
        d.loop.close()


def test_run_until_time_fires_due_callbacks(driver):
    fired = []
    driver.env.call_at(50.0, lambda: fired.append(driver.env.now))
    start = time.monotonic()
    driver.run(until=100.0)
    elapsed = time.monotonic() - start
    assert fired == [50.0]
    assert driver.env.now == 100.0
    # 100 sim units at 1e-4 s/unit = 10ms of real pacing (scheduling
    # jitter only ever makes it later).
    assert elapsed >= 0.009


def test_run_until_event_returns_its_value(driver):
    env = driver.env
    done = Event(env)
    env.call_at(5.0, lambda: done.succeed(42))
    assert driver.run(until=done) == 42
    assert env.now >= 5.0


def test_timeout_raises_wallclock_timeout(driver):
    # An empty calendar with a far until-bound: nothing to do but wait;
    # the real-seconds budget must cut the wait short.
    start = time.monotonic()
    with pytest.raises(WallclockTimeout):
        driver.run(until=10_000_000.0, timeout=0.05)
    assert time.monotonic() - start < 5.0


def test_idle_exit_returns_when_calendar_drains(driver):
    fired = []
    env = driver.env
    env.call_at(1.0, lambda: fired.append(1))
    env.call_at(2.0, lambda: fired.append(2))
    driver.run(idle_exit=True)
    assert fired == [1, 2]


def test_inject_advances_sim_time_to_real_time(driver):
    # An injection arriving mid-drain (like a frame off a socket) must
    # see simulated "now" advanced to the mapped real clock, so timers
    # it arms measure genuine wallclock intervals.
    env = driver.env
    done = Event(env)
    times = []

    def injected():
        times.append(env.now)
        done.succeed(None)

    driver.loop.call_later(0.01, lambda: driver.inject(injected))
    driver.run(until=done, timeout=5.0)
    assert times, "injected callback never ran"
    # 10ms real at 1e-4 s/unit = 100 sim units: the injected callback
    # must observe a clock that jumped forward, never one behind.
    assert times[0] >= 50.0


def test_sim_time_is_monotonic_across_runs(driver):
    env = driver.env
    env.call_at(10.0, lambda: None)
    driver.run(idle_exit=True)
    first = env.now
    env.call_at(first + 1.0, lambda: None)
    driver.run(idle_exit=True)
    assert env.now >= first
