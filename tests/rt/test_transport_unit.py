"""Deterministic TcpNetwork unit tests: no sockets, no real waits.

These drive the protocol object directly with crafted byte streams and
fake transports, so they run in tier-1 alongside the frame-codec tests
— the wallclock integration paths live in ``test_robustness.py``.
"""

from __future__ import annotations

import pytest

from repro.net.message import Message
from repro.rt.host import RtHost
from repro.rt.transport import _Conn
from repro.streams.frames import encode_frame, encode_hello

from tests.streams.test_frames import sample_call_packets


class FakeTransport:
    def __init__(self):
        self.aborted = False
        self.written = []

    def write(self, data):
        self.written.append(data)

    def abort(self):
        self.aborted = True


@pytest.fixture
def host():
    h = RtHost("node:a")
    yield h
    h.shutdown()


def _accepted_conn(host):
    conn = _Conn(host.network)
    conn.connection_made(FakeTransport())
    return conn


def test_corrupt_byte_stream_aborts_the_connection(host):
    conn = _accepted_conn(host)
    conn.data_received(encode_frame(b"\xff not a frame"))
    assert conn.transport.aborted
    assert host.network.stats_frames_corrupt == 1


def test_torn_frames_reassemble_across_arbitrary_chunks(host):
    conn = _accepted_conn(host)
    data = encode_frame(encode_hello("node:peer"))
    for i in range(len(data)):
        conn.data_received(data[i : i + 1])
    assert host.network._conns.get("node:peer") is conn


def test_hello_newest_connection_wins(host):
    first = _accepted_conn(host)
    second = _accepted_conn(host)
    hello = encode_frame(encode_hello("node:peer"))
    first.data_received(hello)
    second.data_received(hello)
    assert host.network._conns["node:peer"] is second
    assert first.transport.aborted
    assert not second.transport.aborted


def test_connection_loss_unregisters_only_current_conn(host):
    first = _accepted_conn(host)
    second = _accepted_conn(host)
    hello = encode_frame(encode_hello("node:peer"))
    first.data_received(hello)
    second.data_received(hello)
    lost_before = host.network.stats_conns_lost
    first.connection_lost(None)  # the superseded conn dies late
    assert host.network._conns["node:peer"] is second
    second.connection_lost(None)
    assert "node:peer" not in host.network._conns
    assert host.network.stats_conns_lost == lost_before + 2


def test_send_without_route_counts_a_drop(host):
    packet = sample_call_packets()[0]
    message = Message("node:a", "node:ghost", "g:addr", packet, 64)
    before = host.network.stats.messages_dropped_crash
    host.network.send(message, want_done=False)
    assert host.network.stats.messages_dropped_crash == before + 1
    assert host.network.stats.messages_sent == 1  # counted, then dropped
