"""Frame-level robustness on real sockets: resets, duplicates, dead peers.

Each test builds a small cluster (real worker processes over TCP) and
injures the transport — forced connection aborts, routes to nowhere,
dead listening ports — then asserts the exactly-once / FIFO oracles
via :mod:`repro.obs.monitor` over the per-process traces, exactly as
the simulator chaos suite does.
"""

from __future__ import annotations

import socket

import pytest

from repro.core.exceptions import Failure, Unavailable
from repro.obs.trace import load_jsonl
from repro.rt import RtCluster, RtHost
from repro.streams.config import StreamConfig

from tests.conformance.apps import ECHO_T, setup_echo
from tests.conformance.harness import check_invariants, executing_seqs

pytestmark = pytest.mark.wallclock


def _run_echo_cluster(tmp_path, reset_after_frames, client_proc, timeout=60.0):
    """One echo worker + a client whose connections keep getting cut."""
    trace_dir = str(tmp_path / "traces")
    cluster = RtCluster({"node:echo": setup_echo}, trace_dir=trace_dir)
    cluster.start()
    try:
        host = cluster.client_host(tracing=True)
        host.declare("echo", "echo", ECHO_T, node="node:echo")
        host.network.reset_after_frames = reset_after_frames
        client = host.create_guardian("client")
        proc = client.spawn(client_proc)
        value = host.run(until=proc, timeout=timeout)
        client_events = list(host.tracer.events)
        client_stats = {
            "conns_lost": host.network.stats_conns_lost,
            "dials": host.network.stats_dials,
        }
        host.shutdown()
    except BaseException:
        cluster.kill()
        raise
    cluster.stop()
    server_events = load_jsonl(cluster.trace_path("node:echo"))
    return value, client_events, server_events, client_stats


def test_connection_reset_mid_call(tmp_path):
    """RPCs survive the connection dying between request and reply."""

    def client_proc(ctx):
        echo = ctx.lookup("echo", "echo")
        values = []
        for i in range(20):
            value = yield echo.call(i)  # blocking round trip each time
            values.append(value)
        return values

    value, client_events, server_events, stats = _run_echo_cluster(
        tmp_path, reset_after_frames=2, client_proc=client_proc
    )
    assert value == [3 * i + 1 for i in range(20)]
    # The injury actually happened: connections died and were redialed.
    assert stats["conns_lost"] > 0, stats
    assert stats["dials"] > 1, stats
    # Every call executed exactly once, in order, despite the resets.
    assert executing_seqs(server_events, "echo") == list(range(1, 21))
    assert not check_invariants(client_events)
    assert not check_invariants(server_events)


def test_duplicate_delivery_after_reconnect_is_deduped(tmp_path):
    """Retransmission after reconnect produces duplicates on the wire;
    the receiver's dedup log absorbs them (delivery stays exactly-once)."""

    def client_proc(ctx):
        echo = ctx.lookup("echo", "echo")
        promises = [echo.stream(i) for i in range(50)]
        echo.flush()
        values = []
        for promise in promises:
            value = yield promise.claim()
            values.append(value)
        return values

    value, client_events, server_events, stats = _run_echo_cluster(
        tmp_path, reset_after_frames=3, client_proc=client_proc
    )
    assert value == [3 * i + 1 for i in range(50)]
    duplicates = [
        ev for ev in server_events if ev.type == "stream.call_duplicate"
    ]
    assert duplicates, "resets every 3 frames must force wire duplicates"
    assert executing_seqs(server_events, "echo") == list(range(1, 51))
    assert not check_invariants(client_events)
    assert not check_invariants(server_events)


FAST_BREAK = StreamConfig(rto=5.0, max_retries=2, min_rto=2.0, max_rto=10.0)


def _single_host_with_route(book):
    host = RtHost("node:client", stream_config=FAST_BREAK, tracing=True)
    host.set_address_book(book)
    host.declare("echo", "echo", ECHO_T, node="node:ghost")
    return host


def _call_once(ctx):
    echo = ctx.lookup("echo", "echo")
    value = yield echo.call(7)
    return value


def test_call_to_unrouted_node_breaks_stream(tmp_path):
    """No address-book entry: sends drop, retries exhaust, stream breaks."""
    host = _single_host_with_route({})
    try:
        client = host.create_guardian("client")
        proc = client.spawn(_call_once)
        with pytest.raises((Failure, Unavailable)):
            host.run(until=proc, timeout=30.0)
        assert host.network.stats.messages_dropped_crash > 0
    finally:
        host.shutdown()


def test_call_to_dead_port_breaks_stream(tmp_path):
    """A routed but unreachable peer: dials fail, the break surfaces."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()  # nobody listens here any more
    host = _single_host_with_route({"node:ghost": ("127.0.0.1", dead_port)})
    try:
        client = host.create_guardian("client")
        proc = client.spawn(_call_once)
        with pytest.raises((Failure, Unavailable)):
            host.run(until=proc, timeout=30.0)
        assert host.network.stats_dial_failures > 0
    finally:
        host.shutdown()
