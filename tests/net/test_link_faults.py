"""Link-level chaos: per-message drop / delay / duplication / reordering."""

import random

import pytest

from repro.entities import ArgusSystem
from repro.net.faults import LinkFaultInjector, LinkFaultProfile
from repro.sim.rng import RngRegistry
from repro.streams import StreamConfig

from ..streams.helpers import build_echo_world, run_main

FAST = StreamConfig(batch_size=4, max_buffer_delay=1.0, rto=5.0, max_retries=8)


# ----------------------------------------------------------------------
# LinkFaultProfile
# ----------------------------------------------------------------------

def test_profile_validates_rates():
    with pytest.raises(ValueError):
        LinkFaultProfile(drop_rate=1.0)
    with pytest.raises(ValueError):
        LinkFaultProfile(dup_rate=-0.1)
    with pytest.raises(ValueError):
        LinkFaultProfile(delay_rate=0.1, delay_min=5.0, delay_max=1.0)


def test_profile_round_trips_through_dict():
    profile = LinkFaultProfile(
        drop_rate=0.1, dup_rate=0.05, delay_rate=0.2, reorder_rate=0.15,
        delay_min=0.5, delay_max=4.0,
    )
    assert LinkFaultProfile.from_dict(profile.to_dict()) == profile
    with pytest.raises(ValueError):
        LinkFaultProfile.from_dict({"drop_rate": 0.1, "bogus": 1})


def test_profile_active_flag():
    assert not LinkFaultProfile().active
    assert LinkFaultProfile(drop_rate=0.01).active


# ----------------------------------------------------------------------
# LinkFaultInjector
# ----------------------------------------------------------------------

def test_injector_decisions_are_seed_deterministic():
    profile = LinkFaultProfile(drop_rate=0.2, dup_rate=0.2, delay_rate=0.3, reorder_rate=0.2)

    def decisions(seed):
        injector = LinkFaultInjector(random.Random(seed), default=profile)
        return [injector.decide("node:a", "node:b") for _ in range(200)]

    assert decisions(7) == decisions(7)
    assert decisions(7) != decisions(8)


def test_injector_fast_path_without_profile():
    injector = LinkFaultInjector(random.Random(0))
    assert injector.decide("node:a", "node:b") is None
    assert injector.decisions == 0  # no draw burned on fault-free links


def test_injector_per_link_profiles_are_direction_agnostic():
    drop_all = LinkFaultProfile(drop_rate=0.999999)
    injector = LinkFaultInjector(
        random.Random(0), per_link={("node:a", "node:b"): drop_all}
    )
    assert injector.profile_for("node:b", "node:a") is drop_all
    assert injector.profile_for("node:a", "node:c") is None


# ----------------------------------------------------------------------
# Network integration
# ----------------------------------------------------------------------

def _chaos_world(profile, seed=11, **kwargs):
    system, server, client = build_echo_world(stream_config=FAST, seed=seed, **kwargs)
    system.network.install_link_faults(
        LinkFaultInjector(system.rng.stream("chaos.link"), default=profile)
    )
    return system, server, client


def _echo_round_trip(n):
    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(n)]
        echo.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values

    return main


def test_drops_are_recovered_by_retransmission():
    system, server, client = _chaos_world(LinkFaultProfile(drop_rate=0.3))
    values = run_main(system, client, _echo_round_trip(12))
    assert values == list(range(12))
    assert system.network.stats.messages_dropped_chaos > 0
    assert server.state["echo_calls"] == 12  # exactly-once end to end


def test_duplicates_never_duplicate_execution():
    system, server, client = _chaos_world(LinkFaultProfile(dup_rate=0.5))
    values = run_main(system, client, _echo_round_trip(12))
    assert values == list(range(12))
    assert system.network.stats.messages_duplicated > 0
    assert server.state["echo_calls"] == 12


def test_reordering_never_reorders_delivery_to_handlers():
    profile = LinkFaultProfile(reorder_rate=0.4, delay_min=0.5, delay_max=6.0)
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=FAST, seed=5)
    server = system.create_guardian("server")
    server.state["order"] = []

    from repro.types import INT, HandlerType

    def record(ctx, x):
        ctx.guardian.state["order"].append(x)
        yield ctx.compute(0.01)
        return x

    server.create_handler("record", HandlerType(args=[INT], returns=[INT]), record)
    client = system.create_guardian("client")
    system.network.install_link_faults(
        LinkFaultInjector(system.rng.stream("chaos.link"), default=profile)
    )

    def main(ctx):
        ref = ctx.lookup("server", "record")
        promises = [ref.stream(index) for index in range(16)]
        ref.flush()
        for promise in promises:
            yield promise.claim()
        return ctx.guardian.system.guardian("server").state["order"]

    order = run_main(system, client, main)
    # The wire reordered packets, but go-back-N + the receiver's
    # out-of-order buffer must deliver calls in stream order regardless.
    assert order == list(range(16))


def test_delay_chaos_preserves_fifo_and_completes():
    profile = LinkFaultProfile(delay_rate=0.5, delay_min=1.0, delay_max=6.0)
    system, server, client = _chaos_world(profile, seed=3)
    values = run_main(system, client, _echo_round_trip(10))
    assert values == list(range(10))


def test_no_injector_means_identical_stats():
    """The fast path: a world without link faults burns no chaos draws and
    counts nothing in the chaos counters."""
    system, server, client = build_echo_world(stream_config=FAST, seed=2)
    values = run_main(system, client, _echo_round_trip(8))
    assert values == list(range(8))
    assert system.network.stats.messages_dropped_chaos == 0
    assert system.network.stats.messages_duplicated == 0


def test_registry_rng_accepted_by_faultplan_random():
    """FaultPlan.random accepts either a raw Random (legacy call sites) or
    an RngRegistry, drawing from the dedicated 'faults.plan' stream."""
    from repro.net.faults import FaultPlan

    nodes = ["node:a", "node:b", "node:c"]
    plan_a = FaultPlan.random(RngRegistry(42), nodes, horizon=30.0)
    plan_b = FaultPlan.random(RngRegistry(42), nodes, horizon=30.0)
    assert plan_a._crashes == plan_b._crashes
    assert plan_a._partitions == plan_b._partitions
    # Legacy call sites hand in a bare random.Random; still supported.
    legacy_a = FaultPlan.random(random.Random(42), nodes, horizon=30.0)
    legacy_b = FaultPlan.random(random.Random(42), nodes, horizon=30.0)
    assert legacy_a._crashes == legacy_b._crashes
    assert legacy_a._partitions == legacy_b._partitions
