"""Test package."""
