"""Unit tests for scheduled fault injection."""

import pytest

from repro.net import FaultPlan, Message, Network, schedule_crash, schedule_partition


@pytest.fixture
def network(env):
    network = Network(env, latency=0.0, kernel_overhead=0.0)
    network.add_node("a")
    network.add_node("b")
    return network


def test_schedule_crash_and_recover(env, network):
    schedule_crash(network, "b", at=5.0, recover_at=8.0)
    env.run(until=6.0)
    assert not network.node("b").alive
    env.run(until=9.0)
    assert network.node("b").alive
    assert network.node("b").incarnation == 1


def test_schedule_crash_without_recovery(env, network):
    schedule_crash(network, "b", at=2.0)
    env.run()
    assert not network.node("b").alive


def test_recover_before_crash_rejected(env, network):
    with pytest.raises(ValueError):
        schedule_crash(network, "b", at=5.0, recover_at=5.0)


def test_schedule_partition_and_heal(env, network):
    schedule_partition(network, "a", "b", at=1.0, heal_at=3.0)
    env.run(until=2.0)
    assert network.partitioned("a", "b")
    env.run(until=4.0)
    assert not network.partitioned("a", "b")


def test_heal_before_partition_rejected(env, network):
    with pytest.raises(ValueError):
        schedule_partition(network, "a", "b", at=3.0, heal_at=3.0)


def test_fault_plan_applies_everything(env, network):
    plan = FaultPlan()
    plan.crash("b", at=2.0, recover_at=4.0).partition("a", "b", at=1.0, heal_at=5.0)
    assert len(plan) == 2
    plan.apply(network)
    env.run(until=2.5)
    assert not network.node("b").alive
    assert network.partitioned("a", "b")
    env.run(until=6.0)
    assert network.node("b").alive
    assert not network.partitioned("a", "b")


def test_schedule_crash_unknown_node_rejected_eagerly(env, network):
    with pytest.raises(ValueError, match="no node named 'ghost'"):
        schedule_crash(network, "ghost", at=5.0)
    # Nothing was installed: the calendar stays empty.
    assert env.queued_event_count() == 0


def test_schedule_partition_unknown_node_rejected_eagerly(env, network):
    with pytest.raises(ValueError, match="no node named 'ghost'"):
        schedule_partition(network, "a", "ghost", at=1.0)
    assert env.queued_event_count() == 0


def test_fault_plan_validates_before_installing_anything(env, network):
    plan = FaultPlan()
    plan.crash("b", at=2.0).partition("a", "ghost", at=1.0)
    with pytest.raises(ValueError, match="ghost"):
        plan.apply(network)
    # The valid crash must not have been half-installed.
    assert env.queued_event_count() == 0
    env.run()
    assert network.node("b").alive


def test_fault_plan_error_names_known_nodes(env, network):
    with pytest.raises(ValueError, match="known: a, b"):
        schedule_crash(network, "nope", at=1.0)


def test_random_fault_plan_is_deterministic_and_valid(env, network):
    import random

    plans = [
        FaultPlan.random(
            random.Random(42), ["a", "b"], horizon=30.0, crashable=["b"]
        )
        for _ in range(2)
    ]
    assert len(plans[0]) == len(plans[1])
    assert plans[0]._crashes == plans[1]._crashes
    assert plans[0]._partitions == plans[1]._partitions
    # Crashes only hit the crashable subset.
    assert all(name == "b" for name, _, _ in plans[0]._crashes)
    # The plan applies cleanly and the sim drains.
    plans[0].apply(network)
    env.run()


def test_crash_kills_inflight_messages(env, network):
    received = []
    network.node("b").register("inbox", lambda m: received.append(m.payload))
    slow = Network(env, latency=10.0, kernel_overhead=0.0)
    # Use the shared env but the configured network for sending.
    network.latency = 10.0
    network.send(Message("a", "b", "inbox", "doomed", 0))
    schedule_crash(network, "b", at=5.0)
    env.run()
    assert received == []
