"""Unit tests for the simulated network: cost model, FIFO, faults."""

import pytest

from repro.net import HEADER_BYTES, Message, Network, NodeDown


def make_net(env, **kwargs):
    defaults = dict(latency=1.0, kernel_overhead=0.1)
    defaults.update(kwargs)
    network = Network(env, **defaults)
    network.add_node("a")
    network.add_node("b")
    return network


def deliveries(network, node_name, address="inbox"):
    """Register a recording handler; returns the record list."""
    record = []
    network.node(node_name).register(
        address, lambda message: record.append((network.env.now, message.payload))
    )
    return record


def test_message_wire_bytes():
    message = Message("a", "b", "addr", "payload", 100)
    assert message.wire_bytes == 100 + HEADER_BYTES


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        Message("a", "b", "addr", None, -1)


def test_basic_delivery_with_latency_and_overheads(env):
    network = make_net(env)
    record = deliveries(network, "b")
    network.send(Message("a", "b", "inbox", "hi", 0))
    env.run()
    # send kernel call 0.1 + latency 1.0 + receive kernel call 0.1
    assert record == [(pytest.approx(1.2), "hi")]


def test_local_delivery_skips_network(env):
    network = make_net(env)
    record = deliveries(network, "a")
    network.send(Message("a", "a", "inbox", "local", 1000))
    env.run()
    assert record == [(0.0, "local")]
    assert network.stats.kernel_calls == 0
    assert network.stats.messages_sent == 0


def test_bandwidth_adds_transmission_time(env):
    network = make_net(env, bandwidth=100.0)  # bytes per time unit
    record = deliveries(network, "b")
    network.send(Message("a", "b", "inbox", "big", 100 - HEADER_BYTES))
    env.run()
    # 0.1 overhead + 100/100 transmission + 1.0 latency + 0.1 receive
    assert record[0][0] == pytest.approx(2.2)


def test_fifo_per_link_even_with_jitter(env):
    network = make_net(env, jitter=5.0)
    record = deliveries(network, "b")
    for index in range(10):
        network.send(Message("a", "b", "inbox", index, 0))
    env.run()
    assert [payload for _t, payload in record] == list(range(10))


def test_sender_nic_serializes_kernel_calls(env):
    network = make_net(env, kernel_overhead=1.0, latency=0.0)
    record = deliveries(network, "b")
    for index in range(3):
        network.send(Message("a", "b", "inbox", index, 0))
    env.run()
    # Each send occupies the NIC for 1.0; receives serialize similarly.
    send_done = [1.0, 2.0, 3.0]
    arrivals = [t for t, _p in record]
    assert arrivals == [pytest.approx(t + 1.0) for t in send_done]


def test_send_busy_event_fires_after_overhead(env):
    network = make_net(env, kernel_overhead=0.5)
    done_at = []
    busy = network.send(Message("a", "b", "inbox", None, 0))
    busy.callbacks.append(lambda e: done_at.append(env.now))
    env.run()
    assert done_at == [0.5]


def test_send_from_crashed_node_rejected(env):
    network = make_net(env)
    network.node("a").crash()
    with pytest.raises(NodeDown):
        network.send(Message("a", "b", "inbox", None, 0))


def test_crashed_destination_drops_message(env):
    network = make_net(env)
    record = deliveries(network, "b")
    network.node("b").crash()
    network.send(Message("a", "b", "inbox", "lost", 0))
    env.run()
    assert record == []
    assert network.stats.messages_dropped_crash == 1


def test_crash_during_flight_drops_message(env):
    network = make_net(env, latency=10.0)
    record = deliveries(network, "b")
    network.send(Message("a", "b", "inbox", "lost", 0))

    def crasher(env):
        yield env.timeout(5.0)
        network.node("b").crash()

    env.process(crasher(env))
    env.run()
    assert record == []
    assert network.stats.messages_dropped_crash == 1


def test_recovery_increments_incarnation(env):
    network = make_net(env)
    node = network.node("b")
    assert node.incarnation == 0
    node.crash()
    node.recover()
    assert node.alive
    assert node.incarnation == 1


def test_partition_blocks_both_ways(env):
    network = make_net(env)
    record_a = deliveries(network, "a")
    record_b = deliveries(network, "b")
    network.partition("a", "b")
    network.send(Message("a", "b", "inbox", 1, 0))
    network.send(Message("b", "a", "inbox", 2, 0))
    env.run()
    assert record_a == [] and record_b == []
    assert network.stats.messages_dropped_partition == 2


def test_heal_restores_delivery(env):
    network = make_net(env)
    record = deliveries(network, "b")
    network.partition("a", "b")
    network.heal("a", "b")
    network.send(Message("a", "b", "inbox", "ok", 0))
    env.run()
    assert [payload for _t, payload in record] == ["ok"]


def test_loss_rate_drops_messages(env):
    network = make_net(env, loss_rate=0.5)
    record = deliveries(network, "b")
    for index in range(200):
        network.send(Message("a", "b", "inbox", index, 0))
    env.run()
    dropped = network.stats.messages_dropped_loss
    assert 0 < dropped < 200
    assert len(record) == 200 - dropped


def test_unknown_address_dropped_silently(env):
    network = make_net(env)
    network.send(Message("a", "b", "nowhere", "void", 0))
    env.run()  # no exception


def test_duplicate_node_rejected(env):
    network = make_net(env)
    with pytest.raises(ValueError):
        network.add_node("a")


def test_unknown_node_lookup(env):
    network = make_net(env)
    with pytest.raises(KeyError):
        network.node("zzz")


def test_duplicate_address_registration_rejected(env):
    network = make_net(env)
    node = network.node("a")
    node.register("x", lambda m: None)
    with pytest.raises(ValueError):
        node.register("x", lambda m: None)


def test_stats_counters(env):
    network = make_net(env)
    deliveries(network, "b")
    network.send(Message("a", "b", "inbox", None, 36))
    env.run()
    stats = network.stats.snapshot()
    assert stats["messages_sent"] == 1
    assert stats["messages_delivered"] == 1
    assert stats["bytes_sent"] == 36 + HEADER_BYTES
    assert stats["kernel_calls"] == 2  # one send, one receive


def test_invalid_parameters_rejected(env):
    with pytest.raises(ValueError):
        Network(env, latency=-1)
    with pytest.raises(ValueError):
        Network(env, loss_rate=1.5)
    with pytest.raises(ValueError):
        Network(env, bandwidth=0)
