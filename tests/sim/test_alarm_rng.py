"""Unit tests for alarms and deterministic RNG streams."""

import pytest

from repro.sim import Alarm, RngRegistry


def test_alarm_fires_at_deadline(env):
    fired = []
    alarm = Alarm(env, lambda: fired.append(env.now))
    alarm.arm(5.0)
    env.run()
    assert fired == [5.0]


def test_alarm_cancel_prevents_firing(env):
    fired = []
    alarm = Alarm(env, lambda: fired.append(env.now))
    alarm.arm(5.0)
    alarm.cancel()
    env.run()
    assert fired == []
    assert not alarm.armed


def test_alarm_rearm_replaces_deadline(env):
    fired = []
    alarm = Alarm(env, lambda: fired.append(env.now))
    alarm.arm(5.0)
    alarm.arm(2.0)
    env.run()
    assert fired == [2.0]


def test_alarm_arm_if_idle(env):
    fired = []
    alarm = Alarm(env, lambda: fired.append(env.now))
    alarm.arm_if_idle(3.0)
    alarm.arm_if_idle(10.0)  # ignored; already armed
    env.run()
    assert fired == [3.0]


def test_alarm_can_rearm_from_callback(env):
    fired = []

    def on_fire():
        fired.append(env.now)
        if len(fired) < 3:
            alarm.arm(1.0)

    alarm = Alarm(env, on_fire)
    alarm.arm(1.0)
    env.run()
    assert fired == [1.0, 2.0, 3.0]


def test_alarm_negative_delay_rejected(env):
    alarm = Alarm(env, lambda: None)
    with pytest.raises(ValueError):
        alarm.arm(-1.0)


def test_rng_streams_are_deterministic():
    a = RngRegistry(seed=7)
    b = RngRegistry(seed=7)
    assert [a.stream("x").random() for _ in range(5)] == [
        b.stream("x").random() for _ in range(5)
    ]


def test_rng_streams_are_independent():
    registry = RngRegistry(seed=7)
    first = [registry.stream("x").random() for _ in range(3)]
    # Creating another stream must not perturb the first.
    registry.stream("y").random()
    registry2 = RngRegistry(seed=7)
    [registry2.stream("y").random() for _ in range(10)]
    second = [registry2.stream("x").random() for _ in range(3)]
    assert first == second


def test_rng_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_rng_reset_restores_sequences():
    registry = RngRegistry(seed=3)
    first = registry.stream("s").random()
    registry.reset()
    assert registry.stream("s").random() == first
