"""Unit tests for events and conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event


def test_event_starts_untriggered(env):
    event = Event(env)
    assert not event.triggered
    assert not event.processed


def test_succeed_sets_value(env):
    event = Event(env)
    event.succeed(42)
    assert event.triggered
    assert event.ok
    assert event.value == 42


def test_fail_sets_exception(env):
    event = Event(env)
    error = RuntimeError("x")
    event.defused = True
    event.fail(error)
    assert event.triggered
    assert not event.ok
    assert event.value is error


def test_succeed_twice_rejected(env):
    event = Event(env)
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_fail_then_succeed_rejected(env):
    event = Event(env)
    event.defused = True
    event.fail(ValueError())
    with pytest.raises(RuntimeError):
        event.succeed()


def test_fail_requires_exception(env):
    event = Event(env)
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_value_before_trigger_rejected(env):
    event = Event(env)
    with pytest.raises(RuntimeError):
        event.value
    with pytest.raises(RuntimeError):
        event.ok


def test_value_or_raise_on_failure(env):
    event = Event(env)
    event.defused = True
    event.fail(KeyError("k"))
    with pytest.raises(KeyError):
        event.value_or_raise()


def test_callbacks_run_on_fire(env):
    event = Event(env)
    seen = []
    event.callbacks.append(lambda e: seen.append(e.value))
    event.succeed("v")
    env.run()
    assert seen == ["v"]
    assert event.processed


def test_unhandled_failed_event_raises_at_run(env):
    event = Event(env)
    event.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_defused_failed_event_does_not_raise(env):
    event = Event(env)
    event.defused = True
    event.fail(RuntimeError("handled"))
    env.run()  # no exception


def test_all_of_waits_for_every_event(env):
    events = [env.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
    condition = AllOf(env, events)
    env.run(until=condition)
    assert env.now == 3.0
    assert sorted(condition.value.values()) == [1.0, 2.0, 3.0]


def test_any_of_fires_at_first_event(env):
    events = [env.timeout(d, value=d) for d in (5.0, 2.0)]
    condition = AnyOf(env, events)
    env.run(until=condition)
    assert env.now == 2.0
    assert condition.value.values() == [2.0]


def test_empty_all_of_fires_immediately(env):
    condition = AllOf(env, [])
    assert condition.triggered
    assert len(condition.value) == 0


def test_condition_fails_if_subevent_fails(env):
    good = env.timeout(5.0)
    bad = Event(env)
    condition = AllOf(env, [good, bad])
    bad.fail(ValueError("sub"))
    with pytest.raises(ValueError, match="sub"):
        env.run(until=condition)


def test_condition_value_getitem(env):
    a = env.timeout(1.0, value="a")
    b = env.timeout(2.0, value="b")
    condition = AllOf(env, [a, b])
    env.run(until=condition)
    assert condition.value[a] == "a"
    assert condition.value[b] == "b"
    assert a in condition.value


def test_condition_mixed_environments_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.timeout(1), env2.timeout(1)])


def test_env_helpers_all_of_any_of(env):
    all_condition = env.all_of([env.timeout(1.0), env.timeout(2.0)])
    env.run(until=all_condition)
    assert env.now == 2.0
    any_condition = env.any_of([env.timeout(1.0), env.timeout(5.0)])
    env.run(until=any_condition)
    assert env.now == 3.0
