"""Coverage for smaller kernel/net API surfaces."""

import pytest

from repro.net import HEADER_BYTES, Message, Network
from repro.sim import AllOf, Event, Timeout


def test_event_trigger_copies_outcome(env):
    source = Event(env)
    target = Event(env)
    source.succeed("payload")
    target.trigger(source)
    assert target.triggered
    assert target.value == "payload"


def test_event_trigger_copies_failure(env):
    source = Event(env)
    target = Event(env)
    source.defused = True
    source.fail(ValueError("x"))
    target.defused = True
    target.trigger(source)
    assert not target.ok


def test_event_repr_states(env):
    event = Event(env)
    assert "untriggered" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)


def test_timeout_repr_and_delay(env):
    timer = env.timeout(2.5)
    assert timer.delay == 2.5
    assert "2.5" in repr(timer)


def test_timeout_negative_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_condition_value_iteration(env):
    a = env.timeout(1.0, value="a")
    b = env.timeout(2.0, value="b")
    condition = AllOf(env, [a, b])
    env.run(until=condition)
    assert list(condition.value) == [a, b]
    assert len(condition.value) == 2
    with pytest.raises(KeyError):
        condition.value[Event(env)]


def test_condition_events_property(env):
    events = [env.timeout(1.0), env.timeout(2.0)]
    condition = AllOf(env, events)
    assert condition.events == events


def test_active_process_is_none_outside_processes(env):
    assert env.active_process is None

    def proc(env):
        assert env.active_process is not None
        yield env.timeout(0.1)

    env.run(until=env.process(proc(env)))
    assert env.active_process is None


def test_process_repr_and_target(env):
    def named(env):
        yield env.timeout(5.0)

    process = env.process(named(env))
    assert "named" in repr(process)
    env.run(until=1.0)
    assert isinstance(process.target, Timeout)
    env.run()
    assert process.target is None


def test_network_transmission_time(env):
    infinite = Network(env, bandwidth=float("inf"))
    message = Message("a", "b", "x", None, 100)
    assert infinite.transmission_time(message) == 0.0
    finite = Network(env, bandwidth=50.0)
    assert finite.transmission_time(message) == (100 + HEADER_BYTES) / 50.0


def test_node_unregister(env):
    network = Network(env)
    node = network.add_node("n")
    node.register("addr", lambda m: None)
    node.unregister("addr")
    node.register("addr", lambda m: None)  # re-registration now allowed


def test_node_crash_idempotent_and_listener(env):
    network = Network(env)
    node = network.add_node("n")
    crashes = []
    node.on_crash(lambda n: crashes.append(n.name))
    node.crash()
    node.crash()  # no second notification
    assert crashes == ["n"]
    node.recover()
    node.recover()  # idempotent
    assert node.incarnation == 1


def test_network_stats_repr(env):
    network = Network(env)
    assert "messages_sent=0" in repr(network.stats)


def test_nodes_listing(env):
    network = Network(env)
    network.add_node("a")
    network.add_node("b")
    assert {node.name for node in network.nodes()} == {"a", "b"}
