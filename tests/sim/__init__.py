"""Test package."""
