"""Unit tests for semaphores, locks, condition variables and queues."""

import pytest

from repro.sim import (
    BlockingQueue,
    ConditionVariable,
    Lock,
    QueueClosed,
    Semaphore,
)


# ----------------------------------------------------------------------
# Semaphore
# ----------------------------------------------------------------------
def test_semaphore_immediate_acquire(env):
    sem = Semaphore(env, 2)

    def proc(env):
        yield sem.acquire()
        yield sem.acquire()
        return sem.value

    assert env.run(until=env.process(proc(env))) == 0


def test_semaphore_blocks_when_exhausted(env):
    sem = Semaphore(env, 1)
    log = []

    def holder(env):
        yield sem.acquire()
        yield env.timeout(5.0)
        sem.release()

    def waiter(env):
        yield sem.acquire()
        log.append(env.now)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert log == [5.0]


def test_semaphore_negative_value_rejected(env):
    with pytest.raises(ValueError):
        Semaphore(env, -1)


def test_semaphore_try_acquire(env):
    sem = Semaphore(env, 1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_fifo_wakeup(env):
    sem = Semaphore(env, 0)
    order = []

    def waiter(env, tag):
        yield sem.acquire()
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(waiter(env, tag))

    def releaser(env):
        for _ in range(3):
            yield env.timeout(1.0)
            sem.release()

    env.process(releaser(env))
    env.run()
    assert order == ["a", "b", "c"]


# ----------------------------------------------------------------------
# Lock
# ----------------------------------------------------------------------
def test_lock_mutual_exclusion(env):
    lock = Lock(env)
    inside = []

    def proc(env, tag):
        yield lock.acquire()
        inside.append(tag)
        assert len(inside) == 1
        yield env.timeout(1.0)
        inside.remove(tag)
        lock.release()

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert lock.locked is False


def test_lock_release_unlocked_rejected(env):
    lock = Lock(env)
    with pytest.raises(RuntimeError):
        lock.release()


# ----------------------------------------------------------------------
# ConditionVariable
# ----------------------------------------------------------------------
def test_condition_variable_wait_notify(env):
    lock = Lock(env)
    cv = ConditionVariable(env, lock)
    log = []

    def waiter(env):
        yield lock.acquire()
        notified = yield cv.wait()
        log.append(("woken", notified, env.now))
        lock.release()

    def notifier(env):
        yield env.timeout(3.0)
        yield lock.acquire()
        cv.notify()
        lock.release()

    env.process(waiter(env))
    env.process(notifier(env))
    env.run()
    assert log == [("woken", True, 3.0)]


def test_condition_variable_timeout(env):
    lock = Lock(env)
    cv = ConditionVariable(env, lock)
    log = []

    def waiter(env):
        yield lock.acquire()
        notified = yield cv.wait(timeout=2.0)
        log.append((notified, env.now))
        lock.release()

    env.process(waiter(env))
    env.run()
    assert log == [(False, 2.0)]


def test_condition_variable_wait_requires_lock(env):
    lock = Lock(env)
    cv = ConditionVariable(env, lock)
    with pytest.raises(RuntimeError):
        cv.wait()


def test_condition_variable_notify_all(env):
    lock = Lock(env)
    cv = ConditionVariable(env, lock)
    woken = []

    def waiter(env, tag):
        yield lock.acquire()
        yield cv.wait()
        woken.append(tag)
        lock.release()

    for tag in range(3):
        env.process(waiter(env, tag))

    def notifier(env):
        yield env.timeout(1.0)
        yield lock.acquire()
        assert cv.notify_all() == 3
        lock.release()

    env.process(notifier(env))
    env.run()
    assert sorted(woken) == [0, 1, 2]


# ----------------------------------------------------------------------
# BlockingQueue
# ----------------------------------------------------------------------
def test_queue_fifo_order(env):
    queue = BlockingQueue(env)
    out = []

    def consumer(env):
        for _ in range(3):
            item = yield queue.get()
            out.append(item)

    def producer(env):
        for item in (1, 2, 3):
            yield env.timeout(1.0)
            queue.put(item)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert out == [1, 2, 3]


def test_queue_get_blocks_until_put(env):
    queue = BlockingQueue(env)
    times = []

    def consumer(env):
        yield queue.get()
        times.append(env.now)

    def producer(env):
        yield env.timeout(4.0)
        queue.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [4.0]


def test_queue_capacity_blocks_putter(env):
    queue = BlockingQueue(env, capacity=1)
    log = []

    def producer(env):
        yield queue.put("a")
        log.append(("put-a", env.now))
        yield queue.put("b")
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        item = yield queue.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0.0) in log
    assert ("put-b", 5.0) in log


def test_queue_close_fails_blocked_getter(env):
    queue = BlockingQueue(env)
    outcome = []

    def consumer(env):
        try:
            yield queue.get()
        except QueueClosed as closed:
            outcome.append(closed.reason)

    def closer(env):
        yield env.timeout(1.0)
        queue.close("shutdown")

    env.process(consumer(env))
    env.process(closer(env))
    env.run()
    assert outcome == ["shutdown"]


def test_queue_put_after_close_fails(env):
    queue = BlockingQueue(env)
    queue.close()

    def producer(env):
        try:
            yield queue.put(1)
        except QueueClosed:
            return "refused"

    assert env.run(until=env.process(producer(env))) == "refused"


def test_queue_try_get_and_try_put(env):
    queue = BlockingQueue(env, capacity=1)
    assert queue.try_put("a")
    assert not queue.try_put("b")
    assert queue.try_get() == "a"
    with pytest.raises(IndexError):
        queue.try_get()


def test_queue_len(env):
    queue = BlockingQueue(env)
    queue.put(1)
    queue.put(2)
    assert len(queue) == 2


def test_queue_invalid_capacity(env):
    with pytest.raises(ValueError):
        BlockingQueue(env, capacity=0)
