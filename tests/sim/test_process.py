"""Unit tests for simulated processes: completion, failure, interruption."""

import pytest

from repro.sim import Event, Interrupt, ProcessKilled


def test_process_returns_value(env):
    def proc(env):
        yield env.timeout(1.0)
        return "result"

    process = env.process(proc(env))
    assert env.run(until=process) == "result"


def test_process_with_no_return_yields_none(env):
    def proc(env):
        yield env.timeout(1.0)

    assert env.run(until=env.process(proc(env))) is None


def test_process_is_alive_until_done(env):
    def proc(env):
        yield env.timeout(2.0)

    process = env.process(proc(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_process_exception_propagates_to_waiter(env):
    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            return "caught %s" % exc

    target = env.process(failing(env))
    process = env.process(waiter(env, target))
    assert env.run(until=process) == "caught inner"


def test_unhandled_process_exception_crashes_run(env):
    def failing(env):
        yield env.timeout(1.0)
        raise RuntimeError("no one caught me")

    env.process(failing(env))
    with pytest.raises(RuntimeError, match="no one caught me"):
        env.run()


def test_process_requires_generator(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yielding_non_event_fails_process(env):
    def bad(env):
        yield 42

    process = env.process(bad(env))
    with pytest.raises(TypeError, match="non-event"):
        env.run(until=process)


def test_interrupt_delivered_as_exception(env):
    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    process = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(2.0)
        process.interrupt("reason")

    env.process(killer(env))
    assert env.run(until=process) == ("interrupted", "reason", 2.0)


def test_interrupt_finished_process_rejected(env):
    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_self_interrupt_rejected(env):
    def selfish(env):
        process = env.active_process
        with pytest.raises(RuntimeError):
            process.interrupt()
        yield env.timeout(0.1)
        return "ok"

    process = env.process(selfish(env))
    assert env.run(until=process) == "ok"


def test_uncaught_interrupt_fails_process(env):
    def sleeper(env):
        yield env.timeout(100.0)

    process = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(1.0)
        process.interrupt("bye")

    killer_proc = env.process(killer(env))

    def watcher(env):
        try:
            yield process
        except Interrupt as interrupt:
            return interrupt.cause

    watcher_proc = env.process(watcher(env))
    assert env.run(until=watcher_proc) == "bye"


def test_kill_terminates_without_exception_in_run(env):
    def sleeper(env):
        yield env.timeout(100.0)

    process = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(1.0)
        process.kill("node down")

    env.process(killer(env))
    env.run()
    assert process.triggered
    assert isinstance(process.value, ProcessKilled)
    assert process.value.cause == "node down"


def test_kill_already_finished_is_noop(env):
    def quick(env):
        yield env.timeout(1.0)
        return 5

    process = env.process(quick(env))
    env.run()
    process.kill()
    assert process.value == 5


def test_process_waits_on_another_process(env):
    def inner(env):
        yield env.timeout(3.0)
        return 10

    def outer(env):
        value = yield env.process(inner(env))
        return value * 2

    assert env.run(until=env.process(outer(env))) == 20


def test_immediate_return_process(env):
    def instant(env):
        return "now"
        yield  # pragma: no cover

    assert env.run(until=env.process(instant(env))) == "now"


def test_interrupt_while_waiting_detaches_from_target(env):
    target = Event(env)

    def sleeper(env):
        try:
            yield target
        except Interrupt:
            return "freed"

    process = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(1.0)
        process.interrupt()

    env.process(killer(env))
    assert env.run(until=process) == "freed"
    # The original target never fired and has no leftover callbacks for the
    # process.
    assert not target.triggered
