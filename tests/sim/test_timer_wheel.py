"""Unit tests for the bucket-calendar kernel internals added in PR 7.

These cover the mechanics the black-box kernel tests cannot see: the
pooled cancellable-timer records (O(1) lazy cancel, generation-checked
reuse), the bucket free list, and the regression guard that mass alarm
create+cancel traffic keeps the pending-timer structures bounded
(the old heap kernel retained one dead entry per cancelled alarm until
its deadline came up; the complaint in ISSUE satellite (b)).
"""

import pytest

from repro.sim import Environment
from repro.sim.alarm import Alarm
from repro.sim.kernel import NORMAL, URGENT


# ----------------------------------------------------------------------
# Cancellable callback lane
# ----------------------------------------------------------------------
def test_cancellable_timer_fires_with_args():
    env = Environment()
    fired = []
    env.call_at_cancellable(2.0, lambda a, b: fired.append((a, b)), 1, 2)
    env.run()
    assert fired == [(1, 2)]
    assert env.now == 2.0


def test_cancel_callback_prevents_fire():
    env = Environment()
    fired = []
    handle = env.call_at_cancellable(2.0, fired.append, "x")
    assert env.cancel_callback(handle, handle.gen) is True
    env.run()
    assert fired == []
    # The dead slot was still consumed; time advanced to its bucket.
    assert env.now == 2.0


def test_cancel_callback_is_generation_checked():
    env = Environment()
    fired = []
    handle = env.call_at_cancellable(1.0, fired.append, "first")
    gen = handle.gen
    env.run()
    assert fired == ["first"]
    # The record fired, went back to the pool, and was reissued: a stale
    # cancel with the old generation must not kill the new owner's timer.
    reissued = env.call_at_cancellable(2.0, fired.append, "second")
    assert reissued is handle  # pooled reuse is what makes this test real
    assert env.cancel_callback(handle, gen) is False
    env.run()
    assert fired == ["first", "second"]


def test_cancel_callback_twice_reports_dead():
    env = Environment()
    handle = env.call_at_cancellable(1.0, lambda: None)
    assert env.cancel_callback(handle, handle.gen) is True
    assert env.cancel_callback(handle, handle.gen) is False
    env.run()


def test_cancellable_in_past_raises():
    env = Environment()
    env.call_at(1.0, lambda: None)
    env.run()
    with pytest.raises(ValueError):
        env.call_at_cancellable(0.5, lambda: None)


def test_schedule_rejects_unknown_priority():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), 1.0, priority=7)
    assert env.queued_event_count() == 0


def test_urgent_precedes_normal_at_same_time():
    env = Environment()
    order = []
    first = env.event()
    first.callbacks.append(lambda e: order.append("normal"))
    second = env.event()
    second.callbacks.append(lambda e: order.append("urgent"))
    env.schedule(first, 1.0, priority=NORMAL)
    env.schedule(second, 1.0, priority=URGENT)
    first._ok = second._ok = True
    first._value = second._value = None
    env.run()
    assert order == ["urgent", "normal"]


# ----------------------------------------------------------------------
# Bucket pooling
# ----------------------------------------------------------------------
def test_bucket_pool_recycles_drained_buckets():
    env = Environment()
    for index in range(10):
        env.call_at(float(index), lambda: None)
    env.run()
    assert env._buckets == {}
    assert env._times == []
    assert len(env._bucket_pool) >= 1
    # Reusing a pooled bucket must behave exactly like a fresh one.
    fired = []
    env.call_at(20.0, fired.append, "a")
    env.call_at(20.0, fired.append, "b")
    env.run()
    assert fired == ["a", "b"]


def test_pooled_buckets_do_not_leak_entries_across_reuse():
    env = Environment()
    fired = []
    # Mix all insert paths (schedule NORMAL/URGENT, call_at, call_soon)
    # across several pool generations and check nothing fires twice.
    for round_number in range(5):
        base = env.now + 1.0
        for k in range(3):
            env.call_at(base + k, fired.append, (round_number, k))
        event = env.event()
        event._ok = True
        event._value = None
        env.schedule(event, 0.5, priority=URGENT)
        env.run()
    assert fired == [(r, k) for r in range(5) for k in range(3)]


def test_bucket_pool_is_bounded():
    from repro.sim.kernel import _BUCKET_POOL_LIMIT

    env = Environment()
    n = _BUCKET_POOL_LIMIT + 500
    for index in range(n):
        env.call_at(float(index), lambda: None)
    env.run()
    assert len(env._bucket_pool) <= _BUCKET_POOL_LIMIT


def test_peek_discards_consumed_bucket_after_exception():
    env = Environment()

    def boom():
        raise RuntimeError("boom")

    env.call_at(1.0, boom)
    with pytest.raises(RuntimeError):
        env.run()
    # The bucket at t=1.0 was fully consumed when the exception escaped;
    # peek() must lazily discard it rather than report a phantom event.
    from repro.sim.kernel import Infinity

    assert env.peek() is Infinity
    assert env.queued_event_count() == 0


def test_run_resumes_in_order_after_exception_mid_bucket():
    env = Environment()
    order = []

    def boom():
        order.append("boom")
        raise RuntimeError("boom")

    env.call_at(1.0, order.append, "a")
    env.call_at(1.0, boom)
    env.call_at(1.0, order.append, "b")
    env.call_at(2.0, order.append, "c")
    with pytest.raises(RuntimeError):
        env.run()
    env.run()
    assert order == ["a", "boom", "b", "c"]


# ----------------------------------------------------------------------
# Alarm growth regression (ISSUE satellite b)
# ----------------------------------------------------------------------
def test_hot_alarm_rearm_keeps_single_calendar_entry():
    env = Environment()
    alarm = Alarm(env, lambda: None)
    for _ in range(100_000):
        alarm.arm(0.5)
        alarm.cancel()
    # Lazy cancel + in-place revive: the whole storm occupies one slot.
    assert env.queued_event_count() == 1
    env.run()
    assert env.queued_event_count() == 0


def test_mass_create_cancel_alarms_stay_bounded():
    env = Environment()
    alive = []
    for index in range(100_000):
        alarm = Alarm(env, lambda: None)
        alarm.arm(0.5 + (index % 7) * 0.25)
        alarm.cancel()
        alive.append(alarm)
        if index % 1000 == 999:
            env.run(env.now + 1.0)
    env.run()
    # Every timer record was consumed (skipped dead) and recycled; the
    # calendar, callback pool and bucket pool must all stay far below
    # one-entry-per-alarm growth.
    assert env.queued_event_count() == 0
    assert len(env._cb_pool) < 5_000
    assert len(env._bucket_pool) < 5_000
