"""Unit tests for the simulation kernel (event calendar semantics)."""

import pytest

from repro.sim import EmptySchedule, Environment, Event, Infinity


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_starts_at_initial_time():
    assert Environment(initial_time=5.5).now == 5.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (5.0, 1.0, 3.0):
        timer = env.timeout(delay, value=delay)
        timer.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == [1.0, 3.0, 5.0]


def test_ties_fire_in_insertion_order():
    env = Environment()
    order = []
    for tag in ("a", "b", "c"):
        timer = env.timeout(1.0, value=tag)
        timer.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_does_not_fire_later_events():
    env = Environment()
    fired = []
    timer = env.timeout(10.0)
    timer.callbacks.append(lambda e: fired.append(True))
    env.run(until=4.0)
    assert fired == []
    env.run()
    assert fired == [True]


def test_run_until_past_time_rejected():
    env = Environment()
    env.timeout(5.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_its_value():
    env = Environment()
    event = Event(env)
    timer = env.timeout(2.0)
    timer.callbacks.append(lambda e: event.succeed("done"))
    assert env.run(until=event) == "done"
    assert env.now == 2.0


def test_run_until_failed_event_raises():
    env = Environment()
    event = Event(env)
    timer = env.timeout(1.0)
    timer.callbacks.append(lambda e: event.fail(RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=event)


def test_run_until_already_triggered_event():
    env = Environment()
    event = Event(env)
    event.succeed(7)
    assert env.run(until=event) == 7


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    event = Event(env)
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=event)


def test_step_empty_schedule():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == Infinity
    env.timeout(2.0)
    env.timeout(7.0)
    assert env.peek() == 2.0


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(Event(env), delay=-1.0)


def test_run_with_no_events_returns():
    env = Environment()
    assert env.run() is None
    assert env.now == 0.0


def test_run_until_time_with_empty_calendar_advances_clock():
    env = Environment()
    env.run(until=9.0)
    assert env.now == 9.0


def test_queued_event_count():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    assert env.queued_event_count() == 2
    env.run()
    assert env.queued_event_count() == 0
