"""Seeded fuzz suite for the compiled flat codecs (PR 7).

Three properties, over randomly generated values of every signature
kind in :mod:`repro.types`:

1. **byte identity** — the compiled :class:`ArgsCodec`/:class:`OutcomeCodec`
   closures produce exactly the bytes the reference per-value encoder
   (:func:`repro.encoding.xrep.encode_values`) produces;
2. **round trip** — decoding the encoding yields the original values;
3. **decode totality** — truncating the buffer at *every* prefix length,
   or corrupting any single byte, raises :class:`DecodeError` and never
   ``struct.error``/``IndexError``/``UnicodeDecodeError``.

Deterministic by construction: one ``random.Random`` seeded per test, no
time- or hash-order-dependence, so a failure replays exactly.
"""

import random

import pytest

from repro.core.exceptions import Failure, Signal, Unavailable
from repro.core.outcome import Outcome
from repro.encoding import DecodeError, PortDescriptor, encode_values, type_fingerprint
from repro.encoding.transmit import ArgsCodec, OutcomeCodec, failing_user_type
from repro.types import (
    BOOL,
    CHAR,
    INT,
    NULL,
    REAL,
    STRING,
    ArrayOf,
    HandlerType,
    PortRefType,
    RecordOf,
    UserType,
)

SEED = 19880207  # Liskov & Shrira submission era; fixed for replayability.

ECHO = HandlerType(args=[INT], returns=[INT])

#: One signature per type kind, plus nesting and a mixed tuple.  NULL is
#: kept away from the tail: a signature ending in zero-width types has
#: valid proper prefixes, which would make the truncation property vacuous
#: to state (truncation must *always* fail for these signatures).
SIGNATURES = [
    [INT],
    [REAL],
    [BOOL],
    [CHAR],
    [STRING],
    [ArrayOf(INT)],
    [ArrayOf(STRING)],
    [ArrayOf(ArrayOf(INT))],
    [RecordOf({"name": STRING, "score": REAL})],
    [RecordOf({"xs": ArrayOf(INT), "flag": BOOL, "who": STRING})],
    [failing_user_type("fuzzuser")],
    [PortRefType(ECHO)],
    [NULL, INT, STRING],
    [INT, STRING, ArrayOf(REAL), RecordOf({"a": INT, "b": ArrayOf(STRING)}), BOOL],
]

_CHARS = "ab\n\x00 é字𐍈xyz0123456789"


def _value_for(tp, rng, depth=0):
    if tp is INT:
        return rng.choice(
            (0, 1, -1, rng.randrange(-(2**63), 2**63), 2**63 - 1, -(2**63))
        )
    if tp is REAL:
        return rng.choice((0.0, -1.5, 1e300, -1e-300, rng.uniform(-1e6, 1e6)))
    if tp is BOOL:
        return rng.random() < 0.5
    if tp is CHAR:
        return rng.choice(_CHARS)
    if tp is STRING:
        return "".join(rng.choice(_CHARS) for _ in range(rng.randrange(0, 12)))
    if tp is NULL:
        return None
    if isinstance(tp, ArrayOf):
        count = rng.randrange(0, 3 if depth >= 2 else 5)
        return [_value_for(tp.element, rng, depth + 1) for _ in range(count)]
    if isinstance(tp, RecordOf):
        return {
            name: _value_for(field, rng, depth + 1) for name, field in tp.fields
        }
    if isinstance(tp, UserType):
        return "".join(rng.choice(_CHARS) for _ in range(rng.randrange(0, 8)))
    if isinstance(tp, PortRefType):
        return PortDescriptor(
            node="node%d" % rng.randrange(4),
            group_address="addr%d" % rng.randrange(4),
            group_id="g%d" % rng.randrange(4),
            port_id="p%d" % rng.randrange(4),
            fingerprint=type_fingerprint(tp.handler_type),
            handler_type=tp.handler_type,
        )
    raise AssertionError("no generator for %r" % (tp,))


def _assert_decode_total(decode, data):
    """decode() over every truncation and single-byte corruption of *data*
    must either succeed or raise DecodeError — nothing else escapes."""
    for cut in range(len(data)):
        with pytest.raises(DecodeError):
            decode(data[:cut])
    for index in range(len(data)):
        corrupt = bytearray(data)
        corrupt[index] ^= 0xFF
        try:
            decode(bytes(corrupt))
        except DecodeError:
            pass


@pytest.mark.parametrize("case", range(len(SIGNATURES)))
def test_args_codec_fuzz(case):
    args_types = SIGNATURES[case]
    handler_type = HandlerType(args=args_types, returns=[])
    codec = ArgsCodec.for_type(handler_type)
    rng = random.Random(SEED + case)
    for _ in range(50):
        values = tuple(_value_for(tp, rng) for tp in args_types)
        data = codec.encode(values)
        assert data == encode_values(args_types, values)  # byte identity
        assert codec.decode(data) == values  # round trip
        assert codec.decode(memoryview(data)) == values
    _assert_decode_total(codec.decode, data)


def test_args_codec_truncation_every_signature():
    # The loop above only fuzzes the last buffer; pin one full pass here
    # with a fresh value per signature so every decoder branch sees its
    # truncations even if the parametrized cases are filtered.
    rng = random.Random(SEED)
    for args_types in SIGNATURES:
        handler_type = HandlerType(args=args_types, returns=[])
        codec = ArgsCodec.for_type(handler_type)
        values = tuple(_value_for(tp, rng) for tp in args_types)
        _assert_decode_total(codec.decode, codec.encode(values))


OUTCOME_TYPE = HandlerType(
    args=[],
    returns=[INT, STRING, ArrayOf(REAL)],
    signals={"overflow": [INT, STRING], "empty": []},
)


def _random_outcome(rng):
    roll = rng.randrange(5)
    if roll == 0:
        return Outcome.normal(
            *(_value_for(tp, rng) for tp in OUTCOME_TYPE.returns)
        )
    if roll == 1:
        return Outcome.exceptional(
            Signal("overflow", _value_for(INT, rng), _value_for(STRING, rng))
        )
    if roll == 2:
        return Outcome.exceptional(Signal("empty"))
    if roll == 3:
        return Outcome.exceptional(Unavailable(_value_for(STRING, rng)))
    return Outcome.exceptional(Failure(_value_for(STRING, rng)))


def _reference_outcome_bytes(outcome):
    """The pre-PR-7 outcome encoding, reconstructed value-by-value."""
    if outcome.is_normal:
        return bytes([0]) + encode_values(OUTCOME_TYPE.returns, outcome.results)
    exc = outcome.exception
    if isinstance(exc, Unavailable):
        return bytes([2]) + encode_values([STRING], (exc.reason,))
    if isinstance(exc, Failure):
        return bytes([3]) + encode_values([STRING], (exc.reason,))
    types = OUTCOME_TYPE.signals[exc.condition]
    return (
        bytes([1])
        + encode_values([STRING], (exc.condition,))
        + encode_values(types, exc.exception_args())
    )


def _outcomes_equal(left, right):
    if left.is_normal != right.is_normal:
        return False
    if left.is_normal:
        return left.results == right.results
    a, b = left.exception, right.exception
    if type(a) is not type(b):
        return False
    if isinstance(a, Signal):
        return a.condition == b.condition and a.exception_args() == b.exception_args()
    return a.reason == b.reason


def test_outcome_codec_fuzz_all_tags():
    codec = OutcomeCodec.for_type(OUTCOME_TYPE)
    rng = random.Random(SEED)
    seen_tags = set()
    for _ in range(200):
        outcome = _random_outcome(rng)
        data = codec.encode(outcome)
        seen_tags.add(data[0])
        assert data == _reference_outcome_bytes(outcome)  # byte identity
        assert _outcomes_equal(codec.decode(data), outcome)  # round trip
        assert _outcomes_equal(codec.decode(memoryview(data)), outcome)
    assert seen_tags == {0, 1, 2, 3}
    _assert_decode_total(codec.decode, data)


def test_outcome_codec_truncation_per_tag():
    codec = OutcomeCodec.for_type(OUTCOME_TYPE)
    rng = random.Random(SEED + 1)
    for outcome in (
        Outcome.normal(7, "hi", [1.5, -2.5]),
        Outcome.exceptional(Signal("overflow", 3, "too big")),
        Outcome.exceptional(Signal("empty")),
        Outcome.exceptional(Unavailable("node down")),
        Outcome.exceptional(Failure("refused")),
        _random_outcome(rng),
    ):
        _assert_decode_total(codec.decode, codec.encode(outcome))


def test_user_type_codecs_are_cached_per_object_not_per_key():
    # Two user types with identical wire keys but different callables:
    # the compiled-closure cache must not hand one the other's codec.
    benign = failing_user_type("twin")
    poisoned = failing_user_type("twin", fail_encode=True)
    ok = HandlerType(args=[benign], returns=[])
    bad = HandlerType(args=[poisoned], returns=[])
    assert ArgsCodec.for_type(ok).encode(("poison",)) == encode_values(
        [benign], ("poison",)
    )
    from repro.encoding import EncodeError

    with pytest.raises(EncodeError):
        ArgsCodec.for_type(bad).encode(("poison",))
