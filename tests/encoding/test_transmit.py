"""Unit tests for the argument and outcome codecs."""

import pytest

from repro.core import Failure, Outcome, Unavailable
from repro.encoding import ArgsCodec, DecodeError, EncodeError, OutcomeCodec, failing_user_type
from repro.encoding.xrep import encode_value
from repro.types import CHAR, INT, REAL, STRING, HandlerType


HT = HandlerType(args=[INT, STRING], returns=[REAL], signals={"e1": [CHAR], "e2": []})


def test_args_roundtrip():
    codec = ArgsCodec(HT)
    assert codec.decode(codec.encode((42, "hi"))) == (42, "hi")


def test_args_encode_type_mismatch():
    with pytest.raises(EncodeError):
        ArgsCodec(HT).encode(("42", "hi"))


def test_args_encode_wrong_count():
    with pytest.raises(EncodeError):
        ArgsCodec(HT).encode((42,))


def test_outcome_normal_roundtrip():
    codec = OutcomeCodec(HT)
    outcome = codec.decode(codec.encode(Outcome.normal(2.5)))
    assert outcome.is_normal
    assert outcome.results == (2.5,)


def test_outcome_signal_with_args_roundtrip():
    codec = OutcomeCodec(HT)
    outcome = codec.decode(codec.encode(Outcome.signal("e1", "x")))
    assert outcome.is_exceptional
    assert outcome.condition == "e1"
    assert outcome.exception.exception_args() == ("x",)


def test_outcome_signal_no_args_roundtrip():
    codec = OutcomeCodec(HT)
    outcome = codec.decode(codec.encode(Outcome.signal("e2")))
    assert outcome.condition == "e2"


def test_outcome_unavailable_roundtrip():
    codec = OutcomeCodec(HT)
    outcome = codec.decode(codec.encode(Outcome.unavailable("net down")))
    assert isinstance(outcome.exception, Unavailable)
    assert outcome.exception.reason == "net down"


def test_outcome_failure_roundtrip():
    codec = OutcomeCodec(HT)
    outcome = codec.decode(codec.encode(Outcome.failure("bad")))
    assert isinstance(outcome.exception, Failure)
    assert outcome.exception.reason == "bad"


def test_undeclared_signal_rejected_on_encode():
    codec = OutcomeCodec(HT)
    with pytest.raises(EncodeError, match="undeclared"):
        codec.encode(Outcome.signal("mystery"))


def test_undeclared_signal_rejected_on_decode():
    sender = OutcomeCodec(HandlerType(returns=[REAL], signals={"extra": []}))
    receiver = OutcomeCodec(HandlerType(returns=[REAL]))
    data = sender.encode(Outcome.signal("extra"))
    with pytest.raises(DecodeError, match="undeclared"):
        receiver.decode(data)


def test_empty_outcome_payload_rejected():
    with pytest.raises(DecodeError):
        OutcomeCodec(HT).decode(b"")


def test_unknown_tag_rejected():
    with pytest.raises(DecodeError, match="unknown outcome tag"):
        OutcomeCodec(HT).decode(b"\xff")


def test_trailing_bytes_rejected():
    codec = OutcomeCodec(HT)
    data = codec.encode(Outcome.failure("x")) + b"junk"
    with pytest.raises(DecodeError, match="trailing"):
        codec.decode(data)


def test_send_style_handler_normal_outcome():
    codec = OutcomeCodec(HandlerType(args=[STRING]))
    outcome = codec.decode(codec.encode(Outcome.normal()))
    assert outcome.is_normal
    assert outcome.results == ()


def test_failing_user_type_helper():
    fragile = failing_user_type(fail_encode=True)
    out = bytearray()
    with pytest.raises(EncodeError):
        encode_value(fragile, "poison", out)
    encode_value(fragile, "fine", out)  # non-poison values pass

    fragile2 = failing_user_type(fail_decode=True)
    out2 = bytearray()
    encode_value(fragile2, "poison", out2)
    from repro.encoding.xrep import decode_value

    with pytest.raises(DecodeError):
        decode_value(fragile2, bytes(out2), 0)
