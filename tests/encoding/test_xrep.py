"""Unit and property tests for the external representation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import (
    DecodeError,
    EncodeError,
    PortDescriptor,
    decode_value,
    decode_values,
    encode_value,
    encode_values,
    type_fingerprint,
)
from repro.types import (
    BOOL,
    CHAR,
    INT,
    NULL,
    REAL,
    STRING,
    ArrayOf,
    HandlerType,
    PortRefType,
    RecordOf,
    UserType,
)


def roundtrip(tp, value):
    out = bytearray()
    encode_value(tp, value, out)
    decoded, offset = decode_value(tp, bytes(out), 0)
    assert offset == len(out)
    return decoded


# ----------------------------------------------------------------------
# Deterministic round trips
# ----------------------------------------------------------------------
def test_int_roundtrip():
    for value in (0, 1, -1, 2**63 - 1, -(2**63)):
        assert roundtrip(INT, value) == value


def test_int_out_of_range_rejected():
    with pytest.raises(EncodeError):
        roundtrip(INT, 2**63)


def test_real_roundtrip():
    for value in (0.0, -2.5, 1e300, 3):
        assert roundtrip(REAL, value) == float(value)


def test_bool_roundtrip():
    assert roundtrip(BOOL, True) is True
    assert roundtrip(BOOL, False) is False


def test_char_roundtrip_including_multibyte():
    for value in ("a", "é", "\n", "字"):
        assert roundtrip(CHAR, value) == value


def test_string_roundtrip():
    for value in ("", "hello", "ünïcødé 字符串"):
        assert roundtrip(STRING, value) == value


def test_null_roundtrip_is_empty():
    out = bytearray()
    encode_value(NULL, None, out)
    assert out == b""
    assert roundtrip(NULL, None) is None


def test_array_roundtrip():
    assert roundtrip(ArrayOf(INT), [1, 2, 3]) == [1, 2, 3]
    assert roundtrip(ArrayOf(STRING), []) == []
    assert roundtrip(ArrayOf(ArrayOf(INT)), [[1], [], [2, 3]]) == [[1], [], [2, 3]]


def test_record_roundtrip():
    record = RecordOf({"stu": STRING, "grade": INT})
    assert roundtrip(record, {"stu": "amy", "grade": 90}) == {"stu": "amy", "grade": 90}


def test_record_wrong_fields_rejected():
    record = RecordOf({"a": INT})
    with pytest.raises(EncodeError):
        roundtrip(record, {"b": 1})


def test_type_mismatch_raises_encode_error():
    with pytest.raises(EncodeError):
        roundtrip(INT, "five")
    with pytest.raises(EncodeError):
        roundtrip(BOOL, 1)
    with pytest.raises(EncodeError):
        roundtrip(CHAR, "ab")


def test_port_descriptor_roundtrip():
    ht = HandlerType(args=[CHAR])
    descriptor = PortDescriptor("node1", "g:win", "w1", "putc", type_fingerprint(ht), ht)
    decoded = roundtrip(PortRefType(ht), descriptor)
    assert decoded == descriptor
    assert decoded.handler_type == ht


def test_port_descriptor_fingerprint_mismatch_rejected():
    ht = HandlerType(args=[CHAR])
    other = HandlerType(args=[INT])
    descriptor = PortDescriptor("node1", "g:win", "w1", "putc", type_fingerprint(ht), ht)
    out = bytearray()
    encode_value(PortRefType(ht), descriptor, out)
    with pytest.raises(DecodeError, match="port type mismatch"):
        decode_value(PortRefType(other), bytes(out), 0)


def test_truncated_data_raises_decode_error():
    out = bytearray()
    encode_value(STRING, "hello", out)
    for cut in (0, 2, len(out) - 1):
        with pytest.raises(DecodeError):
            decode_value(STRING, bytes(out[:cut]), 0)


def test_invalid_bool_byte_rejected():
    with pytest.raises(DecodeError):
        decode_value(BOOL, b"\x07", 0)


def test_user_type_roundtrip():
    money = UserType(
        "money",
        STRING,
        to_external=lambda cents: "%d" % cents,
        from_external=int,
    )
    assert roundtrip(money, 1999) == 1999


def test_user_type_encode_failure_wrapped():
    def bad_encode(value):
        raise ValueError("cannot translate")

    fragile = UserType("fragile", STRING, bad_encode, str)
    with pytest.raises(EncodeError, match="cannot translate"):
        roundtrip(fragile, "x")


def test_user_type_decode_failure_wrapped():
    def bad_decode(text):
        raise ValueError("corrupt")

    fragile = UserType("fragile", STRING, str, bad_decode)
    out = bytearray()
    encode_value(fragile, "x", out)
    with pytest.raises(DecodeError, match="corrupt"):
        decode_value(fragile, bytes(out), 0)


def test_encode_values_and_decode_values():
    types = [STRING, INT, ArrayOf(REAL)]
    values = ("amy", 90, [1.5, 2.5])
    data = encode_values(types, values)
    assert decode_values(types, data) == ("amy", 90, [1.5, 2.5])


def test_decode_values_rejects_trailing_bytes():
    data = encode_values([INT], (1,)) + b"\x00"
    with pytest.raises(DecodeError, match="trailing"):
        decode_values([INT], data)


def test_encode_values_count_mismatch():
    with pytest.raises(EncodeError):
        encode_values([INT, INT], (1,))


# ----------------------------------------------------------------------
# Property-based round trips
# ----------------------------------------------------------------------
_scalar_types = {
    INT: st.integers(min_value=-(2**63), max_value=2**63 - 1),
    REAL: st.floats(allow_nan=False, allow_infinity=True),
    BOOL: st.booleans(),
    STRING: st.text(max_size=64),
    CHAR: st.characters(),
}


@given(value=st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_prop_int_roundtrip(value):
    assert roundtrip(INT, value) == value


@given(value=st.floats(allow_nan=False, allow_infinity=True))
def test_prop_real_roundtrip(value):
    assert roundtrip(REAL, value) == value


@given(value=st.text(max_size=128))
def test_prop_string_roundtrip(value):
    assert roundtrip(STRING, value) == value


@given(value=st.lists(st.integers(min_value=-(2**31), max_value=2**31), max_size=32))
def test_prop_int_array_roundtrip(value):
    assert roundtrip(ArrayOf(INT), value) == value


@given(
    stu=st.text(max_size=32),
    grade=st.integers(min_value=0, max_value=100),
    marks=st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=8),
)
def test_prop_record_roundtrip(stu, grade, marks):
    record = RecordOf({"stu": STRING, "grade": INT, "marks": ArrayOf(REAL)})
    value = {"stu": stu, "grade": grade, "marks": marks}
    assert roundtrip(record, value) == value


@given(data=st.binary(max_size=64))
def test_prop_decoder_never_crashes_on_garbage(data):
    """Garbage input must raise DecodeError, never a raw Python error."""
    record = RecordOf({"s": STRING, "xs": ArrayOf(INT)})
    for tp in (INT, REAL, BOOL, CHAR, STRING, ArrayOf(STRING), record):
        try:
            decode_value(tp, data, 0)
        except DecodeError:
            pass
