"""Test package."""
