"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.entities import ArgusSystem
from repro.sim import Environment


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def system():
    """A fresh Argus system with cheap, deterministic network defaults."""
    return ArgusSystem(latency=1.0, kernel_overhead=0.1)


def run_client(system: ArgusSystem, procedure, *args):
    """Spawn ``procedure(ctx, *args)`` on a (possibly shared) client
    guardian, run the simulation until it finishes, return its result."""
    if "client" in system.guardians:
        client = system.guardians["client"]
    else:
        client = system.create_guardian("client")
    process = client.spawn(procedure, *args)
    return system.run(until=process)


def drain(system: ArgusSystem, extra_time: float = 0.0) -> None:
    """Run the simulation until the calendar empties (or a bound)."""
    if extra_time:
        system.run(until=system.now + extra_time)
    else:
        system.run()
