"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import signal

import pytest

from repro.entities import ArgusSystem
from repro.sim import Environment

#: Hard per-test ceiling for wallclock-marked tests.  Harness timeouts
#: should fire long before this; the alarm is the backstop that keeps a
#: wedged socket or worker process from hanging the whole CI job.
WALLCLOCK_TEST_LIMIT_S = 120


@pytest.fixture(autouse=True)
def _wallclock_guard(request):
    """SIGALRM backstop for ``wallclock`` tests (no-op for the rest)."""
    if request.node.get_closest_marker("wallclock") is None:
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            "wallclock test exceeded the %ds hard limit" % WALLCLOCK_TEST_LIMIT_S
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(WALLCLOCK_TEST_LIMIT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def system():
    """A fresh Argus system with cheap, deterministic network defaults."""
    return ArgusSystem(latency=1.0, kernel_overhead=0.1)


def run_client(system: ArgusSystem, procedure, *args):
    """Spawn ``procedure(ctx, *args)`` on a (possibly shared) client
    guardian, run the simulation until it finishes, return its result."""
    if "client" in system.guardians:
        client = system.guardians["client"]
    else:
        client = system.create_guardian("client")
    process = client.spawn(procedure, *args)
    return system.run(until=process)


def drain(system: ArgusSystem, extra_time: float = 0.0) -> None:
    """Run the simulation until the calendar empties (or a bound)."""
    if extra_time:
        system.run(until=system.now + extra_time)
    else:
        system.run()
