"""Stream composition: the three program structures of §4 agree on
results and differ on overlap."""

import pytest

from repro.compose import SKIP, Filter, Pipeline, Stage, run_per_item, run_per_stream, run_phased
from repro.entities import ArgusSystem
from repro.types import INT, HandlerType

from ..conftest import run_client

STEP = HandlerType(args=[INT], returns=[INT])


def build_three_stage_world(stage_cost=0.5, **kwargs):
    """read -> compute -> write, the §4 cascade."""
    defaults = dict(latency=1.0, kernel_overhead=0.1)
    defaults.update(kwargs)
    system = ArgusSystem(**defaults)
    for name, fn in [
        ("reader", lambda x: x + 100),
        ("computer", lambda x: x * 2),
        ("writer", lambda x: x - 1),
    ]:
        guardian = system.create_guardian(name)

        def make_impl(fn=fn):
            def impl(ctx, x):
                yield ctx.compute(stage_cost)
                return fn(x)

            return impl

        guardian.create_handler("step", STEP, make_impl())
    return system


def make_pipeline():
    return Pipeline(
        [
            Stage("reader", "step"),
            Stage("computer", "step"),
            Stage("writer", "step"),
        ]
    )


EXPECTED = [(x + 100) * 2 - 1 for x in range(8)]


def test_phased_computes_correct_results():
    system = build_three_stage_world()

    def main(ctx):
        results = yield from run_phased(ctx, make_pipeline(), list(range(8)))
        return results

    assert run_client(system, main) == EXPECTED


def test_per_stream_computes_same_results():
    system = build_three_stage_world()

    def main(ctx):
        results = yield from run_per_stream(ctx, make_pipeline(), list(range(8)))
        return results

    assert run_client(system, main) == EXPECTED


def test_per_item_computes_same_results():
    system = build_three_stage_world()

    def main(ctx):
        results = yield from run_per_item(ctx, make_pipeline(), list(range(8)))
        return results

    assert run_client(system, main) == EXPECTED


def test_per_stream_overlaps_more_than_phased():
    """§4: the composed program overlaps stages; the phased one cannot."""
    times = {}
    for name, runner in [("phased", run_phased), ("per_stream", run_per_stream)]:
        system = build_three_stage_world(stage_cost=1.0)

        def main(ctx, runner=runner):
            yield from runner(ctx, make_pipeline(), list(range(12)))
            return ctx.now

        times[name] = run_client(system, main)
    assert times["per_stream"] < times["phased"]


def test_filter_skip_drops_items():
    system = build_three_stage_world()

    def drop_odd(value, item):
        if item % 2 == 1:
            return SKIP
        return (item,)

    pipeline = Pipeline(
        [
            Stage("reader", "step", filter=Filter(drop_odd)),
            Stage("computer", "step"),
        ]
    )

    def main(ctx):
        results = yield from run_per_stream(ctx, pipeline, list(range(6)))
        return results

    assert run_client(system, main) == [(x + 100) * 2 for x in (0, 2, 4)]


def test_filter_exception_terminates_composition():
    system = build_three_stage_world()

    def explode(value, item):
        if item == 3:
            raise ValueError("filter bug")
        return (item,)

    pipeline = Pipeline([Stage("reader", "step", filter=Filter(explode))])

    def main(ctx):
        try:
            yield from run_per_stream(ctx, pipeline, list(range(6)))
            return "normal"
        except ValueError:
            return "terminated"

    assert run_client(system, main) == "terminated"


def test_filter_cost_is_charged():
    durations = {}
    for cost in (0.0, 2.0):
        system = build_three_stage_world(stage_cost=0.0)
        pipeline = Pipeline(
            [Stage("reader", "step", filter=Filter(lambda v, i: (i,), cost=cost))]
        )

        def main(ctx):
            yield from run_phased(ctx, pipeline, list(range(4)))
            return ctx.now

        durations[cost] = run_client(system, main)
    # Four filter applications at cost 2.0 add ~8 time units (slightly
    # less: reply latency overlaps the later applications).
    assert durations[2.0] >= durations[0.0] + 7.0


def test_single_stage_pipeline():
    system = build_three_stage_world()
    pipeline = Pipeline([Stage("computer", "step")])

    def main(ctx):
        results = yield from run_per_stream(ctx, pipeline, [1, 2, 3])
        return results

    assert run_client(system, main) == [2, 4, 6]


def test_empty_pipeline_rejected():
    with pytest.raises(ValueError):
        Pipeline([])


def test_empty_items_all_structures():
    for runner in (run_phased, run_per_stream, run_per_item):
        system = build_three_stage_world()

        def main(ctx, runner=runner):
            results = yield from runner(ctx, make_pipeline(), [])
            return results

        assert run_client(system, main) == []


def test_per_item_results_in_item_order_despite_races():
    system = build_three_stage_world(stage_cost=0.3)

    def main(ctx):
        results = yield from run_per_item(ctx, make_pipeline(), list(range(10)))
        return results

    assert run_client(system, main) == [(x + 100) * 2 - 1 for x in range(10)]
