"""Test package."""
