"""Vat-backed pipeline runners: equivalence with the blocking runners.

Satellite 2 of PR 6: ``run_vat_phased`` must be *observably* the same
program as ``run_phased`` — same results, same printed output, and the
same wire-event sequence (the golden-equivalence test below) — while
consuming no blocked process per outstanding promise.  ``run_vat_per_item``
likewise agrees with ``run_per_item`` on results.

The wire comparison strips ``promise_id`` from event fields: the vat
world allocates extra promise serials for the run/gather/derived promises
(client-side bookkeeping), shifting ids, but what goes on the wire —
times, message kinds, guardians, payload sizes, batching — must be
identical event for event.
"""

import pytest

from repro.apps import build_grades_world, make_roster
from repro.apps.grades import _format_line
from repro.compose import (
    SKIP,
    Filter,
    Pipeline,
    Stage,
    run_per_item,
    run_phased,
    run_vat_per_item,
    run_vat_phased,
)
from repro.core.exceptions import Signal
from repro.types import INT, HandlerType

from ..conftest import run_client
from .test_pipeline_structures import EXPECTED, build_three_stage_world, make_pipeline

GRADES_PARAMS = dict(latency=5.0, kernel_overhead=0.5, record_cost=0.3, print_cost=0.1)

N_STUDENTS = 12


def grades_pipeline():
    """The Fig 3-1 cascade as a Pipeline: record_grade then print."""
    return Pipeline(
        [
            Stage("grades_db", "record_grade", filter=lambda value, item: item),
            Stage(
                "printer",
                "print",
                filter=lambda average, item: (_format_line(item[0], average),),
            ),
        ]
    )


def run_grades(runner_kind):
    """One traced grades-pipeline run; returns (results, printed, trace)."""
    world = build_grades_world(tracing=True, **GRADES_PARAMS)
    roster = make_roster(N_STUDENTS)

    if runner_kind == "blocking":

        def main(ctx):
            results = yield from run_phased(ctx, grades_pipeline(), roster)
            return results

    else:

        def main(ctx):
            run = run_vat_phased(ctx, grades_pipeline(), roster)
            results = yield run.claim()
            return results

    process = world.client.spawn(main)
    results = world.system.run(until=process)
    return results, list(world.printed), world.system.tracer.events


def wire_view(events):
    """The externally visible trace: stream/message events, promise ids
    stripped (see module docstring)."""
    view = []
    for event in events:
        if not (event.type.startswith("stream.") or event.type.startswith("message.")):
            continue
        fields = {k: v for k, v in event.fields.items() if k != "promise_id"}
        view.append((event.time, event.type, fields))
    return view


def test_golden_equivalence_vat_phased_matches_blocking_wire_trace():
    blocking_results, blocking_printed, blocking_events = run_grades("blocking")
    vat_results, vat_printed, vat_events = run_grades("vat")
    assert vat_results == blocking_results
    assert vat_printed == blocking_printed
    blocking_wire = wire_view(blocking_events)
    vat_wire = wire_view(vat_events)
    assert len(vat_wire) == len(blocking_wire), (
        "wire event counts diverged: %d blocking vs %d vat"
        % (len(blocking_wire), len(vat_wire))
    )
    for index, (left, right) in enumerate(zip(blocking_wire, vat_wire)):
        assert left == right, (
            "wire traces diverge at event %d:\n  blocking: %r\n  vat:      %r"
            % (index, left, right)
        )


def test_vat_runners_spawn_no_extra_processes():
    # The vat runner must not pay a process per promise: the total process
    # count (client driver + remote handler activations) is exactly the
    # blocking runner's.
    counts = {}
    for kind in ("blocking", "vat"):
        world = build_grades_world(tracing=False, **GRADES_PARAMS)
        roster = make_roster(N_STUDENTS)

        def main(ctx, kind=kind):
            if kind == "blocking":
                results = yield from run_phased(ctx, grades_pipeline(), roster)
            else:
                results = yield run_vat_phased(ctx, grades_pipeline(), roster).claim()
            return results

        process = world.client.spawn(main)
        world.system.run(until=process)
        counts[kind] = world.system.env._next_pid
    assert counts["vat"] == counts["blocking"]


# ----------------------------------------------------------------------
# result agreement on the three-stage world
# ----------------------------------------------------------------------

def test_vat_phased_computes_correct_results():
    system = build_three_stage_world()

    def main(ctx):
        results = yield run_vat_phased(ctx, make_pipeline(), list(range(8))).claim()
        return results

    assert run_client(system, main) == EXPECTED


def test_vat_per_item_computes_correct_results():
    system = build_three_stage_world()

    def main(ctx):
        results = yield run_vat_per_item(ctx, make_pipeline(), list(range(8))).claim()
        return results

    assert run_client(system, main) == EXPECTED


def test_vat_phased_finishes_at_the_same_time_as_phased():
    times = {}
    for name in ("blocking", "vat"):
        system = build_three_stage_world(stage_cost=0.7)

        def main(ctx, name=name):
            if name == "blocking":
                yield from run_phased(ctx, make_pipeline(), list(range(9)))
            else:
                yield run_vat_phased(ctx, make_pipeline(), list(range(9))).claim()
            return ctx.now

        times[name] = run_client(system, main)
    assert times["vat"] == times["blocking"]


def test_vat_per_item_overlaps_items():
    times = {}
    for name, use_vat in [("phased", False), ("per_item", True)]:
        system = build_three_stage_world(stage_cost=1.0)

        def main(ctx, use_vat=use_vat):
            if use_vat:
                yield run_vat_per_item(ctx, make_pipeline(), list(range(12))).claim()
            else:
                yield from run_phased(ctx, make_pipeline(), list(range(12)))
            return ctx.now

        times[name] = run_client(system, main)
    # Items walk the cascade independently, so stages overlap across items.
    assert times["per_item"] < times["phased"]


def test_vat_per_item_agrees_with_blocking_per_item():
    results = {}
    for name in ("blocking", "vat"):
        system = build_three_stage_world(stage_cost=0.3)

        def main(ctx, name=name):
            if name == "blocking":
                out = yield from run_per_item(ctx, make_pipeline(), list(range(10)))
            else:
                out = yield run_vat_per_item(ctx, make_pipeline(), list(range(10))).claim()
            return out

        results[name] = run_client(system, main)
    assert results["vat"] == results["blocking"]


# ----------------------------------------------------------------------
# filters: SKIP, cost, exceptions
# ----------------------------------------------------------------------

@pytest.mark.parametrize("runner", [run_vat_phased, run_vat_per_item])
def test_vat_runners_honour_skip(runner):
    system = build_three_stage_world()

    def drop_odd(value, item):
        if item % 2 == 1:
            return SKIP
        return (item,)

    pipeline = Pipeline(
        [
            Stage("reader", "step", filter=Filter(drop_odd)),
            Stage("computer", "step"),
        ]
    )

    def main(ctx):
        results = yield runner(ctx, pipeline, list(range(6))).claim()
        return results

    assert run_client(system, main) == [(x + 100) * 2 for x in (0, 2, 4)]


@pytest.mark.parametrize("runner", [run_vat_phased, run_vat_per_item])
def test_vat_runners_handle_empty_items(runner):
    system = build_three_stage_world()

    def main(ctx):
        results = yield runner(ctx, make_pipeline(), []).claim()
        return results

    assert run_client(system, main) == []


def test_vat_phased_charges_filter_cost():
    durations = {}
    for cost in (0.0, 2.0):
        system = build_three_stage_world(stage_cost=0.0)
        pipeline = Pipeline(
            [Stage("reader", "step", filter=Filter(lambda v, i: (i,), cost=cost))]
        )

        def main(ctx):
            yield run_vat_phased(ctx, pipeline, list(range(4))).claim()
            return ctx.now

        durations[cost] = run_client(system, main)
    assert durations[2.0] >= durations[0.0] + 7.0


def test_vat_phased_filter_cost_timing_matches_blocking():
    times = {}
    pipeline_of = lambda: Pipeline(  # noqa: E731
        [
            Stage("reader", "step", filter=Filter(lambda v, i: (i,), cost=1.5)),
            Stage("computer", "step"),
        ]
    )
    for name in ("blocking", "vat"):
        system = build_three_stage_world(stage_cost=0.4)

        def main(ctx, name=name):
            if name == "blocking":
                yield from run_phased(ctx, pipeline_of(), list(range(5)))
            else:
                yield run_vat_phased(ctx, pipeline_of(), list(range(5))).claim()
            return ctx.now

        times[name] = run_client(system, main)
    assert times["vat"] == times["blocking"]


@pytest.mark.parametrize("runner", [run_vat_phased, run_vat_per_item])
def test_vat_runner_filter_exception_breaks_the_run(runner):
    system = build_three_stage_world()

    def explode(value, item):
        if item == 3:
            raise ValueError("filter bug")
        return (item,)

    pipeline = Pipeline([Stage("reader", "step", filter=Filter(explode))])

    def main(ctx):
        outcome = yield runner(ctx, pipeline, list(range(6))).wait()
        return outcome.condition

    assert run_client(system, main) == "failure"


@pytest.mark.parametrize("runner", [run_vat_phased, run_vat_per_item])
def test_vat_runner_broken_call_breaks_the_run(runner):
    system = build_three_stage_world()
    bomb = system.create_guardian("bomb")

    def bad_step(ctx, x):
        yield ctx.compute(0.1)
        raise Signal("stage_down")

    bomb.create_handler(
        "step", HandlerType(args=[INT], returns=[INT], signals={"stage_down": []}), bad_step
    )
    pipeline = Pipeline([Stage("reader", "step"), Stage("bomb", "step")])

    def main(ctx):
        outcome = yield runner(ctx, pipeline, list(range(4))).wait()
        return outcome.condition

    assert run_client(system, main) == "stage_down"
