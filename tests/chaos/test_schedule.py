"""ChaosSchedule: generation, validation, serialization, application."""

import json

import pytest

from repro.chaos.schedule import INTENSITIES, ChaosSchedule, FaultOp
from repro.net.faults import LinkFaultProfile
from repro.sim.rng import RngRegistry


def test_fault_op_validates():
    with pytest.raises(ValueError):
        FaultOp("meteor", ["node:a"], 1.0, None)
    with pytest.raises(ValueError):
        FaultOp("crash", ["node:a", "node:b"], 1.0, None)  # crash takes one
    with pytest.raises(ValueError):
        FaultOp("partition", ["node:a"], 1.0, None)  # partition takes two
    with pytest.raises(ValueError):
        FaultOp("crash", ["node:a"], 5.0, 5.0)  # until must be after at


def test_fault_op_round_trips():
    op = FaultOp("partition", ["node:a", "node:b"], 2.5, 9.0)
    assert FaultOp.from_dict(op.to_dict()) == op
    forever = FaultOp("crash", ["node:a"], 1.0, None)
    assert FaultOp.from_dict(forever.to_dict()) == forever


def test_generation_is_seed_deterministic():
    nodes = ["node:client", "node:server", "node:db"]
    crashable = ["node:server", "node:db"]

    def gen(seed, intensity="default"):
        return ChaosSchedule.generate(
            RngRegistry(seed), nodes, crashable, horizon=40.0, intensity=intensity
        )

    assert gen(7) == gen(7)
    schedules = {gen(seed).canonical_json() for seed in range(20)}
    assert len(schedules) > 10  # seeds actually vary the schedule


def test_generation_respects_crashable_and_horizon():
    nodes = ["node:client", "node:server", "node:db"]
    for seed in range(30):
        schedule = ChaosSchedule.generate(
            RngRegistry(seed), nodes, ["node:server"], horizon=40.0, intensity="heavy"
        )
        for op in schedule.ops:
            assert op.at <= 40.0 * 0.8 + 1e-9
            if op.kind == "crash":
                assert op.targets == ("node:server",)


def test_unknown_intensity_rejected():
    with pytest.raises(ValueError):
        ChaosSchedule.generate(
            RngRegistry(0), ["node:a", "node:b"], [], horizon=10.0, intensity="apocalyptic"
        )
    assert set(INTENSITIES) == {"light", "default", "heavy"}


def test_schedule_round_trips_canonically():
    schedule = ChaosSchedule(
        ops=[
            FaultOp("crash", ["node:server"], 3.0, 10.0),
            FaultOp("partition", ["node:a", "node:b"], 5.0, None),
        ],
        link=LinkFaultProfile(drop_rate=0.1, delay_rate=0.2),
    )
    record = json.loads(schedule.canonical_json())
    assert ChaosSchedule.from_dict(record) == schedule
    # Canonical rendering is stable byte-for-byte.
    assert (
        ChaosSchedule.from_dict(record).canonical_json() == schedule.canonical_json()
    )


def test_apply_validates_node_names():
    from repro.entities import ArgusSystem

    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    system.create_guardian("a")
    system.create_guardian("b")
    good = ChaosSchedule(ops=[FaultOp("crash", ["node:a"], 1.0, 2.0)])
    good.apply(system.network, system.rng)
    bad = ChaosSchedule(ops=[FaultOp("crash", ["node:ghost"], 1.0, None)])
    with pytest.raises(ValueError):
        bad.apply(system.network, system.rng)


def test_apply_installs_link_faults():
    from repro.entities import ArgusSystem

    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    system.create_guardian("a")
    schedule = ChaosSchedule(link=LinkFaultProfile(drop_rate=0.2))
    assert system.network.link_faults is None
    schedule.apply(system.network, system.rng)
    assert system.network.link_faults is not None
    assert system.network.link_faults.default == schedule.link
