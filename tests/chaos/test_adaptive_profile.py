"""The seed corpus's schedules also pass under the adaptive transport.

The corpus digests are recorded against the legacy (go-back-N, fixed-RTO)
transport, so a digest comparison is meaningless here — the adaptive
transport legitimately changes timing, packet counts and batch shapes.
What must NOT change is the *verdict*: every oracle and monitor invariant
(exactly-once, in-order resolution, liveness, conservation) holds under
the windowed transport for the exact same fault schedules that the legacy
transport survives.
"""

import os

import pytest

from repro.chaos.engine import run_one
from repro.chaos.schedule import ChaosSchedule
from repro.chaos.seeds import corpus_paths, load_seed
from repro.chaos.workloads import (
    CHAOS_ADAPTIVE_STREAM_CONFIG,
    CHAOS_STREAM_CONFIG,
    create_workload,
)

CORPUS = os.path.join(os.path.dirname(__file__), "seeds")


def _corpus():
    return corpus_paths(CORPUS)


@pytest.mark.parametrize("path", _corpus(), ids=os.path.basename)
def test_corpus_schedule_passes_under_adaptive_transport(path):
    record = load_seed(path)
    result = run_one(
        record["workload"],
        int(record["seed"]),
        intensity=record.get("intensity", "default"),
        schedule=ChaosSchedule.from_dict(record["schedule"]),
        profile="adaptive",
    )
    assert result.verdict == "pass", (
        "%s fails under the adaptive transport: problems=%r violations=%r"
        % (path, result.problems, result.violations)
    )


def test_workload_profile_selection():
    workload = create_workload("echo")
    assert workload.stream_config("legacy") is CHAOS_STREAM_CONFIG
    assert workload.stream_config("adaptive") is CHAOS_ADAPTIVE_STREAM_CONFIG
    with pytest.raises(ValueError):
        workload.stream_config("turbo")


def test_adaptive_profile_is_actually_adaptive():
    config = CHAOS_ADAPTIVE_STREAM_CONFIG
    assert config.selective_retransmit
    assert config.adaptive_batching
    assert config.adaptive_rto
    assert config.max_inflight_calls > 0
    legacy = CHAOS_STREAM_CONFIG
    assert not legacy.selective_retransmit
    assert not legacy.adaptive_batching
    assert not legacy.adaptive_rto
    assert legacy.max_inflight_calls == 0


def test_adaptive_run_is_deterministic():
    first = run_one("echo", seed=3, profile="adaptive")
    second = run_one("echo", seed=3, profile="adaptive")
    assert first.digest() == second.digest()
    assert first.verdict == "pass"
