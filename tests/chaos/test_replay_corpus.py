"""The checked-in seed corpus replays to its recorded verdicts + digests."""

import os

import pytest

from repro.chaos.engine import run_one
from repro.chaos.seeds import (
    corpus_paths,
    load_seed,
    replay_seed,
    save_seed,
    seed_record,
)

CORPUS = os.path.join(os.path.dirname(__file__), "seeds")


def _corpus():
    return corpus_paths(CORPUS)


def test_corpus_is_not_empty():
    assert len(_corpus()) >= 4  # at least one seed per workload


@pytest.mark.parametrize("path", _corpus(), ids=os.path.basename)
def test_corpus_seed_replays_identically(path):
    record = load_seed(path)
    ok, result, mismatches = replay_seed(record)
    assert ok, "%s drifted: %s (problems=%r violations=%r)" % (
        path,
        mismatches,
        result.problems,
        result.violations,
    )


def test_seed_record_round_trips(tmp_path):
    result = run_one("echo", seed=0)
    record = seed_record(result, note="round-trip test")
    path = tmp_path / "echo-seed0.seed.json"
    save_seed(record, str(path))
    loaded = load_seed(str(path))
    assert loaded == record
    ok, _, mismatches = replay_seed(loaded)
    assert ok, mismatches


def test_replay_detects_digest_drift(tmp_path):
    result = run_one("echo", seed=0)
    record = seed_record(result)
    record["expect"]["digest"] = "0" * 64
    ok, _, mismatches = replay_seed(record)
    assert not ok
    assert any("digest" in mismatch for mismatch in mismatches)


def test_replay_detects_verdict_drift():
    result = run_one("echo", seed=0)
    record = seed_record(result)
    record["expect"]["verdict"] = "fail" if result.verdict == "pass" else "pass"
    ok, _, mismatches = replay_seed(record)
    assert not ok
    assert any("verdict" in mismatch for mismatch in mismatches)


def test_load_seed_rejects_bad_format(tmp_path):
    path = tmp_path / "bad.json"
    save_seed({"format": 99}, str(path))
    with pytest.raises(ValueError):
        load_seed(str(path))
