"""Broken promises under faults reach continuations exactly once (PR 6).

Satellite 3: when a guardian crashes mid-chain, the stream layer breaks
the outstanding promises, and the break must flow through the
continuation layer the same way a value would — every registered
``when_broken`` fires exactly once with the propagated exception, no
``when_fulfilled`` body runs, nothing is orphaned, and the invariant
monitors stay clean (the ``traced_system`` fixture re-asserts that at
teardown).
"""

from repro.chaos.engine import run_one
from repro.chaos.schedule import ChaosSchedule, FaultOp
from repro.core.exceptions import ArgusError
from repro.net import schedule_crash
from repro.types import INT, HandlerType

ECHO = HandlerType(args=[INT], returns=[INT])

N_CALLS = 10


def build_echo_world(traced_system):
    system = traced_system(latency=1.0, kernel_overhead=0.1)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.2)
        return x

    server.create_handler("echo", ECHO, echo)
    client = system.create_guardian("client")
    return system, client


def test_crash_breaks_every_chain_exactly_once(traced_system):
    system, client = build_echo_world(traced_system)
    # The server dies while calls are outstanding and never comes back.
    schedule_crash(system.network, "node:server", at=2.0)

    fulfilled = []
    broken = {}  # call index -> [conditions seen]

    def main(ctx):
        echo_ref = ctx.lookup("server", "echo")
        chains = []
        for index in range(N_CALLS):
            promise = echo_ref.stream(index)
            derived = promise.when_fulfilled(
                lambda value: fulfilled.append(value)
            )
            broken[index] = []
            chains.append(
                derived.when_broken(
                    lambda exc, index=index: broken[index].append(exc.condition)
                )
            )
            yield ctx.sleep(1.0)  # spread the calls across the crash
        echo_ref.flush()
        # Recovery chains fulfil once every break has been delivered.
        done = yield from _claim_all(chains)
        return done

    def _claim_all(chains):
        values = []
        for chain in chains:
            values.append((yield chain.claim()))
        return values

    process = client.spawn(main)
    system.run(until=process)
    # Calls before the crash echoed normally; the rest broke, each chain's
    # when_broken exactly once, with a transport condition.
    assert len(fulfilled) + sum(len(seen) for seen in broken.values()) == N_CALLS
    assert fulfilled == sorted(fulfilled)
    assert len(fulfilled) < N_CALLS, "the crash must actually break some calls"
    for index, seen in broken.items():
        if index < len(fulfilled):
            assert seen == []
        else:
            assert len(seen) == 1, "when_broken fired %d times for call %d" % (
                len(seen),
                index,
            )
            assert seen[0] in ("unavailable", "failure")


def test_broken_gather_breaks_exactly_once(traced_system):
    from repro.core.promise import Promise

    system, client = build_echo_world(traced_system)
    schedule_crash(system.network, "node:server", at=2.0)
    breaks = []

    def main(ctx):
        echo_ref = ctx.lookup("server", "echo")
        promises = [echo_ref.stream(index) for index in range(N_CALLS)]
        echo_ref.flush()
        gathered = Promise.all(ctx.env, promises)
        recovered = gathered.when_broken(lambda exc: breaks.append(exc.condition))
        result = yield recovered.claim()
        return result

    process = client.spawn(main)
    system.run(until=process)
    # However many inputs broke, the gather broke once and recovered once.
    assert len(breaks) == 1
    assert breaks[0] in ("unavailable", "failure")


def test_mid_chain_crash_skips_downstream_links(traced_system):
    system, client = build_echo_world(traced_system)
    schedule_crash(system.network, "node:server", at=2.0)
    ran = []

    def main(ctx):
        echo_ref = ctx.lookup("server", "echo")
        yield ctx.sleep(5.0)  # the server is already gone
        promise = echo_ref.stream(1)
        echo_ref.flush()
        chain = (
            promise.when_fulfilled(lambda value: ran.append("a") or value)
            .when_fulfilled(lambda value: ran.append("b") or value)
            .when_broken(lambda exc: exc.condition)
        )
        condition = yield chain.claim()
        return condition

    process = client.spawn(main)
    condition = system.run(until=process)
    # The break skipped both fulfilment links and surfaced at the end.
    assert ran == []
    assert condition in ("unavailable", "failure")


def test_vat_workloads_survive_crash_campaigns():
    """Engine-level: the vat workloads pass their oracles under the same
    hostile schedule the blocking echo workload is tested with."""
    for name, node in (("echo_vat", "node:server"), ("kv_vat", "node:shard1")):
        result = run_one(
            name,
            seed=0,
            schedule=ChaosSchedule(ops=[FaultOp("crash", [node], 3.0, 12.0)]),
        )
        assert result.driver_finished, name
        assert result.verdict == "pass", (name, result.problems, result.violations)
        tags = {tag for _key, tag, _value in result.outcomes}
        assert tags - {"ok"}, "%s: the crash was not felt" % name


def test_chain_break_exception_is_argus_error():
    """The exception handed to when_broken is the ArgusError subclass the
    blocking claim would have raised (not a wrapped repr)."""
    from repro.core.promise import Promise
    from repro.sim.kernel import Environment
    from repro.core.exceptions import Unavailable
    from repro.core.outcome import Outcome

    env = Environment()
    promise = Promise(env)
    seen = []
    promise.when_broken(lambda exc: seen.append(exc))
    promise.resolve(Outcome.exceptional(Unavailable("node crashed")))
    env.run()
    assert len(seen) == 1
    assert isinstance(seen[0], ArgusError)
    assert seen[0].condition == "unavailable"
