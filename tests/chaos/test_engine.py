"""The campaign engine: determinism, verdicts, and oracle sensitivity."""

import pytest

from repro.chaos.engine import run_campaign, run_one
from repro.chaos.schedule import ChaosSchedule, FaultOp
from repro.chaos.workloads import WORKLOADS, KvWorkload, create_workload


def test_roster_contains_the_seven_workloads():
    assert set(WORKLOADS) == {
        "echo", "pipeline", "bulkload", "kv", "echo_vat", "kv_vat", "kv_graph",
    }
    with pytest.raises(KeyError):
        create_workload("nope")


def test_benign_schedule_passes_each_workload():
    for name in sorted(WORKLOADS):
        result = run_one(name, seed=0, schedule=ChaosSchedule())
        assert result.verdict == "pass", (name, result.problems, result.violations)
        assert result.driver_finished
        # Fault-free: every outcome is ok with the expected value.
        assert all(tag == "ok" for _, tag, _ in result.outcomes)


def test_run_is_bit_deterministic():
    a = run_one("kv", seed=11)
    b = run_one("kv", seed=11)
    assert a.digest() == b.digest()
    assert a.outcomes == b.outcomes
    assert a.schedule == b.schedule
    assert run_one("kv", seed=12).digest() != a.digest()


def test_faulty_runs_still_pass_oracles():
    """A hostile schedule may degrade outcomes to unavailable/failure but
    must never break an invariant."""
    result = run_one(
        "echo",
        seed=0,
        schedule=ChaosSchedule(
            ops=[FaultOp("crash", ["node:server"], 3.0, 12.0)]
        ),
    )
    assert result.driver_finished
    assert result.verdict == "pass", (result.problems, result.violations)
    tags = {tag for _, tag, _ in result.outcomes}
    assert "unavailable" in tags  # the crash was actually felt


def test_outcome_oracle_flags_wrong_values():
    class LyingKv(KvWorkload):
        def expected(self):
            return {key: value + 1 for key, value in super().expected().items()}

        def check_outcomes(self, outcomes):
            # Use only the base tag/value check so the lie is visible.
            from repro.chaos.workloads import Workload

            return Workload.check_outcomes(self, outcomes)

    import repro.chaos.engine as engine_module

    original = dict(WORKLOADS)
    WORKLOADS["lying-kv"] = LyingKv
    LyingKv.name = "lying-kv"
    try:
        result = engine_module.run_one("lying-kv", seed=0, schedule=ChaosSchedule())
        assert result.failed
        assert any("fault-free value" in problem for problem in result.problems)
    finally:
        WORKLOADS.clear()
        WORKLOADS.update(original)


def test_liveness_oracle_flags_wedged_driver():
    class WedgedEcho(WORKLOADS["echo"]):
        def driver(self, ctx):
            while True:  # never finishes: the liveness oracle must fire
                yield ctx.sleep(50.0)

    original = dict(WORKLOADS)
    WedgedEcho.name = "wedged-echo"
    WORKLOADS["wedged-echo"] = WedgedEcho
    try:
        result = run_one("wedged-echo", seed=0, schedule=ChaosSchedule())
        assert result.failed
        assert not result.driver_finished
        assert any(problem.startswith("liveness:") for problem in result.problems)
    finally:
        WORKLOADS.clear()
        WORKLOADS.update(original)


def test_driver_crash_is_a_finding_not_an_engine_error():
    class CrashingEcho(WORKLOADS["echo"]):
        def driver(self, ctx):
            yield ctx.sleep(1.0)
            raise RuntimeError("driver bug")

    original = dict(WORKLOADS)
    CrashingEcho.name = "crashing-echo"
    WORKLOADS["crashing-echo"] = CrashingEcho
    try:
        result = run_one("crashing-echo", seed=0, schedule=ChaosSchedule())
        assert result.failed
        assert any(problem.startswith("driver:") for problem in result.problems)
    finally:
        WORKLOADS.clear()
        WORKLOADS.update(original)


def test_kv_ledger_oracle_decodes_duplicates():
    """The base-4 ledger flags a double-executed add even when every tag
    looks healthy."""
    workload = create_workload("kv")
    outcomes = [("add:key0:r0", "ok", 1), ("get:key0", "ok", 2)]  # digit0 == 2
    problems = workload.check_outcomes(outcomes)
    assert any("duplicated" in problem for problem in problems)
    # A clean ledger with digit0 == 1 passes.
    assert not workload.check_outcomes([("add:key0:r0", "ok", 1), ("get:key0", "ok", 1)])
    # An ok add whose bit is missing is a lost write.
    problems = workload.check_outcomes([("add:key0:r0", "ok", 1), ("get:key0", "ok", 4)])
    assert any("lost add" in problem for problem in problems)


def test_campaign_aggregates_and_reports():
    campaign = run_campaign(["echo"], seeds=[0, 1, 2], intensity="light")
    assert campaign.summary()["runs"] == 3
    assert campaign.passed
    assert campaign.summary()["by_workload"]["echo"]["pass"] == 3


def test_trace_export_on_demand(tmp_path):
    trace_path = tmp_path / "run.trace.jsonl"
    result = run_one("echo", seed=0, trace_path=str(trace_path))
    assert trace_path.exists()
    assert result.event_count > 0
    with open(trace_path) as handle:
        assert sum(1 for _ in handle) == result.event_count
