"""Delta-debugging shrinker: ddmin over ops, link-profile minimization."""

import pytest

from repro.chaos.schedule import ChaosSchedule, FaultOp
from repro.chaos.shrink import _ddmin, shrink_schedule
from repro.chaos.workloads import WORKLOADS, EchoWorkload
from repro.net.faults import LinkFaultProfile


def _ops(n):
    return [FaultOp("crash", ["node:server"], float(i + 1), float(i + 2)) for i in range(n)]


def test_ddmin_isolates_a_single_culprit():
    ops = _ops(8)
    culprit = ops[5]
    probes = []

    def still_fails(candidate):
        probes.append(len(candidate))
        return culprit in candidate

    minimal = _ddmin(list(ops), still_fails)
    assert minimal == [culprit]
    assert probes  # it actually probed subsets


def test_ddmin_handles_conjunction_of_two_ops():
    ops = _ops(10)
    culprits = {ops[2], ops[7]}

    def still_fails(candidate):
        return culprits <= set(candidate)

    minimal = _ddmin(list(ops), still_fails)
    assert set(minimal) == culprits


def test_ddmin_reduces_to_empty_when_failure_is_unconditional():
    minimal = _ddmin(_ops(5), lambda candidate: True)
    assert minimal == []


def test_shrink_requires_a_failing_baseline():
    with pytest.raises(ValueError):
        shrink_schedule("echo", seed=0, schedule=ChaosSchedule())


def test_shrink_minimizes_a_real_failing_run():
    """A workload that fails unconditionally shrinks to the empty schedule
    (every op and the link profile are irrelevant to the failure)."""

    class BrokenEcho(EchoWorkload):
        def expected(self):
            return {key: value + 1000 for key, value in super().expected().items()}

    original = dict(WORKLOADS)
    BrokenEcho.name = "broken-echo"
    WORKLOADS["broken-echo"] = BrokenEcho
    try:
        schedule = ChaosSchedule(
            ops=[
                FaultOp("crash", ["node:server"], 5.0, 8.0),
                FaultOp("partition", ["node:client", "node:server"], 20.0, 25.0),
            ],
            link=LinkFaultProfile(drop_rate=0.05),
        )
        report = shrink_schedule("broken-echo", seed=0, schedule=schedule)
        assert report.schedule.ops == []
        assert report.schedule.link is None
        assert report.result.failed
        assert report.removed_ops == 2
        assert report.probes > 1
    finally:
        WORKLOADS.clear()
        WORKLOADS.update(original)


def test_shrink_keeps_the_necessary_op():
    """When the failure needs the crash (wrong expectations only surface
    for outcomes that stay ok), the shrinker must keep a reproducer."""

    class PickyEcho(EchoWorkload):
        # Fails only if call 0 resolves ok AND a crash happened: the
        # driver records the server's crash count via the schedule result.
        def check_outcomes(self, outcomes):
            problems = super(EchoWorkload, self).check_outcomes(outcomes)
            if any(tag == "unavailable" for _, tag, _ in outcomes):
                problems.append("synthetic: a break was observed")
            return problems

    original = dict(WORKLOADS)
    PickyEcho.name = "picky-echo"
    WORKLOADS["picky-echo"] = PickyEcho
    try:
        schedule = ChaosSchedule(
            ops=[
                FaultOp("partition", ["node:client", "node:server"], 3.0, None),
                FaultOp("crash", ["node:server"], 30.0, 31.0),
            ]
        )
        report = shrink_schedule("picky-echo", seed=0, schedule=schedule)
        # The forever-partition alone reproduces; the late crash is noise.
        assert len(report.schedule.ops) == 1
        assert report.schedule.ops[0].kind == "partition"
        assert report.result.failed
    finally:
        WORKLOADS.clear()
        WORKLOADS.update(original)
