"""The ``python -m repro.obs`` trace-analysis CLI, end to end.

Each test exports a real Figure 3-1 trace to disk and drives a CLI
subcommand through :func:`repro.obs.__main__.main` exactly as the shell
entry point would, asserting on the printed output — so the JSONL
round-trip, the offline metric replay, and the span pipeline are all
exercised through the user-facing surface.
"""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.spans import PHASES

from .test_wire_regression import FIG31_WIRE_MESSAGES, run_grades_fig31


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    system = run_grades_fig31(20)
    path = tmp_path_factory.mktemp("trace") / "fig31.jsonl"
    system.export_trace(str(path))
    return str(path)


def test_summarize_matches_live_summary(trace_path, capsys):
    assert main(["summarize", trace_path]) == 0
    report = json.loads(capsys.readouterr().out)
    derived = report["derived"]
    assert derived["stream_calls"] == 40
    assert derived["wire_messages"] == FIG31_WIRE_MESSAGES[20]
    assert derived["promises_outstanding"] == 0
    assert report["event_count"] > 0


def test_spans_prints_the_forest(trace_path, capsys):
    assert main(["spans", trace_path]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 40  # Fig 3-1 calls are all roots (client loop)
    assert all("e2e=" in line for line in lines)
    assert any("record_grade" in line for line in lines)
    assert any("print" in line for line in lines)


def test_critical_path_breakdown_sums_to_total(trace_path, capsys):
    assert main(["critical-path", trace_path]) == 0
    out = capsys.readouterr().out
    assert "calls: 40 (40 complete)" in out
    total = float(out.split("end-to-end total: ")[1].split()[0])
    phase_sum = 0.0
    for line in out.splitlines():
        parts = line.split()
        if parts and parts[0] in PHASES:
            phase_sum += float(parts[1])
    # The printed per-phase breakdown sums to the printed end-to-end total
    # (within the 3-decimal print precision).
    assert abs(phase_sum - total) < 1e-2
    assert "slowest call:" in out


def test_critical_path_per_call(trace_path, capsys):
    assert main(["critical-path", trace_path, "--per-call"]) == 0
    out = capsys.readouterr().out
    assert out.count("e2e=") >= 40
    assert "executing" in out


def test_chrome_writes_valid_trace_event_json(trace_path, tmp_path, capsys):
    output = tmp_path / "out.chrome.json"
    assert main(["chrome", trace_path, "-o", str(output)]) == 0
    assert "wrote" in capsys.readouterr().out
    document = json.loads(output.read_text())
    assert document["displayTimeUnit"] == "ms"
    phases = {entry["ph"] for entry in document["traceEvents"]}
    assert phases == {"X", "M"}


def test_spans_on_empty_trace_reports_and_fails(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["spans", str(empty)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "no events" in err


# ----------------------------------------------------------------------
# Truncated traces (ring-buffered tracer)
# ----------------------------------------------------------------------
def test_summarize_warns_when_trace_was_truncated(tmp_path, capsys):
    from repro.obs.trace import Tracer

    from repro.entities.system import ArgusSystem
    from repro.types.signatures import INT, HandlerType

    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    tracer = Tracer.install(system.env, max_events=10)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.01)
        return x

    server.create_handler("echo", HandlerType(args=[INT], returns=[INT]), echo)
    client = system.create_guardian("client")

    def driver(ctx):
        handle = ctx.lookup("server", "echo")
        for i in range(10):
            yield handle.call(i)
        return None

    system.run(until=client.spawn(driver))
    assert tracer.dropped_events > 0
    path = tmp_path / "truncated.jsonl"
    system.export_trace(str(path))

    assert main(["summarize", str(path)]) == 0
    captured = capsys.readouterr()
    assert "TRUNCATED" in captured.err
    report = json.loads(captured.out)
    assert report["dropped_events"] == tracer.dropped_events
    # The meta record itself is not an analyzed event.
    assert report["event_count"] == 10


def test_summarize_complete_trace_has_no_warning(trace_path, capsys):
    assert main(["summarize", trace_path]) == 0
    captured = capsys.readouterr()
    assert "TRUNCATED" not in captured.err
    assert json.loads(captured.out)["dropped_events"] == 0


def test_critical_path_prints_p999(trace_path, capsys):
    assert main(["critical-path", trace_path]) == 0
    out = capsys.readouterr().out
    assert "end-to-end percentiles:" in out
    assert "p999=" in out


# ----------------------------------------------------------------------
# Load-report subcommands (report / top)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def report_path(tmp_path_factory):
    from benchmarks.load.harness import LoadConfig, stepped_search
    from repro.obs.slo import SloSpec, evaluate_slo

    config = LoadConfig(
        workload="echo", n_agents=1_000, n_clients=2, duration=2.0, seed=5
    )
    entry, _ = stepped_search(config, [100.0])
    # Ceilings/floor sized to the tiny fixture run, not the benchmark topology.
    spec = SloSpec(
        {"echo": {"latency": {"p50": 0.1, "p99": 0.5}, "throughput_floor": 50.0}}
    )
    verdicts = evaluate_slo(spec, {"echo": entry})
    entry["slo"] = verdicts["workloads"]["echo"]
    report = {
        "pr": 8,
        "mode": "quick",
        "agents": 1_000,
        "workloads": {"echo": entry},
        "slo": verdicts,
        "slo_spec": spec.to_dict(),
    }
    path = tmp_path_factory.mktemp("load") / "report.json"
    path.write_text(json.dumps(report))
    return str(path)


def test_report_subcommand_renders_and_passes(report_path, capsys):
    assert main(["report", report_path]) == 0
    out = capsys.readouterr().out
    assert "workload echo" in out
    assert "rate ladder" in out
    assert "overall SLO verdict: ok" in out


def test_report_subcommand_fails_on_breach(report_path, tmp_path, capsys):
    report = json.loads(open(report_path).read())
    report["slo"]["ok"] = False
    breached = tmp_path / "breached.json"
    breached.write_text(json.dumps(report))
    assert main(["report", str(breached)]) == 1


def test_top_subcommand_replays_windows(report_path, capsys):
    assert main(["top", report_path]) == 0
    out = capsys.readouterr().out
    assert "obs top — echo" in out
    assert out.count("window ") >= 2
    assert "in-flight" in out


def test_top_subcommand_unknown_workload_fails(report_path, capsys):
    with pytest.raises(KeyError):
        main(["top", report_path, "-w", "nope"])
