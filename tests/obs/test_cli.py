"""The ``python -m repro.obs`` trace-analysis CLI, end to end.

Each test exports a real Figure 3-1 trace to disk and drives a CLI
subcommand through :func:`repro.obs.__main__.main` exactly as the shell
entry point would, asserting on the printed output — so the JSONL
round-trip, the offline metric replay, and the span pipeline are all
exercised through the user-facing surface.
"""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.spans import PHASES

from .test_wire_regression import FIG31_WIRE_MESSAGES, run_grades_fig31


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    system = run_grades_fig31(20)
    path = tmp_path_factory.mktemp("trace") / "fig31.jsonl"
    system.export_trace(str(path))
    return str(path)


def test_summarize_matches_live_summary(trace_path, capsys):
    assert main(["summarize", trace_path]) == 0
    report = json.loads(capsys.readouterr().out)
    derived = report["derived"]
    assert derived["stream_calls"] == 40
    assert derived["wire_messages"] == FIG31_WIRE_MESSAGES[20]
    assert derived["promises_outstanding"] == 0
    assert report["event_count"] > 0


def test_spans_prints_the_forest(trace_path, capsys):
    assert main(["spans", trace_path]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 40  # Fig 3-1 calls are all roots (client loop)
    assert all("e2e=" in line for line in lines)
    assert any("record_grade" in line for line in lines)
    assert any("print" in line for line in lines)


def test_critical_path_breakdown_sums_to_total(trace_path, capsys):
    assert main(["critical-path", trace_path]) == 0
    out = capsys.readouterr().out
    assert "calls: 40 (40 complete)" in out
    total = float(out.split("end-to-end total: ")[1].split()[0])
    phase_sum = 0.0
    for line in out.splitlines():
        parts = line.split()
        if parts and parts[0] in PHASES:
            phase_sum += float(parts[1])
    # The printed per-phase breakdown sums to the printed end-to-end total
    # (within the 3-decimal print precision).
    assert abs(phase_sum - total) < 1e-2
    assert "slowest call:" in out


def test_critical_path_per_call(trace_path, capsys):
    assert main(["critical-path", trace_path, "--per-call"]) == 0
    out = capsys.readouterr().out
    assert out.count("e2e=") >= 40
    assert "executing" in out


def test_chrome_writes_valid_trace_event_json(trace_path, tmp_path, capsys):
    output = tmp_path / "out.chrome.json"
    assert main(["chrome", trace_path, "-o", str(output)]) == 0
    assert "wrote" in capsys.readouterr().out
    document = json.loads(output.read_text())
    assert document["displayTimeUnit"] == "ms"
    phases = {entry["ph"] for entry in document["traceEvents"]}
    assert phases == {"X", "M"}


def test_spans_on_empty_trace_reports_and_fails(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["spans", str(empty)]) == 1
    assert "no spans" in capsys.readouterr().out
