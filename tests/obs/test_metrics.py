"""Unit tests for the metrics registry (counters, histograms, summary)."""

import json

import pytest

from repro.obs import Histogram, Metrics


def test_counters_with_labels_are_separate_series():
    metrics = Metrics()
    metrics.inc("net.messages_sent", node="a")
    metrics.inc("net.messages_sent", node="a")
    metrics.inc("net.messages_sent", node="b")
    assert metrics.counter_value("net.messages_sent", node="a") == 2
    assert metrics.counter_value("net.messages_sent", node="b") == 1
    assert metrics.counter_value("net.messages_sent", node="c") == 0
    assert metrics.total("net.messages_sent") == 3


def test_counter_custom_amount_and_names():
    metrics = Metrics()
    metrics.inc("bytes", 100)
    metrics.inc("bytes", 28)
    assert metrics.counter_value("bytes") == 128
    assert metrics.counter_names() == ["bytes"]


def test_histogram_statistics():
    histogram = Histogram()
    for value in [4.0, 1.0, 3.0, 2.0]:
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == 10.0
    assert histogram.mean == 2.5
    assert histogram.min == 1.0
    assert histogram.max == 4.0
    assert histogram.percentile(50) == 2.0
    assert histogram.percentile(100) == 4.0
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_empty_histogram_is_all_zero():
    histogram = Histogram()
    assert histogram.count == 0
    assert histogram.mean == 0.0
    assert histogram.percentile(99) == 0.0
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 0


def test_observe_creates_labelled_series_and_merged_view():
    metrics = Metrics()
    metrics.observe("latency", 1.0, stream="s1")
    metrics.observe("latency", 3.0, stream="s2")
    assert metrics.histogram("latency", stream="s1").count == 1
    assert metrics.histogram("latency", stream="missing").count == 0
    merged = metrics.merged_histogram("latency")
    assert merged.count == 2
    assert merged.mean == 2.0


def test_summary_is_json_serializable_and_keyed():
    metrics = Metrics()
    metrics.inc("calls", stream="s1", kind="send")
    metrics.observe("wait", 5.0)
    report = metrics.summary()
    text = json.dumps(report)
    parsed = json.loads(text)
    assert parsed["counters"]["calls{kind=send,stream=s1}"] == 1
    assert parsed["histograms"]["wait"]["mean"] == 5.0


def test_histogram_snapshot_includes_p999():
    histogram = Histogram()
    for value in range(1, 1001):
        histogram.observe(float(value))
    snapshot = histogram.snapshot()
    assert snapshot["p999"] == histogram.percentile(99.9)
    assert snapshot["p99"] <= snapshot["p999"] <= snapshot["max"]


def test_exact_histogram_merge():
    left, right = Histogram(), Histogram()
    for value in (1.0, 5.0):
        left.observe(value)
    for value in (2.0, 4.0, 3.0):
        right.observe(value)
    assert left.merge(right) is left
    assert left.count == 5
    assert left.percentile(50) == 3.0
    # Merging an empty histogram is the identity.
    before = left.count
    left.merge(Histogram())
    assert left.count == before


def test_streaming_mode_swaps_histogram_type():
    from repro.obs import StreamingHistogram

    metrics = Metrics(streaming=True)
    metrics.observe("latency", 0.25)
    assert isinstance(metrics.histogram("latency"), StreamingHistogram)
    assert isinstance(metrics.merged_histogram("latency"), StreamingHistogram)
    exact = Metrics()
    exact.observe("latency", 0.25)
    assert isinstance(exact.histogram("latency"), Histogram)


def test_attached_collector_sees_every_write():
    from repro.obs import WindowedCollector

    collector = WindowedCollector(window=1.0, clock=lambda: 0.5)
    metrics = Metrics(streaming=True, collector=collector)
    metrics.inc("reqs", node="a")
    metrics.inc("reqs", node="b")
    metrics.observe("latency", 0.25, node="a")
    row = collector.rows()[0]
    # Collector series are keyed by bare name: labels pool together.
    assert row["reqs"] == 2
    assert row["latency_count"] == 1
