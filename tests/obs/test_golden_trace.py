"""Golden-trace determinism: the fast-path optimizations must be invisible.

The simulator promises bit-identical behaviour run to run: same simulated
timestamps, same event ordering, same wire traffic.  The PR 2 fast paths
(callback-lane delivery, lazy alarms, codec caching, ``__slots__``) all
touch scheduling internals, so these tests pin the *entire* Fig 3-1 grades
trace — every event's time, type, and fields — across two independently
built worlds.  Any optimization that perturbs heap tie-breaking, pid
assignment, or delivery order shows up here as a first-divergence diff.
"""

from repro.apps import build_grades_world, make_roster, program_fig_3_1

from .test_wire_regression import FIG31_WIRE_MESSAGES, GRADES_PARAMS

N_STUDENTS = 20


def run_traced_grades(n_students):
    """One full Fig 3-1 run; returns the flattened golden trace."""
    world = build_grades_world(tracing=True, **GRADES_PARAMS)
    roster = make_roster(n_students)

    def main(ctx):
        count = yield from program_fig_3_1(ctx, roster)
        return count

    process = world.client.spawn(main)
    world.system.run(until=process)
    assert len(world.printed) == n_students
    return [
        (event.time, event.type, event.fields)
        for event in world.system.tracer.events
    ]


def first_divergence(a, b):
    """Index and pair of the first differing events, for a readable diff."""
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return index, left, right
    return len(min(a, b, key=len)), None, None


def test_fig31_trace_is_identical_across_runs():
    first = run_traced_grades(N_STUDENTS)
    second = run_traced_grades(N_STUDENTS)
    assert len(first) == len(second), "trace lengths diverged"
    if first != second:
        index, left, right = first_divergence(first, second)
        raise AssertionError(
            "traces diverge at event %d:\n  run 1: %r\n  run 2: %r"
            % (index, left, right)
        )
    # The golden trace carries the pinned wire count.
    wire = sum(1 for _t, etype, _f in first if etype == "message.sent")
    assert wire == FIG31_WIRE_MESSAGES[N_STUDENTS]
    # Timestamps are simulated and monotone (heap pops in time order).
    times = [time for time, _etype, _fields in first]
    assert times == sorted(times)


def test_fig31_span_ids_are_deterministic_and_complete():
    """Span contexts are part of the golden trace: every call event must
    carry them, minted from per-environment serial counters so two
    independent runs agree verbatim (the full-trace comparison above
    covers equality; this pins presence and shape)."""
    trace = run_traced_grades(N_STUDENTS)
    buffered = [fields for _t, etype, fields in trace
                if etype == "stream.call_buffered"]
    assert len(buffered) == 2 * N_STUDENTS
    span_ids = [fields["span_id"] for fields in buffered]
    trace_ids = [fields["trace_id"] for fields in buffered]
    assert len(set(span_ids)) == len(span_ids), "span ids must be unique"
    # The client loop has no enclosing span: every call roots its own trace.
    assert all(fields["parent_span_id"] == 0 for fields in buffered)
    assert len(set(trace_ids)) == len(trace_ids)
    # Ids come from fresh per-environment counters: dense from 1.
    assert sorted(span_ids) == list(range(1, len(span_ids) + 1))
    # Delivery and resolution carry the same span identity end to end.
    by_key = {
        (f["stream"], f["seq"]): f["span_id"] for f in buffered
    }
    for _t, etype, fields in trace:
        if etype in ("stream.call_delivered", "stream.call_resolved"):
            assert fields["span_id"] == by_key[(fields["stream"], fields["seq"])]


def test_fig31_trace_matches_under_traced_env(traced_env):
    """Running with an unrelated traced environment alive must not matter.

    Process pids and event sequence numbers are per-environment, so a
    second live environment (here: the ``traced_env`` fixture, which has
    its own tracer installed) cannot bleed into the grades world's trace.
    """
    # Burn some activity in the foreign environment before and between
    # the golden runs: schedule and fire a few of its own events.
    env = traced_env
    env.process(_ticker(env))
    env.run(until=5)

    first = run_traced_grades(N_STUDENTS)

    env.run(until=10)
    assert env.tracer.events, "fixture environment traced its own activity"

    second = run_traced_grades(N_STUDENTS)
    assert first == second


def _ticker(env):
    for _ in range(4):
        yield env.timeout(1.0)
