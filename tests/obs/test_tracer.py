"""Unit tests for the tracer: lifecycle, capture, export, summary."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.trace import load_jsonl
from repro.sim import Environment


def test_tracing_is_disabled_by_default():
    assert Environment().tracer is None


def test_argus_system_tracing_flag():
    from repro.entities import ArgusSystem

    assert ArgusSystem().tracer is None
    traced = ArgusSystem(tracing=True)
    assert isinstance(traced.tracer, Tracer)
    assert traced.tracer is traced.env.tracer


def test_install_and_uninstall():
    env = Environment()
    tracer = Tracer.install(env)
    assert env.tracer is tracer
    tracer.uninstall()
    assert env.tracer is None
    # Uninstalling twice (or after replacement) is harmless.
    other = Tracer.install(env)
    tracer.uninstall()
    assert env.tracer is other


def test_events_carry_simulated_timestamps(traced_env):
    env = traced_env
    tracer = env.tracer

    def script():
        tracer.emit("custom.start", step=1)
        yield env.timeout(7.5)
        tracer.emit("custom.end", step=2)

    env.process(script())
    env.run()
    start, end = tracer.events_of("custom.start", "custom.end")
    assert start.time == 0.0
    assert end.time == 7.5
    assert end.fields == {"step": 2}


def test_capture_false_keeps_metrics_only():
    env = Environment()
    tracer = Tracer.install(env, capture=False)
    tracer.emit("message.sent", src="a", dst="b", bytes=10, payload="X")
    assert tracer.events == []
    assert tracer.metrics.counter_value("net.messages_sent", node="a") == 1


def test_export_jsonl_round_trip(traced_env, tmp_path):
    tracer = traced_env.tracer
    tracer.emit("message.sent", src="a", dst="b", bytes=42, payload="CallPacket")
    tracer.emit("custom.weird", obj=object())  # non-JSON value → repr
    path = tmp_path / "trace.jsonl"
    written = tracer.export_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert written == len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert records[0]["type"] == "message.sent"
    assert records[0]["bytes"] == 42
    assert records[0]["t"] == 0.0
    assert "object object" in records[1]["obj"]


def test_load_jsonl_round_trips_exported_events(traced_env, tmp_path):
    env = traced_env
    tracer = env.tracer

    def script():
        tracer.emit("message.sent", src="a", dst="b", bytes=10, payload="X")
        yield env.timeout(2.5)
        tracer.emit("custom.note", detail={"nested": [1, 2]})

    env.process(script())
    env.run()
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(str(path))

    loaded = load_jsonl(str(path))
    assert [(e.time, e.type, e.fields) for e in loaded] == [
        (e.time, e.type, e.fields) for e in tracer.events
    ]
    # Blank lines (e.g. from concatenated traces) are skipped.
    path.write_text(path.read_text() + "\n\n")
    assert len(load_jsonl(str(path))) == len(loaded)


def test_ring_buffer_keeps_most_recent_events_and_counts_drops():
    env = Environment()
    tracer = Tracer.install(env, max_events=3)
    for index in range(5):
        tracer.emit("tick", index=index)
    assert [event.fields["index"] for event in tracer.events] == [2, 3, 4]
    assert tracer.dropped_events == 2
    # events_of / count operate on what's retained.
    assert tracer.count("tick") == 3
    # Metrics aggregation is unaffected by eviction.
    tracer.emit("message.sent", src="a", dst="b", bytes=1, payload="X")
    assert tracer.metrics.total("net.messages_sent") == 1


def test_ring_buffer_unused_when_not_requested(traced_env):
    tracer = traced_env.tracer
    assert tracer.max_events is None
    assert isinstance(tracer.events, list)
    assert tracer.dropped_events == 0


def test_ring_buffer_rejects_non_positive_sizes():
    env = Environment()
    with pytest.raises(ValueError):
        Tracer(env, max_events=0)
    with pytest.raises(ValueError):
        Tracer(env, max_events=-5)


def test_events_of_and_count(traced_env):
    tracer = traced_env.tracer
    tracer.emit("a.one")
    tracer.emit("b.two")
    tracer.emit("a.one")
    assert tracer.count("a.one") == 2
    assert tracer.count("missing") == 0
    assert [event.type for event in tracer.events_of("a.one")] == ["a.one", "a.one"]
    assert len(tracer.events_of("a.one", "b.two")) == 3


def test_summary_reports_derived_quantities(traced_env, tmp_path):
    tracer = traced_env.tracer
    for seq in range(4):
        tracer.emit(
            "stream.call_buffered",
            stream="s", seq=seq + 1, port="p", kind="stream", buffered=seq + 1,
        )
    tracer.emit("message.sent", src="a", dst="b", bytes=100, payload="CallPacket")
    tracer.emit("message.sent", src="b", dst="a", bytes=50, payload="ReplyPacket")
    report = tracer.summary()
    assert report["derived"]["stream_calls"] == 4
    assert report["derived"]["wire_messages"] == 2
    assert report["derived"]["messages_per_call"] == 0.5
    assert report["event_count"] == 6
    # summary_json writes the same report as parseable JSON.
    path = tmp_path / "summary.json"
    tracer.summary_json(str(path))
    parsed = json.loads(path.read_text())
    assert parsed["derived"]["messages_per_call"] == 0.5


def test_unknown_event_types_are_captured_without_metrics(traced_env):
    tracer = traced_env.tracer
    tracer.emit("totally.custom", hello="world")
    assert tracer.count("totally.custom") == 1
    assert tracer.metrics.summary() == {"counters": {}, "histograms": {}}
