"""Trace-based wire-traffic regression pins.

The paper's efficiency claims are per-message-overhead claims, so these
tests pin the *exact* number of physical messages the two headline
scenarios put on the wire (the simulation is deterministic).  If a
transport change alters these counts, the change must be intentional and
re-pinned here — silent per-message regressions fail loudly.
"""

import json

import pytest

from repro.apps import build_grades_world, make_roster, program_fig_3_1
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

ECHO = HandlerType(args=[INT], returns=[INT])

#: E3 world parameters (benchmarks/test_bench_grades_fig31.py).
GRADES_PARAMS = dict(
    latency=5.0, kernel_overhead=0.5, record_cost=0.3, print_cost=0.1
)

#: Pinned physical-message counts for the Fig 3-1 grades run.
FIG31_WIRE_MESSAGES = {5: 15, 20: 18, 80: 47}

#: E1 scenario (benchmarks/test_bench_stream_vs_rpc.py): 32 echo calls.
E1_CALLS = 32
E1_RPC_WIRE_MESSAGES = 96  # 3 per call: request + reply + ack
E1_STREAM_WIRE_MESSAGES = 6


def run_grades_fig31(n_students):
    world = build_grades_world(tracing=True, **GRADES_PARAMS)
    roster = make_roster(n_students)

    def main(ctx):
        count = yield from program_fig_3_1(ctx, roster)
        return count

    process = world.client.spawn(main)
    world.system.run(until=process)
    assert len(world.printed) == n_students
    return world.system


def build_echo_system(stream_config):
    from repro.entities import ArgusSystem

    system = ArgusSystem(
        latency=5.0, kernel_overhead=0.5, stream_config=stream_config, tracing=True
    )
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.05)
        return x

    server.create_handler("echo", ECHO, echo)
    return system


@pytest.mark.parametrize("n_students", sorted(FIG31_WIRE_MESSAGES))
def test_fig31_wire_message_count_is_pinned(n_students):
    system = run_grades_fig31(n_students)
    tracer = system.tracer
    expected = FIG31_WIRE_MESSAGES[n_students]
    # Trace, metrics and the network's own counters must all agree.
    assert tracer.count("message.sent") == expected
    assert tracer.metrics.total("net.messages_sent") == expected
    assert system.stats()["messages_sent"] == expected
    # Each student produces 2 stream calls (record_grade + print send);
    # buffering amortizes them so the ratio falls as the roster grows.
    derived = tracer.summary()["derived"]
    assert derived["stream_calls"] == 2 * n_students
    assert derived["messages_per_call"] == expected / (2 * n_students)


def test_fig31_traced_run_exports_jsonl_and_summary(tmp_path):
    system = run_grades_fig31(20)
    trace_path = tmp_path / "fig31.jsonl"
    summary_path = tmp_path / "fig31.summary.json"
    written = system.export_trace(str(trace_path))
    assert written == len(system.tracer.events) > 0
    records = [
        json.loads(line) for line in trace_path.read_text().splitlines()
    ]
    assert len(records) == written
    types = {record["type"] for record in records}
    # Every instrumented layer shows up in the trace.
    assert {
        "process.created",
        "message.sent",
        "message.delivered",
        "stream.call_buffered",
        "stream.packet_sent",
        "stream.call_delivered",
        "promise.created",
        "promise.resolved",
        "promise.claimed",
    } <= types
    # Timestamps are simulated and monotone.
    times = [record["t"] for record in records]
    assert times == sorted(times)

    report = system.tracer.summary_json(str(summary_path))
    parsed = json.loads(summary_path.read_text())
    assert parsed["derived"] == json.loads(json.dumps(report["derived"]))
    assert parsed["derived"]["wire_messages"] == FIG31_WIRE_MESSAGES[20]


def test_fig31_grades_delivery_is_exactly_once_and_ordered():
    system = run_grades_fig31(20)
    tracer = system.tracer
    delivered = [
        (event.fields["stream"], event.fields["incarnation"], event.fields["seq"])
        for event in tracer.events_of("stream.call_delivered")
    ]
    assert len(delivered) == len(set(delivered)), "duplicate delivery!"
    assert tracer.metrics.total("stream.duplicates") == 0
    # 20 record_grade calls + 20 print sends, delivered in order per stream.
    assert len(delivered) == 40
    per_stream = {}
    for stream, incarnation, seq in delivered:
        per_stream.setdefault((stream, incarnation), []).append(seq)
    for seqs in per_stream.values():
        assert seqs == list(range(1, len(seqs) + 1))


def test_e1_rpc_wire_message_count_is_pinned():
    # Paper-replication baseline: the pinned counts are a property of the
    # 1988 fixed-function transport, so E1 runs under the legacy config.
    system = build_echo_system(StreamConfig.legacy().unbuffered())

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        for index in range(E1_CALLS):
            yield echo.call(index)

    process = system.create_guardian("client").spawn(main)
    system.run(until=process)
    assert system.tracer.count("message.sent") == E1_RPC_WIRE_MESSAGES
    assert system.stats()["messages_sent"] == E1_RPC_WIRE_MESSAGES


def test_e1_stream_wire_message_count_is_pinned():
    config = StreamConfig.legacy(
        batch_size=16,
        reply_batch_size=16,
        max_buffer_delay=2.0,
        reply_max_delay=2.0,
    )
    system = build_echo_system(config)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(E1_CALLS)]
        echo.flush()
        for promise in promises:
            yield promise.claim()

    process = system.create_guardian("client").spawn(main)
    system.run(until=process)
    tracer = system.tracer
    assert tracer.count("message.sent") == E1_STREAM_WIRE_MESSAGES
    assert system.stats()["messages_sent"] == E1_STREAM_WIRE_MESSAGES
    # The amortization the paper claims: 16x fewer messages than RPC.
    assert E1_RPC_WIRE_MESSAGES / E1_STREAM_WIRE_MESSAGES == 16.0
    # All 32 calls were delivered exactly once, in order.
    seqs = [
        event.fields["seq"] for event in tracer.events_of("stream.call_delivered")
    ]
    assert seqs == list(range(1, E1_CALLS + 1))
