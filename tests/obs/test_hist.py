"""StreamingHistogram: accuracy bound, merge algebra, serialization.

The histogram's contract is *relative* quantile error: every estimate is
within ``relative_error`` of the true sample quantile.  The property
tests drive that contract with adversarial shapes (constant, bimodal
with a huge gap, heavy-tailed) and check the algebraic laws — merge
associativity/commutativity and dict round-trip — that let shards'
histograms be pooled and shipped in reports.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, StreamingHistogram


def assert_within_relative(estimate, exact, relative_error):
    assert estimate == pytest.approx(exact, rel=relative_error)


# ----------------------------------------------------------------------
# Unit tests: edge cases and the basic contract
# ----------------------------------------------------------------------
def test_empty_histogram_is_all_zero():
    hist = StreamingHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(50) == 0.0
    assert hist.percentile(99.9) == 0.0
    snapshot = hist.snapshot()
    assert snapshot["count"] == 0
    assert snapshot["p999"] == 0.0


def test_single_sample_every_percentile_is_the_sample():
    hist = StreamingHistogram()
    hist.observe(42.0)
    for p in (0, 1, 50, 99, 99.9, 100):
        assert hist.percentile(p) == pytest.approx(42.0, rel=0.01)


def test_zero_values_have_their_own_exact_bucket():
    hist = StreamingHistogram()
    for _ in range(10):
        hist.observe(0.0)
    hist.observe(5.0)
    assert hist.percentile(50) == 0.0
    assert hist.percentile(100) == pytest.approx(5.0, rel=0.01)


def test_negative_values_are_rejected():
    hist = StreamingHistogram()
    with pytest.raises(ValueError):
        hist.observe(-1.0)


def test_percentile_out_of_range_is_rejected():
    hist = StreamingHistogram()
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)


def test_min_max_and_mean_are_exact():
    hist = StreamingHistogram()
    for value in (3.0, 1.0, 4.0, 1.5):
        hist.observe(value)
    assert hist.min == 1.0
    assert hist.max == 4.0
    assert hist.mean == pytest.approx((3.0 + 1.0 + 4.0 + 1.5) / 4)


def test_estimates_clamp_to_observed_min_max():
    hist = StreamingHistogram()
    hist.observe(10.0)
    hist.observe(10.0)
    assert hist.percentile(0) >= hist.min
    assert hist.percentile(100) <= hist.max


def test_merge_with_empty_is_identity():
    hist = StreamingHistogram()
    for value in (1.0, 2.0, 3.0):
        hist.observe(value)
    before = hist.to_dict()
    hist.merge(StreamingHistogram())
    assert hist.to_dict() == before
    empty = StreamingHistogram()
    empty.merge(hist)
    assert empty.to_dict() == before


def test_merge_requires_matching_error_bound():
    coarse = StreamingHistogram(relative_error=0.05)
    fine = StreamingHistogram(relative_error=0.01)
    with pytest.raises(ValueError):
        fine.merge(coarse)


def test_merge_rejects_exact_histogram():
    hist = StreamingHistogram()
    with pytest.raises(TypeError):
        hist.merge(Histogram())


def test_quantiles_key_naming():
    hist = StreamingHistogram()
    hist.observe(1.0)
    keys = hist.quantiles(50, 99, 99.9)
    assert sorted(keys) == ["p50", "p99", "p999"]


def test_constant_memory_under_many_observations():
    hist = StreamingHistogram()
    rng = random.Random(7)
    for _ in range(50_000):
        hist.observe(rng.uniform(0.0001, 1000.0))
    # 0.01 relative error over 7 decades needs ~800 buckets at most.
    assert hist.bucket_count < 1000
    assert hist.count == 50_000


# ----------------------------------------------------------------------
# Property tests: streaming vs exact on adversarial distributions
# ----------------------------------------------------------------------
def _exact_percentile(values, p):
    exact = Histogram()
    for value in values:
        exact.observe(value)
    return exact.percentile(p)


positive_values = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)


@settings(max_examples=100, deadline=None)
@given(st.lists(positive_values, min_size=1, max_size=200))
def test_quantile_error_bound_random(values):
    hist = StreamingHistogram(relative_error=0.01)
    for value in values:
        hist.observe(value)
    for p in (0, 50, 90, 99, 99.9, 100):
        # Documented bound is 1%; allow epsilon for float rounding.
        assert_within_relative(
            hist.percentile(p), _exact_percentile(values, p), 0.0101
        )


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.sampled_from([0.001, 0.0011, 900.0, 1000.0]), min_size=1, max_size=300)
)
def test_quantile_error_bound_bimodal(values):
    """A six-decade gap between modes must not smear the estimates."""
    hist = StreamingHistogram(relative_error=0.01)
    for value in values:
        hist.observe(value)
    for p in (25, 50, 75, 99.9):
        assert_within_relative(
            hist.percentile(p), _exact_percentile(values, p), 0.0101
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_quantile_error_bound_heavy_tailed(seed):
    rng = random.Random(seed)
    values = [rng.paretovariate(1.1) for _ in range(500)]
    hist = StreamingHistogram(relative_error=0.01)
    for value in values:
        hist.observe(value)
    for p in (50, 90, 99, 99.9):
        assert_within_relative(
            hist.percentile(p), _exact_percentile(values, p), 0.0101
        )


@settings(max_examples=50, deadline=None)
@given(st.lists(positive_values | st.just(0.0), min_size=1, max_size=120))
def test_constant_and_zero_mixtures(values):
    hist = StreamingHistogram(relative_error=0.01)
    for value in values:
        hist.observe(value)
    assert hist.count == len(values)
    p100 = hist.percentile(100)
    assert p100 <= hist.max
    assert hist.percentile(0) >= 0.0
    assert_within_relative(p100, max(values), 0.0101)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(positive_values, max_size=60),
    st.lists(positive_values, max_size=60),
    st.lists(positive_values, max_size=60),
)
def test_merge_is_associative_and_commutative(a, b, c):
    def build(values):
        hist = StreamingHistogram(relative_error=0.01)
        for value in values:
            hist.observe(value)
        return hist

    left = build(a).merge(build(b)).merge(build(c))
    right = build(b).merge(build(c)).merge(build(a))
    left_dict, right_dict = left.to_dict(), right.to_dict()
    # ``total`` is a float sum, so merge order may shift its last bits.
    assert left_dict.pop("total") == pytest.approx(
        right_dict.pop("total"), rel=1e-9, abs=1e-12
    )
    assert left_dict == right_dict
    # Merged quantiles match a histogram built from the concatenation.
    pooled = build(a + b + c)
    for p in (50, 99, 99.9):
        assert left.percentile(p) == pooled.percentile(p)


@settings(max_examples=60, deadline=None)
@given(st.lists(positive_values | st.just(0.0), max_size=120))
def test_serialization_round_trip(values):
    hist = StreamingHistogram(relative_error=0.02)
    for value in values:
        hist.observe(value)
    encoded = json.loads(json.dumps(hist.to_dict()))
    clone = StreamingHistogram.from_dict(encoded)
    assert clone.to_dict() == hist.to_dict()
    assert clone.count == hist.count
    for p in (0, 50, 99.9, 100):
        assert clone.percentile(p) == hist.percentile(p)


@settings(max_examples=40, deadline=None)
@given(st.lists(positive_values, min_size=1, max_size=100), st.integers(1, 5))
def test_sharded_merge_matches_single_histogram(values, shards):
    """Splitting a stream across shards and merging loses nothing."""
    whole = StreamingHistogram()
    parts = [StreamingHistogram() for _ in range(shards)]
    for index, value in enumerate(values):
        whole.observe(value)
        parts[index % shards].observe(value)
    merged = StreamingHistogram()
    for part in parts:
        merged.merge(part)
    merged_dict, whole_dict = merged.to_dict(), whole.to_dict()
    assert merged_dict.pop("total") == pytest.approx(
        whole_dict.pop("total"), rel=1e-9, abs=1e-12
    )
    assert merged_dict == whole_dict
