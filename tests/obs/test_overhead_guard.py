"""Zero-overhead-when-disabled guard for the tracing layer.

Two complementary checks over the E2 sends workload
(``benchmarks/test_bench_sends.py``):

1. A deterministic proof: with tracing disabled, *no* tracer code runs.
   We poison ``Tracer.emit`` so any call raises; the workload completing
   means every instrumentation site really is behind the ``tracer is
   None`` check, and the disabled path does zero observability work
   beyond one attribute load per site.

2. A timing bound: the disabled run must be within 5% of a "noop
   tracer" baseline — a tracer whose ``emit`` does nothing, which still
   pays the call/dispatch cost the disabled path is supposed to skip.
   Comparing against strictly-more-work rather than a historical number
   keeps the guard meaningful on any machine.

Marked ``obs_overhead`` and deselected by default (timing tests are
noisy under parallel CI load); CI runs it explicitly with
``pytest -m obs_overhead``.
"""

import time

import pytest

from benchmarks.test_bench_sends import run_calls
from repro.obs import Tracer

pytestmark = pytest.mark.obs_overhead

N_CALLS = 64
TIMING_REPEATS = 5
OVERHEAD_BOUND = 1.05


def test_disabled_tracing_executes_no_tracer_code(monkeypatch):
    def poisoned_emit(self, etype, **fields):
        raise AssertionError(
            "Tracer.emit ran with tracing disabled (event %r)" % etype
        )

    monkeypatch.setattr(Tracer, "emit", poisoned_emit)
    now, _, messages, sends = run_calls("no_result", N_CALLS)
    assert sends == N_CALLS
    assert messages > 0
    assert now > 0.0


class _NoopTracer(Tracer):
    """Pays the dispatch cost the disabled path must avoid."""

    def emit(self, etype, **fields):
        return None


def _timed(handler_name, tracer_factory):
    """Best-of-N wall-clock for the E2 workload, with an optional tracer."""
    from benchmarks.test_bench_sends import build_system

    best = float("inf")
    for _ in range(TIMING_REPEATS):
        system = build_system()
        if tracer_factory is not None:
            tracer_factory(system.env)

        def main(ctx):
            ref = ctx.lookup("server", handler_name)
            for index in range(N_CALLS):
                ref.stream_statement(index)
            yield ref.synch()

        process = system.create_guardian("client").spawn(main)
        start = time.perf_counter()
        system.run(until=process)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracing_is_within_five_percent_of_noop_baseline():
    # Warm up caches/JIT-free interpreter state once per variant.
    _timed("no_result", None)
    _timed("no_result", lambda env: _NoopTracer.install(env, capture=False))

    t_disabled = _timed("no_result", None)
    t_noop = _timed(
        "no_result", lambda env: _NoopTracer.install(env, capture=False)
    )
    # The noop tracer does strictly more work (method dispatch at every
    # instrumentation site), so disabled must not exceed it by >5%.
    assert t_disabled <= t_noop * OVERHEAD_BOUND, (
        "disabled tracing cost %.6fs vs noop-tracer baseline %.6fs"
        % (t_disabled, t_noop)
    )
