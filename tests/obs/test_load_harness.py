"""The open-loop load harness: traffic models, drivers, stepped search.

Runs are scaled far down from the benchmark profiles (a few thousand
agents, a couple of simulated seconds) — these tests pin behavior
(accounting identities, determinism, constant-memory telemetry, the
sustained/collapse verdicts), not absolute performance.
"""

import json
import random

import pytest

from benchmarks.load.arrivals import (
    ParetoArrivals,
    PoissonArrivals,
    ZipfSampler,
    make_arrivals,
)
from benchmarks.load.harness import (
    LOAD_WORKLOADS,
    LoadConfig,
    run_load,
    stepped_search,
)


# ----------------------------------------------------------------------
# Traffic models
# ----------------------------------------------------------------------
def test_poisson_gap_mean_matches_rate():
    rng = random.Random(1)
    arrivals = PoissonArrivals(50.0)
    gaps = [arrivals.gap(rng) for _ in range(20_000)]
    assert sum(gaps) / len(gaps) == pytest.approx(1 / 50.0, rel=0.05)


def test_pareto_gap_mean_matches_rate_with_heavier_tail():
    rng = random.Random(2)
    arrivals = ParetoArrivals(50.0, alpha=2.5)
    gaps = [arrivals.gap(rng) for _ in range(200_000)]
    assert sum(gaps) / len(gaps) == pytest.approx(1 / 50.0, rel=0.1)
    poisson_gaps = [PoissonArrivals(50.0).gap(rng) for _ in range(200_000)]
    assert max(gaps) > max(poisson_gaps)


def test_arrival_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        ParetoArrivals(10.0, alpha=1.0)
    with pytest.raises(ValueError):
        make_arrivals("uniform", 10.0)
    assert make_arrivals("pareto", 10.0).name == "pareto"


def test_zipf_sampler_range_and_skew():
    rng = random.Random(3)
    sampler = ZipfSampler(1000, s=1.1)
    counts = [0] * 1000
    for _ in range(30_000):
        rank = sampler.sample(rng)
        assert 0 <= rank < 1000
        counts[rank] += 1
    # Rank 0 is the hottest; the top decile dwarfs the bottom decile.
    assert counts[0] == max(counts)
    assert sum(counts[:100]) > 10 * sum(counts[900:])


def test_zipf_sampler_covers_small_population():
    rng = random.Random(4)
    sampler = ZipfSampler(3, s=0.5)
    seen = {sampler.sample(rng) for _ in range(500)}
    assert seen == {0, 1, 2}


def test_zipf_sampler_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, s=-0.5)


# ----------------------------------------------------------------------
# One load step
# ----------------------------------------------------------------------
def small_config(**overrides):
    defaults = dict(
        workload="echo",
        n_agents=2_000,
        n_clients=2,
        n_servers=2,
        rate=150.0,
        duration=2.0,
        window=0.5,
        churn_rate=0.05,
        seed=11,
    )
    defaults.update(overrides)
    return LoadConfig(**defaults)


def test_accounting_identity_after_drain():
    result = run_load(small_config())
    assert result["issued"] > 0
    assert result["drained"]
    assert result["inflight_end"] == 0
    assert result["completed"] + result["errors"] == result["issued"]
    assert result["latency"]["count"] == result["issued"]
    assert result["errors"] == 0


def test_run_is_deterministic_for_a_seed():
    first = run_load(small_config())
    second = run_load(small_config())
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    different = run_load(small_config(seed=12))
    assert different["issued"] != first["issued"]


def test_windows_carry_the_top_view_columns():
    result = run_load(small_config())
    assert result["windows"], "expected at least one telemetry window"
    row = result["windows"][0]
    for column in (
        "t0",
        "t1",
        "load.issued_rate",
        "load.completed_rate",
        "load.latency_p50",
        "load.latency_p999",
        "load.inflight_last",
    ):
        assert column in row
    assert result["dropped_windows"] == 0


def test_telemetry_is_constant_memory():
    # The only latency record is the streaming histogram: sparse buckets,
    # not raw samples.
    result = run_load(small_config())
    buckets = result["latency_hist"]["buckets"]
    assert len(buckets) < 500
    assert sum(buckets.values()) + result["latency_hist"]["zero_count"] == (
        result["issued"]
    )


def test_churn_produces_reconnects():
    result = run_load(small_config(n_agents=200, churn_rate=0.5))
    assert result["churn"] > 0
    assert result["reconnects"] > 0


def test_all_workloads_run():
    for name in sorted(LOAD_WORKLOADS):
        result = run_load(small_config(workload=name, rate=80.0))
        assert result["completed"] > 0, name
        assert result["sustained"], name


def test_pareto_arrivals_drive_the_harness():
    result = run_load(small_config(arrival_process="pareto"))
    assert result["completed"] > 0


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        run_load(small_config(workload="nope"))


def test_latency_guard_marks_step_unsustained():
    config = small_config(latency_guard={"p50": 1e-9})
    result = run_load(config)
    assert not result["latency_guard_ok"]
    assert not result["sustained"]
    # Throughput itself was fine; only the guard failed.
    assert result["drained"] and result["errors"] == 0


def test_result_is_json_serializable():
    json.dumps(run_load(small_config()))


# ----------------------------------------------------------------------
# Stepped-rate search
# ----------------------------------------------------------------------
def test_stepped_search_exhausted_ladder():
    entry, steps = stepped_search(small_config(), [60.0, 120.0])
    assert len(steps) == 2
    assert all(step["sustained"] for step in steps)
    assert entry["ladder_exhausted"]
    assert entry["max_sustainable_throughput"] == steps[-1]["achieved_rate"]
    assert entry["offered_rate"] == 120.0
    assert entry["windows"]


def test_stepped_search_stops_at_collapse():
    # A starved NIC (30 KB/s) serves the first rung but collapses far
    # below the second, so the search must stop there and keep the first
    # rung as the reference.  The third rung must never run.
    config = small_config(bandwidth=30_000.0)
    entry, steps = stepped_search(config, [60.0, 1200.0, 120.0])
    assert len(steps) == 2
    assert steps[0]["sustained"] and not steps[1]["sustained"]
    assert not entry["ladder_exhausted"]
    assert entry["max_sustainable_throughput"] == steps[0]["achieved_rate"]


def test_stepped_search_nothing_sustained_reports_first_step():
    config = small_config(latency_guard={"p50": 1e-9})
    entry, steps = stepped_search(config, [60.0, 120.0])
    assert len(steps) == 1
    assert entry["max_sustainable_throughput"] is None
    assert entry["offered_rate"] == 60.0


def test_stepped_search_rejects_empty_ladder():
    with pytest.raises(ValueError):
        stepped_search(small_config(), [])


# ----------------------------------------------------------------------
# The CI gate (run_load --check-against)
# ----------------------------------------------------------------------
def make_gate_report(mode="quick", tp=1000.0, p99=0.02, slo_ok=True):
    from benchmarks.load.run_load import check_against  # noqa: F401

    return {
        "mode": mode,
        "slo": {
            "ok": slo_ok,
            "workloads": {
                "echo": {
                    "checks": [
                        {
                            "check": "latency_p99",
                            "kind": "ceiling",
                            "limit": 0.25,
                            "actual": p99,
                            "ok": slo_ok,
                        }
                    ],
                    "ok": slo_ok,
                }
            },
        },
        "workloads": {
            "echo": {
                "max_sustainable_throughput": tp,
                "latency": {"p99": p99},
            }
        },
    }


def test_gate_passes_identical_reports():
    from benchmarks.load.run_load import check_against

    assert check_against(make_gate_report(), make_gate_report()) == []


def test_gate_refuses_mode_mismatch():
    from benchmarks.load.run_load import check_against

    problems = check_against(make_gate_report(mode="quick"), make_gate_report(mode="full"))
    assert len(problems) == 1 and "mode mismatch" in problems[0]


def test_gate_fails_on_throughput_regression_over_20_percent():
    from benchmarks.load.run_load import check_against

    new = make_gate_report(tp=790.0)  # 21% below the committed 1000
    problems = check_against(new, make_gate_report(tp=1000.0))
    assert any("throughput regressed" in problem for problem in problems)
    # 15% below is within tolerance.
    assert check_against(make_gate_report(tp=850.0), make_gate_report(tp=1000.0)) == []


def test_gate_fails_on_p99_regression_over_20_percent():
    from benchmarks.load.run_load import check_against

    problems = check_against(
        make_gate_report(p99=0.1), make_gate_report(p99=0.02)
    )
    assert any("p99 latency regressed" in problem for problem in problems)


def test_gate_fails_on_slo_breach():
    from benchmarks.load.run_load import check_against

    problems = check_against(make_gate_report(slo_ok=False), make_gate_report())
    assert any("SLO breach" in problem for problem in problems)


def test_gate_fails_on_missing_workload():
    from benchmarks.load.run_load import check_against

    new = make_gate_report()
    del new["workloads"]["echo"]
    problems = check_against(new, make_gate_report())
    assert any("missing" in problem for problem in problems)
