"""Promise lifecycle tracing: creation, resolution, claim latency.

The claim-latency histogram must equal the *simulated* wait of each
claimer (resolution time minus claim time), and ready claims must record
a zero wait — the tracer measures the model, not the wall clock.
"""

from repro.core import Outcome, Promise, Unavailable


def test_claim_latency_matches_simulated_wait(traced_env):
    env = traced_env
    promise = Promise(env, label="measured")

    def resolver():
        yield env.timeout(7.0)
        promise.resolve_normal("value")

    def claimer():
        yield env.timeout(2.0)
        yield promise.claim()  # waits 7.0 - 2.0 = 5.0
        yield env.timeout(3.0)
        yield promise.claim()  # already ready: waits 0.0

    env.process(resolver())
    env.process(claimer())
    env.run()

    waits = [
        event.fields["wait"]
        for event in env.tracer.events_of("promise.claim_latency")
    ]
    assert waits == [5.0, 0.0]
    histogram = env.tracer.metrics.merged_histogram("promise.claim_latency")
    assert histogram.count == 2
    assert histogram.max == 5.0
    assert histogram.min == 0.0


def test_multiple_blocked_claimers_each_record_their_own_wait(traced_env):
    env = traced_env
    promise = Promise(env)

    def claimer(delay):
        yield env.timeout(delay)
        yield promise.claim()

    for delay in (1.0, 4.0, 9.0):
        env.process(claimer(delay))

    def resolver():
        yield env.timeout(10.0)
        promise.resolve_normal(True)

    env.process(resolver())
    env.run()
    waits = sorted(
        event.fields["wait"]
        for event in env.tracer.events_of("promise.claim_latency")
    )
    assert waits == [1.0, 6.0, 9.0]


def test_promise_creation_and_resolution_counters(traced_env):
    env = traced_env
    ok = Promise(env, label="ok")
    bad = Promise(env, label="bad")
    pending = Promise(env, label="pending")
    ok.resolve_normal(1)

    def resolver():
        yield env.timeout(3.0)
        bad.resolve(Outcome.exceptional(Unavailable("down")))

    env.process(resolver())
    env.run()

    metrics = env.tracer.metrics
    assert metrics.total("promise.created") == 3
    assert metrics.counter_value("promise.resolved", status="normal") == 1
    assert metrics.counter_value("promise.resolved", status="unavailable") == 1
    assert env.tracer.summary()["derived"]["promises_outstanding"] == 1

    # Resolution age is measured in simulated time from creation.
    ages = {
        event.fields["promise_id"]: event.fields["age"]
        for event in env.tracer.events_of("promise.resolved")
    }
    assert ages[ok.promise_id] == 0.0
    assert ages[bad.promise_id] == 3.0
    assert pending.promise_id not in ages


def test_claimed_events_distinguish_ready_claims(traced_env):
    env = traced_env
    promise = Promise(env)

    def script():
        claim = promise.claim()  # blocked claim
        promise.resolve_normal(5)
        yield claim
        yield promise.claim()  # ready claim

    env.process(script())
    env.run()
    flags = [
        event.fields["ready"]
        for event in env.tracer.events_of("promise.claimed")
    ]
    assert flags == [False, True]
    metrics = env.tracer.metrics
    assert metrics.counter_value("promise.claims", ready=False) == 1
    assert metrics.counter_value("promise.claims", ready=True) == 1
