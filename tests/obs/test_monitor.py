"""Online invariant monitors: clean runs stay clean, mutations fire.

The interesting half is the mutation tests: each one *injects* a
violation of a transport invariant (duplicate delivery, reordering,
double resolution, premature ready-claim) and asserts the corresponding
monitor raises at that exact moment — proving the monitors would catch a
real transport regression, not just stay quiet on correct runs.
"""

import pytest

from repro.obs import MonitorSuite, MonitorViolation, Tracer
from repro.sim import Environment
from repro.streams.wire import CallEntry
from repro.types import INT, HandlerType

from .test_wire_regression import run_grades_fig31

ECHO = HandlerType(args=[INT], returns=[INT])


def suite_on_fresh_tracer(strict=True):
    env = Environment()
    tracer = Tracer.install(env)
    suite = MonitorSuite.install(tracer, strict=strict)
    return env, tracer, suite


# ----------------------------------------------------------------------
# Clean runs
# ----------------------------------------------------------------------
def test_fig31_run_satisfies_all_invariants():
    tracer = run_grades_fig31(20).tracer
    # The golden workload replayed through the monitors offline: feeding
    # the recorded events back in must produce zero violations.
    env, _tracer, suite = suite_on_fresh_tracer()
    for event in tracer.events:
        suite.observe(event.type, event.time, event.fields)
    assert suite.violations == []
    suite.assert_clean()


def test_traced_system_fixture_attaches_monitors(traced_system):
    system = traced_system()
    assert isinstance(system.tracer.monitors, MonitorSuite)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.05)
        return x

    server.create_handler("echo", ECHO, echo)

    def main(ctx):
        echo_ref = ctx.lookup("server", "echo")
        promises = [echo_ref.stream(index) for index in range(8)]
        echo_ref.flush()
        total = 0
        for promise in promises:
            total += yield promise.claim()
        return total

    process = system.create_guardian("client").spawn(main)
    assert system.run(until=process) == sum(range(8))
    assert system.tracer.monitors.violations == []


# ----------------------------------------------------------------------
# Mutation: duplicate delivery through the real receiver
# ----------------------------------------------------------------------
def test_duplicate_delivery_mutation_raises(traced_system):
    system = traced_system()
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.05)
        return x

    server.create_handler("echo", ECHO, echo)

    def main(ctx):
        result = yield ctx.lookup("server", "echo").call(1)
        return result

    process = system.create_guardian("client").spawn(main)
    assert system.run(until=process) == 1

    # seq=1 was delivered exactly once by the healthy run ...
    [receiver] = server.endpoint._receivers.values()
    assert receiver.expected_seq == 2
    suite = system.tracer.monitors
    assert suite.violations == []

    # ... now force the receiver to deliver it AGAIN, simulating a broken
    # dedup path.  The exactly-once monitor must fire immediately.
    duplicate = CallEntry(1, "echo", "rpc", b"", None)
    with pytest.raises(MonitorViolation) as excinfo:
        receiver._deliver(duplicate)
    violation = excinfo.value
    assert violation.monitor == "exactly-once"
    assert violation.etype == "stream.call_delivered"
    assert violation.fields["seq"] == 1
    assert suite.violations == [violation]
    # A fixture teardown would also have caught it:
    with pytest.raises(MonitorViolation):
        suite.assert_clean()
    # Keep this test green at teardown despite the injected violation.
    suite.violations.clear()


# ----------------------------------------------------------------------
# Mutations through synthetic event streams
# ----------------------------------------------------------------------
def test_out_of_order_delivery_raises():
    env, tracer, suite = suite_on_fresh_tracer()
    tracer.emit("stream.call_delivered", stream="s", incarnation=0, seq=1)
    with pytest.raises(MonitorViolation) as excinfo:
        tracer.emit("stream.call_delivered", stream="s", incarnation=0, seq=3)
    assert excinfo.value.monitor == "fifo-order"
    assert "expected 2" in excinfo.value.message


def test_reordered_delivery_across_streams_is_fine():
    env, tracer, suite = suite_on_fresh_tracer()
    tracer.emit("stream.call_delivered", stream="a", incarnation=0, seq=1)
    tracer.emit("stream.call_delivered", stream="b", incarnation=0, seq=1)
    tracer.emit("stream.call_delivered", stream="a", incarnation=1, seq=1)
    assert suite.violations == []


def test_non_ascending_buffered_serial_raises():
    env, tracer, suite = suite_on_fresh_tracer()
    def buffer(seq):
        tracer.emit(
            "stream.call_buffered",
            stream="s", incarnation=0, seq=seq, kind="stream", buffered=seq,
        )

    buffer(1)
    buffer(2)
    with pytest.raises(MonitorViolation) as excinfo:
        buffer(2)
    assert excinfo.value.monitor == "fifo-order"


def test_promise_resolved_twice_raises():
    env, tracer, suite = suite_on_fresh_tracer()
    tracer.emit("promise.resolved", promise_id=9, status="normal", age=1.0, waiters=0)
    with pytest.raises(MonitorViolation) as excinfo:
        tracer.emit(
            "promise.resolved", promise_id=9, status="normal", age=2.0, waiters=0
        )
    assert excinfo.value.monitor == "promise-lifecycle"
    assert "resolved twice" in excinfo.value.message


def test_claim_ready_before_resolve_raises():
    env, tracer, suite = suite_on_fresh_tracer()
    with pytest.raises(MonitorViolation) as excinfo:
        tracer.emit("promise.claimed", promise_id=4, ready=True)
    assert excinfo.value.monitor == "promise-lifecycle"
    # A blocked claim before resolution is the normal case, not a violation.
    tracer.emit("promise.claimed", promise_id=5, ready=False)
    tracer.emit("promise.resolved", promise_id=5, status="normal", age=0.0, waiters=1)
    tracer.emit("promise.claimed", promise_id=5, ready=True)
    assert suite.violations == [excinfo.value]


def test_non_strict_mode_records_without_raising():
    env, tracer, suite = suite_on_fresh_tracer(strict=False)
    tracer.emit("stream.call_delivered", stream="s", incarnation=0, seq=1)
    tracer.emit("stream.call_delivered", stream="s", incarnation=0, seq=1)
    assert len(suite.violations) == 2  # exactly-once AND fifo-order both fire
    monitors = {violation.monitor for violation in suite.violations}
    assert monitors == {"exactly-once", "fifo-order"}
    with pytest.raises(MonitorViolation):
        suite.assert_clean()


def test_violation_is_an_assertion_error_with_context():
    env, tracer, suite = suite_on_fresh_tracer()
    try:
        tracer.emit("stream.call_delivered", stream="s", incarnation=0, seq=2)
    except AssertionError as exc:  # MonitorViolation subclasses AssertionError
        assert isinstance(exc, MonitorViolation)
        assert exc.time == env.now
        assert exc.fields["seq"] == 2
        assert "fifo-order" in str(exc)
    else:
        pytest.fail("expected a MonitorViolation")


def test_duplicate_packets_on_the_wire_are_not_violations():
    """stream.call_duplicate is the transport *recognizing* a retransmitted
    entry — the benign case; only a second *delivery* is the bug."""
    env, tracer, suite = suite_on_fresh_tracer()
    tracer.emit("stream.call_delivered", stream="s", incarnation=0, seq=1)
    tracer.emit("stream.call_duplicate", stream="s", incarnation=0, seq=1)
    tracer.emit("stream.call_duplicate", stream="s", incarnation=0, seq=1)
    assert suite.violations == []


# ----------------------------------------------------------------------
# Continuation-driven claims (PR 6)
# ----------------------------------------------------------------------
def test_continuation_claim_after_resolve_is_clean():
    env, tracer, suite = suite_on_fresh_tracer()
    tracer.emit("promise.resolved", promise_id=7, status="normal", age=0.5, waiters=0)
    tracer.emit("promise.claimed", promise_id=7, ready=True, via="continuation")
    assert suite.violations == []


def test_born_ready_promise_claim_is_clean():
    """make_fulfilled / make_broken promises never emit promise.resolved;
    their creation event carries resolved=True and counts as the
    resolution (the PR 6 monitor fix)."""
    env, tracer, suite = suite_on_fresh_tracer()
    tracer.emit("promise.created", promise_id=3, label="", resolved=True)
    tracer.emit("promise.claimed", promise_id=3, ready=True, via="continuation")
    assert suite.violations == []
    # ... and a later explicit resolve of that promise is still the bug.
    with pytest.raises(MonitorViolation):
        tracer.emit("promise.resolved", promise_id=3, status="normal", age=0.0, waiters=0)


def test_plain_created_event_grants_nothing():
    env, tracer, suite = suite_on_fresh_tracer()
    tracer.emit("promise.created", promise_id=4, label="")
    with pytest.raises(MonitorViolation) as excinfo:
        tracer.emit("promise.claimed", promise_id=4, ready=True, via="continuation")
    assert excinfo.value.monitor == "promise-lifecycle"


def test_continuation_run_keeps_monitors_clean_end_to_end(traced_env):
    """A real vat-driven consumption run through an installed suite: every
    continuation claim is preceded by its resolution."""
    from repro.core.outcome import Outcome
    from repro.core.promise import Promise

    env = traced_env
    promises = [Promise(env) for _ in range(20)]
    ready = Promise.make_fulfilled(env, "seed")
    consumed = []
    ready.when_resolved(lambda outcome: consumed.append(outcome.results))
    for promise in promises:
        promise.when_fulfilled(lambda value: consumed.append(value))
    for index, promise in enumerate(promises):
        env.call_in(1.0 + index, promise.resolve, Outcome.normal(index))
    env.run()
    assert len(consumed) == 21
    assert env.tracer.monitors.violations == []
