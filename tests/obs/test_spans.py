"""Span reconstruction, critical-path analysis, and Chrome export.

The phase model is exact by construction: the six phase durations of a
complete call are differences of consecutive event timestamps, so they
must sum to the call's end-to-end latency bit-for-bit (well, within float
tolerance).  These tests pin that invariant on the Figure 3-1 golden
workload, check causal nesting (handler → nested call, fork → call), and
validate the Chrome trace-event output shape.
"""

import json

from repro.obs.spans import (
    PHASES,
    aggregate_critical_path,
    build_spans,
    build_trees,
    critical_path,
    format_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import load_jsonl
from repro.types import INT, HandlerType

from .test_wire_regression import run_grades_fig31

ECHO = HandlerType(args=[INT], returns=[INT])

TOLERANCE = 1e-9


def fig31_events():
    return run_grades_fig31(20).tracer.events


# ----------------------------------------------------------------------
# Critical-path golden test (Fig 3-1)
# ----------------------------------------------------------------------
def test_fig31_phases_sum_to_end_to_end():
    spans = build_spans(fig31_events())
    # 20 record_grade calls + 20 print sends, all resolved.
    assert len(spans) == 40
    assert all(span.complete for span in spans)
    for span in spans:
        phases = span.phases()
        assert all(duration is not None for duration in phases.values())
        assert all(duration >= 0 for duration in phases.values())
        assert abs(sum(phases.values()) - span.end_to_end) < TOLERANCE
        # The timeline is monotone.
        assert (
            span.t_buffered
            <= span.t_sent
            <= span.t_delivered
            <= span.t_exec_start
            <= span.t_exec_end
            <= span.t_reply_sent
            <= span.t_resolved
        )


def test_fig31_aggregate_critical_path():
    spans = build_spans(fig31_events())
    report = aggregate_critical_path(spans)
    assert report["calls"] == report["complete_calls"] == 40
    # Phase totals partition the total latency ...
    assert (
        abs(sum(report["phase_totals"].values()) - report["end_to_end_total"])
        < TOLERANCE
    )
    # ... so the fractions sum to 1.
    assert abs(sum(report["phase_fractions"].values()) - 1.0) < TOLERANCE
    assert report["end_to_end_mean"] > 0
    # With latency=5.0 each way, the wire phases dominate short handlers.
    assert report["phase_totals"]["call_on_wire"] > 0
    assert report["phase_totals"]["reply_on_wire"] > 0
    slowest = report["slowest_call"]
    assert slowest["end_to_end"] == max(span.end_to_end for span in spans)
    assert slowest["dominant_phase"] in PHASES


def test_per_call_critical_path_fields():
    span = build_spans(fig31_events())[0]
    detail = critical_path(span)
    assert detail["complete"] is True
    assert set(detail["phases"]) == set(PHASES)
    assert detail["dominant_phase"] == max(
        PHASES, key=lambda phase: detail["phases"][phase]
    )
    # claim_wait is joined from the promise, not part of the phase sum.
    assert detail["claim_wait"] is not None


def test_spans_work_identically_on_a_loaded_trace(tmp_path):
    system = run_grades_fig31(20)
    path = tmp_path / "fig31.jsonl"
    system.export_trace(str(path))
    live = build_spans(system.tracer.events)
    loaded = build_spans(load_jsonl(str(path)))
    assert [(s.stream, s.seq, s.span_id) for s in live] == [
        (s.stream, s.seq, s.span_id) for s in loaded
    ]
    assert [s.phases() for s in live] == [s.phases() for s in loaded]


# ----------------------------------------------------------------------
# Causal nesting
# ----------------------------------------------------------------------
def build_two_tier(traced_system):
    """client → frontend.relay → backend.echo: the relay handler's nested
    call must appear as a child span of the relay call."""
    system = traced_system()
    backend = system.create_guardian("backend")

    def echo(ctx, x):
        yield ctx.compute(0.05)
        return x

    backend.create_handler("echo", ECHO, echo)
    frontend = system.create_guardian("frontend")

    def relay(ctx, x):
        doubled = yield ctx.lookup("backend", "echo").call(x * 2)
        return doubled

    frontend.create_handler("relay", ECHO, relay)
    return system


def test_nested_call_spans_nest_in_the_tree(traced_system):
    system = build_two_tier(traced_system)

    def main(ctx):
        result = yield ctx.lookup("frontend", "relay").call(21)
        return result

    process = system.create_guardian("client").spawn(main)
    assert system.run(until=process) == 42

    roots = build_trees(system.tracer.events)
    assert len(roots) == 1
    root = roots[0]
    assert root.kind == "call"
    assert root.call.port == "relay"
    assert root.parent_span_id == 0
    assert len(root.children) == 1
    child = root.children[0]
    assert child.call.port == "echo"
    assert child.trace_id == root.trace_id
    assert child.parent_span_id == root.span_id
    # The nested call happens while the outer handler executes.
    assert root.call.t_exec_start <= child.call.t_buffered
    assert child.call.t_resolved <= root.call.t_exec_end
    rendered = format_tree(roots)
    assert "relay" in rendered and "echo" in rendered


def test_fork_spans_parent_their_calls(traced_system):
    system = build_two_tier(traced_system)

    def forked(ctx, x):
        result = yield ctx.lookup("backend", "echo").call(x)
        return result

    def main(ctx):
        promise = ctx.fork(forked, 7, label="worker")
        result = yield promise.claim()
        return result

    process = system.create_guardian("client").spawn(main)
    assert system.run(until=process) == 7

    roots = build_trees(system.tracer.events)
    forks = [root for root in roots if root.kind == "fork"]
    assert len(forks) == 1
    fork_node = forks[0]
    assert fork_node.name == "fork worker"
    assert len(fork_node.children) == 1
    call = fork_node.children[0]
    assert call.call.port == "echo"
    assert call.trace_id == fork_node.trace_id
    assert call.parent_span_id == fork_node.span_id


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_chrome_trace_document_shape(tmp_path):
    events = fig31_events()
    document = to_chrome_trace(events)
    assert document["displayTimeUnit"] == "ms"
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
    # 40 complete calls × 6 phases, one process_name per stream.
    assert len(slices) == 40 * len(PHASES)
    assert len(metadata) == 2
    assert all(entry["name"] == "process_name" for entry in metadata)
    for entry in slices:
        assert set(entry) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
        assert entry["cat"] in PHASES
        assert entry["ts"] >= 0 and entry["dur"] >= 0
        assert entry["args"]["span_id"] is not None
    # Slices on one row (pid, tid) never overlap: phases are consecutive.
    rows = {}
    for entry in slices:
        rows.setdefault((entry["pid"], entry["tid"]), []).append(entry)
    for row in rows.values():
        row.sort(key=lambda entry: entry["ts"])
        for before, after in zip(row, row[1:]):
            assert before["ts"] + before["dur"] <= after["ts"] + TOLERANCE

    # write_chrome_trace emits the same document as parseable JSON.
    path = tmp_path / "trace.chrome.json"
    written = write_chrome_trace(events, str(path))
    assert written == len(slices)
    parsed = json.loads(path.read_text())
    assert parsed["traceEvents"] == json.loads(json.dumps(document["traceEvents"]))


def test_incomplete_spans_are_partial_not_wrong():
    """A trace cut off mid-run yields incomplete spans that the aggregate
    excludes instead of miscounting."""
    events = fig31_events()
    # Cut the trace right after the first packet goes on the wire.
    first_packet = next(
        index for index, event in enumerate(events)
        if event.type == "stream.packet_sent"
    )
    spans = build_spans(events[: first_packet + 1])
    assert spans, "calls were buffered before the first packet"
    assert all(not span.complete for span in spans)
    assert all(span.end_to_end is None for span in spans)
    report = aggregate_critical_path(spans)
    assert report["complete_calls"] == 0
    assert report["slowest_call"] is None


def test_aggregate_critical_path_tail_percentiles():
    spans = build_spans(fig31_events())
    report = aggregate_critical_path(spans)
    tails = report["end_to_end_percentiles"]
    assert set(tails) == {"p50", "p99", "p999"}
    from repro.obs import Histogram

    exact = Histogram()
    for span in spans:
        exact.observe(span.end_to_end)
    assert tails["p50"] == exact.percentile(50)
    assert tails["p999"] == exact.percentile(99.9)
    assert tails["p50"] <= tails["p99"] <= tails["p999"] <= exact.max
    phase_tails = report["phase_percentiles"]
    assert set(phase_tails) == set(PHASES)
    for phase in PHASES:
        assert set(phase_tails[phase]) == {"p50", "p99", "p999"}
        assert phase_tails[phase]["p50"] <= phase_tails[phase]["p999"]


def test_aggregate_critical_path_no_complete_calls_has_null_tails():
    report = aggregate_critical_path([])
    assert report["end_to_end_percentiles"] is None
    assert report["phase_percentiles"] is None
