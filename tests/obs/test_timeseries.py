"""WindowedCollector: per-window counters, histograms, gauges, rows."""

import json

import pytest

from repro.obs import StreamingHistogram, WindowedCollector


def test_counters_bucket_by_window_and_report_rates():
    collector = WindowedCollector(window=1.0)
    collector.inc("reqs", t=0.1)
    collector.inc("reqs", t=0.9)
    collector.inc("reqs", t=1.5)
    rows = collector.rows()
    assert len(rows) == 2
    assert rows[0]["t0"] == 0.0 and rows[0]["t1"] == 1.0
    assert rows[0]["reqs"] == 2
    assert rows[0]["reqs_rate"] == 2.0
    assert rows[1]["reqs"] == 1


def test_rate_scales_by_window_width():
    collector = WindowedCollector(window=0.5)
    for _ in range(3):
        collector.inc("reqs", t=0.2)
    assert collector.rows()[0]["reqs_rate"] == 6.0


def test_clock_supplies_default_time():
    now = {"t": 0.0}
    collector = WindowedCollector(window=1.0, clock=lambda: now["t"])
    collector.inc("reqs")
    now["t"] = 2.5
    collector.inc("reqs")
    rows = collector.rows()
    assert [row["t0"] for row in rows] == [0.0, 2.0]


def test_histogram_rows_carry_tail_quantiles():
    collector = WindowedCollector(window=1.0)
    for value in (0.01, 0.02, 0.03):
        collector.observe("lat", value, t=0.5)
    row = collector.rows()[0]
    assert row["lat_count"] == 3
    assert row["lat_mean"] == pytest.approx(0.02, rel=0.02)
    assert row["lat_p50"] == pytest.approx(0.02, rel=0.02)
    assert row["lat_p999"] == pytest.approx(0.03, rel=0.02)
    assert row["lat_max"] == pytest.approx(0.03, rel=1e-9)


def test_gauges_track_mean_min_max_last():
    collector = WindowedCollector(window=1.0)
    for value in (5.0, 1.0, 3.0):
        collector.gauge("inflight", value, t=0.5)
    row = collector.rows()[0]
    assert row["inflight_mean"] == pytest.approx(3.0)
    assert row["inflight_min"] == 1.0
    assert row["inflight_max"] == 5.0
    assert row["inflight_last"] == 3.0


def test_merged_histogram_pools_all_windows():
    collector = WindowedCollector(window=1.0)
    collector.observe("lat", 1.0, t=0.5)
    collector.observe("lat", 100.0, t=5.5)
    merged = collector.merged_histogram("lat")
    assert isinstance(merged, StreamingHistogram)
    assert merged.count == 2
    assert merged.max == 100.0


def test_counter_series_is_zero_filled_per_existing_window():
    collector = WindowedCollector(window=1.0)
    collector.inc("a", t=0.5)
    collector.inc("b", t=2.5)
    series = collector.counter_series("a")
    assert series == [(0.0, 1), (2.0, 0)]


def test_max_windows_ring_evicts_and_counts():
    collector = WindowedCollector(window=1.0, max_windows=2)
    for t in (0.5, 1.5, 2.5, 3.5):
        collector.inc("reqs", t=t)
    rows = collector.rows()
    assert len(rows) == 2
    assert [row["t0"] for row in rows] == [2.0, 3.0]
    assert collector.dropped_windows == 2


def test_rows_are_json_serializable():
    collector = WindowedCollector(window=0.5)
    collector.inc("reqs", t=0.1)
    collector.observe("lat", 0.01, t=0.1)
    collector.gauge("inflight", 2, t=0.1)
    json.dumps(collector.rows())


def test_round_trip_to_dict():
    collector = WindowedCollector(window=0.5)
    collector.inc("reqs", t=0.1)
    collector.observe("lat", 0.25, t=0.6)
    clone = WindowedCollector.from_dict(
        json.loads(json.dumps(collector.to_dict()))
    )
    assert clone.rows() == collector.rows()
    assert clone.window == collector.window


def test_negative_window_rejected():
    with pytest.raises(ValueError):
        WindowedCollector(window=0.0)
