"""SLO spec validation/evaluation and load-report rendering."""

import json

import pytest

from repro.obs import SloSpec, evaluate_slo
from repro.obs.slo import (
    load_report,
    render_report,
    render_top_frame,
    top_frames,
)


def make_summary(p50=0.01, p99=0.02, p999=0.03, throughput=500.0):
    return {
        "latency": {"p50": p50, "p99": p99, "p999": p999, "max": p999},
        "max_sustainable_throughput": throughput,
    }


SPEC = {
    "echo": {
        "latency": {"p50": 0.05, "p99": 0.25, "p999": 0.5},
        "throughput_floor": 100.0,
    }
}


def test_spec_rejects_unknown_keys():
    with pytest.raises(ValueError):
        SloSpec({"echo": {"latency": {}, "banana": 1}})
    with pytest.raises(ValueError):
        SloSpec({"echo": {"latency": {"p12": 0.5}}})


def test_default_spec_is_valid_and_lists_workloads():
    spec = SloSpec()
    assert set(spec.workloads()) >= {"echo", "pipeline", "kv"}


def test_passing_workload():
    verdict = SloSpec(SPEC).evaluate("echo", make_summary())
    assert verdict["ok"]
    assert {check["check"] for check in verdict["checks"]} == {
        "latency_p50",
        "latency_p99",
        "latency_p999",
        "max_sustainable_throughput",
    }


def test_latency_ceiling_breach():
    verdict = SloSpec(SPEC).evaluate("echo", make_summary(p999=0.7))
    assert not verdict["ok"]
    failed = [check for check in verdict["checks"] if not check["ok"]]
    assert [check["check"] for check in failed] == ["latency_p999"]
    assert failed[0]["kind"] == "ceiling"


def test_throughput_floor_breach_and_missing_value():
    spec = SloSpec(SPEC)
    assert not spec.evaluate("echo", make_summary(throughput=50.0))["ok"]
    assert not spec.evaluate("echo", make_summary(throughput=None))["ok"]


def test_unspecced_workload_passes_vacuously():
    verdict = SloSpec(SPEC).evaluate("mystery", make_summary())
    assert verdict["ok"] and verdict["checks"] == []


def test_evaluate_slo_overall_verdict_is_the_and():
    spec = SloSpec(SPEC)
    result = evaluate_slo(
        spec, {"echo": make_summary(), "other": make_summary()}
    )
    assert result["ok"]
    result = evaluate_slo(spec, {"echo": make_summary(p50=1.0)})
    assert not result["ok"]


def test_spec_round_trip_through_file(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps(SPEC))
    spec = SloSpec.from_file(str(path))
    assert spec.to_dict() == SPEC


# ----------------------------------------------------------------------
# Report loading and rendering
# ----------------------------------------------------------------------
def make_report():
    window = {
        "t0": 0.0,
        "t1": 0.5,
        "load.completed_rate": 100.0,
        "load.issued_rate": 110.0,
        "load.inflight_last": 4,
        "load.inflight_max": 6,
        "load.latency_p50": 0.01,
        "load.latency_p99": 0.02,
        "load.latency_p999": 0.03,
        "load.latency_max": 0.04,
        "load.errors": 0,
        "load.reconnects": 1,
        "load.churn": 2,
    }
    summary = make_summary()
    entry = dict(summary)
    entry.update(
        {
            "requests": 400,
            "errors": 0,
            "reconnects": 1,
            "windows": [window, dict(window, t0=0.5, t1=1.0)],
            "steps": [
                {
                    "offered_rate": 100.0,
                    "achieved_rate": 101.0,
                    "p99": 0.02,
                    "sustained": True,
                },
                {
                    "offered_rate": 200.0,
                    "achieved_rate": 130.0,
                    "p99": 0.9,
                    "sustained": False,
                },
            ],
        }
    )
    spec = SloSpec(SPEC)
    verdicts = evaluate_slo(spec, {"echo": entry})
    entry["slo"] = verdicts["workloads"]["echo"]
    return {
        "pr": 8,
        "mode": "quick",
        "agents": 1000,
        "workloads": {"echo": entry},
        "slo": verdicts,
    }


def test_load_report_requires_workloads_key(tmp_path):
    path = tmp_path / "not_a_report.json"
    path.write_text("{}")
    with pytest.raises(ValueError):
        load_report(str(path))
    good = tmp_path / "report.json"
    good.write_text(json.dumps(make_report()))
    assert load_report(str(good))["pr"] == 8


def test_render_report_mentions_the_essentials():
    text = render_report(make_report())
    assert "workload echo" in text
    assert "p999" in text
    assert "COLLAPSED" in text
    assert "sustained" in text
    assert "overall SLO verdict: ok" in text


def test_render_report_marks_breaches():
    report = make_report()
    entry = report["workloads"]["echo"]
    entry["latency"]["p999"] = 9.0
    spec = SloSpec(SPEC)
    verdicts = evaluate_slo(spec, {"echo": entry})
    entry["slo"] = verdicts["workloads"]["echo"]
    report["slo"] = verdicts
    text = render_report(report)
    assert "BREACHED" in text
    assert "FAIL" in text


def test_top_frames_render_each_window():
    report = make_report()
    frames = list(top_frames(report, "echo"))
    assert len(frames) == 2
    assert "window 1/2" in frames[0]
    assert "window 2/2" in frames[1]
    assert "in-flight" in frames[0]
    assert "p999" in frames[0]


def test_top_frames_unknown_workload():
    with pytest.raises(KeyError):
        list(top_frames(make_report(), "nope"))


def test_top_frame_handles_missing_columns():
    # A sparse row (window with no completions) must render, not crash.
    rows = [{"t0": 0.0, "t1": 0.5}]
    frame = render_top_frame("echo", rows, 0)
    assert "window 1/1" in frame
