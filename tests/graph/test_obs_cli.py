"""``python -m repro.obs critical-path`` per-shard graph breakdown, e2e.

Runs a real sharded graph with tracing on, exports the JSONL trace, and
drives the CLI through :func:`repro.obs.__main__.main` exactly as the
shell entry point would — pinning the per-shard table that PR 10 adds
and that non-graph traces must not grow.
"""

import pytest

from repro.graph import GraphBuilder
from repro.obs.__main__ import main

from ..conftest import run_client
from .helpers import build_graph_system

pytestmark = pytest.mark.graph


@pytest.fixture(scope="module")
def graph_trace(tmp_path_factory):
    system, runtime = build_graph_system(tracing=True)
    router = runtime.router
    static_key = 1
    value = next(
        v
        for v in range(1, 50)
        if router.shard_index(v) != router.shard_index(static_key)
    )

    def main_proc(ctx):
        g = GraphBuilder()
        a = g.source("t.add", captures=("alpha", 2), sched_key=1).emit("a")
        b = a.then("t.scale", captures=(3,), sched_key=2).emit("b")
        c = g.source("t.add", captures=("beta", 5), sched_key=3).emit("c")
        g.collect("t.sum", inputs=[b, c], sched_key=4).emit("sum")
        # One migrating chain so the migrated column is non-zero.
        g.source("t.add", captures=("m", value), sched_key=static_key).then(
            "t.mark"
        ).emit("marked")
        promises = runtime.submit(ctx, g)
        yield ctx.sleep(40.0)
        assert all(p.ready() for p in promises.values())
        return None

    run_client(system, main_proc)
    path = tmp_path_factory.mktemp("trace") / "graph.jsonl"
    system.export_trace(str(path))
    return str(path)


def test_critical_path_shows_per_shard_table(graph_trace, capsys):
    main(["critical-path", graph_trace])
    out = capsys.readouterr().out
    assert "graph shards (routine executions grouped by shard):" in out
    shard_rows = [
        line
        for line in out.splitlines()
        if line.split() and line.split()[0].startswith("shard") and line.split()[0] != "shard"
    ]
    # Shards only appear once they execute routines or ship frames; at
    # least two must show up for this cross-shard DAG.
    assert len(shard_rows) >= 2
    header = next(
        line for line in out.splitlines() if "routines" in line and "migrated" in line
    )
    for column in ("routines", "migrated", "busy", "frames", "units"):
        assert column in header
    routines = migrated = 0
    for row in shard_rows:
        parts = row.split()
        routines += int(parts[1])
        migrated += int(parts[2])
    assert routines == 6  # every DAG node ran exactly once
    assert migrated == 1  # t.mark moved to its value's owner


def test_non_graph_trace_has_no_shard_table(tmp_path, capsys):
    # A trace from a world that never touched repro.graph must render
    # exactly as before PR 10: no graph shards section.
    from ..obs.test_wire_regression import run_grades_fig31

    system = run_grades_fig31(5)
    path = tmp_path / "fig31.jsonl"
    system.export_trace(str(path))
    assert main(["critical-path", str(path)]) == 0
    out = capsys.readouterr().out
    assert "graph shards" not in out
    assert "slowest call:" in out
