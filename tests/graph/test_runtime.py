"""GraphRuntime end to end: placement, batching, migration, give-up."""

import pytest

from repro.graph import GraphBuilder, GraphError

from ..conftest import run_client
from .helpers import build_graph_system

pytestmark = pytest.mark.graph

SETTLE = 40.0  # sim seconds; far beyond any propagation in these worlds


def _chain_and_join(runtime):
    """Two cross-shard chains joined by a collector, with pinned keys."""
    g = GraphBuilder()
    a = g.source("t.add", captures=("alpha", 2), sched_key=1).emit("a")
    b = a.then("t.scale", captures=(3,), sched_key=2).emit("b")
    c = g.source("t.add", captures=("beta", 5), sched_key=3).emit("c")
    g.collect("t.sum", inputs=[b, c], sched_key=4).emit("sum")
    return g


EXPECTED = {"a": (2,), "b": (6,), "c": (5,), "sum": (11,)}


def _submit_driver(runtime, batching):
    def main(ctx):
        promises = runtime.submit(ctx, _chain_and_join(runtime), batching=batching)
        assert set(promises) == set(EXPECTED)
        assert runtime.pending_count() == len(EXPECTED)
        yield ctx.sleep(SETTLE)
        results = {}
        for tag, promise in promises.items():
            assert promise.ready(), "promise %r never resolved" % (tag,)
            outcome = promise.outcome()
            assert outcome.is_normal
            results[tag] = outcome.results
        assert runtime.pending_count() == 0
        return results

    return main


@pytest.mark.parametrize("batching", [True, False])
def test_submit_resolves_every_emit(batching):
    system, runtime = build_graph_system()
    assert run_client(system, _submit_driver(runtime, batching)) == EXPECTED


def test_batching_sends_fewer_wire_messages():
    counts = {}
    for batching in (True, False):
        system, runtime = build_graph_system()
        run_client(system, _submit_driver(runtime, batching))
        counts[batching] = system.network.stats.messages_sent
    assert counts[True] < counts[False]


def test_rpc_baseline_computes_the_same_results():
    system, runtime = build_graph_system()

    def main(ctx):
        results = yield from runtime.run_rpc(ctx, _chain_and_join(runtime))
        return results

    assert run_client(system, main) == EXPECTED


def test_rpc_baseline_is_slower_than_batched_submit():
    # The engine's perf claim in miniature: per-edge RPC pays a blocking
    # round trip per DAG edge, the sharded engine pipelines the whole
    # DAG.  (The wire-message gap only opens at scale — graph_bench pins
    # that; here we pin latency.)
    system, runtime = build_graph_system()

    def rpc_main(ctx):
        start = ctx.now
        yield from runtime.run_rpc(ctx, _chain_and_join(runtime))
        return ctx.now - start

    rpc_elapsed = run_client(system, rpc_main)

    system, runtime = build_graph_system()

    def submit_main(ctx):
        start = ctx.now
        promises = runtime.submit(ctx, _chain_and_join(runtime), batching=True)
        for promise in promises.values():
            yield promise.claim()
        return ctx.now - start

    submit_elapsed = run_client(system, submit_main)
    assert submit_elapsed < rpc_elapsed


def test_node_func_migrates_to_the_value_owner():
    # t.mark reroutes by its actual input value.  Pick a value whose
    # owner shard differs from the static key's shard, and assert the
    # side effect lands on the owner.
    system, runtime = build_graph_system()
    router = runtime.router
    static_key = 1
    value = next(
        v
        for v in range(1, 50)
        if router.shard_index(v) != router.shard_index(static_key)
    )

    def main(ctx):
        g = GraphBuilder()
        src = g.source("t.add", captures=("m", value), sched_key=static_key)
        src.then("t.mark").emit("marked")
        promises = runtime.submit(ctx, g)
        yield ctx.sleep(SETTLE)
        return promises["marked"].outcome().results

    assert run_client(system, main) == (value,)
    owner = system.guardians[router.shard_name(value)]
    static = system.guardians[router.shard_name(static_key)]
    assert owner.state.get("hits") == [value]
    assert "hits" not in static.state  # it really moved, not ran twice


def test_abandon_breaks_pending_promises_as_unavailable():
    system, runtime = build_graph_system()

    def main(ctx):
        g = GraphBuilder()
        g.source("t.add", captures=("k", 1), sched_key=0).emit("a")
        promises = runtime.submit(ctx, g)
        # Give up before any result can arrive (no sim time has passed).
        assert runtime.abandon("gave up for the test") == 1
        assert runtime.pending_count() == 0
        outcome = promises["a"].outcome()
        assert not outcome.is_normal
        assert outcome.exception.condition == "unavailable"
        # The late result frame finds nothing pending and is dropped.
        yield ctx.sleep(SETTLE)
        return "done"

    assert run_client(system, main) == "done"


def test_duplicate_emit_tags_are_rejected():
    system, runtime = build_graph_system()

    def main(ctx):
        g = GraphBuilder()
        g.source("t.add", captures=("x", 1), sched_key=0).emit("same")
        g.source("t.add", captures=("y", 1), sched_key=1).emit("same")
        with pytest.raises(GraphError):
            runtime.submit(ctx, g)
        yield ctx.sleep(0)
        return "rejected"

    assert run_client(system, main) == "rejected"
