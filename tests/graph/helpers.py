"""Shared routines and system builder for the graph test suite.

Importing this module registers a small family of ``t.*`` routines in
the graph routine registry (latest registration wins, so re-imports are
harmless) and provides :func:`build_graph_system` — the three-shard
world every end-to-end test runs against.
"""

from repro.entities import ArgusSystem
from repro.graph import GraphRuntime, register_routine
from repro.types import INT, STRING


def _t_add(state, captures, inputs):
    key, delta = captures
    data = state.setdefault("data", {})
    data[key] = data.get(key, 0) + delta
    return (data[key],)


def _t_scale(state, captures, inputs):
    (factor,) = captures
    (value,) = inputs
    return (value * factor,)


def _t_sum(state, captures, inputs):
    return (sum(values[0] for values in inputs),)


def _t_mark(state, captures, inputs):
    (value,) = inputs
    state.setdefault("hits", []).append(value)
    return (value,)


register_routine(
    "t.add", _t_add, capture_types=(STRING, INT), output_types=(INT,), cost=0.05
)
register_routine(
    "t.scale",
    _t_scale,
    capture_types=(INT,),
    input_types=(INT,),
    output_types=(INT,),
    cost=0.05,
)
register_routine("t.sum", _t_sum, input_types=(INT,), output_types=(INT,), cost=0.05)
# ``t.mark`` reroutes by its *actual* input value: the migration routine.
register_routine(
    "t.mark",
    _t_mark,
    input_types=(INT,),
    output_types=(INT,),
    node_func=lambda captures, inputs: inputs[0],
    cost=0.05,
)


def build_graph_system(n_shards=3, tracing=False):
    """A fresh system with ``n_shards`` shard guardians plus the client
    origin, all wired into one :class:`GraphRuntime`."""
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, tracing=tracing)
    names = ["shard%d" % i for i in range(n_shards)]
    runtime = GraphRuntime(system, names, origin="client")
    for name in names:
        runtime.install_shard(system.create_guardian(name))
    runtime.install_origin(system.create_guardian("client"))
    return system, runtime
