"""GraphBuilder: typed edges, collectors, and the freeze to routine trees."""

import pytest

from repro.graph import FLAG_COLLECTOR, FLAG_EMIT, GraphBuilder, GraphError

from . import helpers  # noqa: F401  (registers the t.* routines)

pytestmark = pytest.mark.graph


def test_then_checks_the_type_row():
    g = GraphBuilder()
    a = g.source("t.add", captures=("k", 1), sched_key=0)
    b = a.then("t.scale", captures=(2,))
    assert b.sched_key == a.sched_key  # inherited placement
    with pytest.raises(GraphError):
        a.then("t.add", captures=("k", 1))  # t.add takes no inputs


def test_source_must_not_declare_inputs():
    with pytest.raises(GraphError):
        GraphBuilder().source("t.scale", captures=(2,))


def test_capture_arity_is_checked():
    with pytest.raises(GraphError):
        GraphBuilder().source("t.add", captures=("k",))


def test_collector_arity_and_ownership():
    g = GraphBuilder()
    a = g.source("t.add", captures=("a", 1))
    b = g.source("t.add", captures=("b", 1))
    with pytest.raises(GraphError):
        g.collect("t.sum", inputs=[a])  # a join needs two inputs
    other = GraphBuilder()
    c = other.source("t.add", captures=("c", 1))
    with pytest.raises(GraphError):
        g.collect("t.sum", inputs=[a, c])  # c belongs to another builder
    s = g.collect("t.sum", inputs=[a, b], sched_key=7)
    assert s.n_inputs == 2


def test_empty_graph_does_not_compile():
    with pytest.raises(GraphError):
        GraphBuilder().compile()


def test_leaves_auto_emit_with_default_tags():
    g = GraphBuilder()
    a = g.source("t.add", captures=("k", 1), sched_key=3)
    a.then("t.scale", captures=(2,))  # leaf, no explicit emit
    roots, emits = g.compile()
    assert len(roots) == 1
    tags = {tag for _id, tag, _spec in emits}
    assert tags == {"t.scale#1"}  # "<name>#<node_id>" default
    (root,) = roots
    assert not root.wants_emit
    ((slot, child),) = root.children
    assert slot == 0 and child.wants_emit and child.flags & FLAG_EMIT


def test_fan_out_and_explicit_tags():
    g = GraphBuilder()
    a = g.source("t.add", captures=("k", 1), sched_key=0).emit("root")
    a.then("t.scale", captures=(2,)).emit("x2")
    a.then("t.scale", captures=(3,), sched_key=9).emit("x3")
    roots, emits = g.compile()
    assert [tag for _id, tag, _spec in emits] == ["root", "x2", "x3"]
    (root,) = roots
    assert len(root.children) == 2
    assert {child.sched_key for _slot, child in root.children} == {0, 9}


def test_shared_collector_is_duplicated_under_each_parent():
    g = GraphBuilder()
    a = g.source("t.add", captures=("a", 1), sched_key=1)
    b = g.source("t.add", captures=("b", 1), sched_key=2)
    s = g.collect("t.sum", inputs=[a, b], sched_key=5).emit("sum")
    roots, _emits = g.compile()
    assert len(roots) == 2  # the collector is not a root
    copies = [child for root in roots for _slot, child in root.children]
    assert len(copies) == 2
    assert copies[0] is copies[1]  # one frozen node, shared under both
    assert copies[0].node_id == s.node_id
    assert copies[0].flags & FLAG_COLLECTOR
    slots = sorted(slot for root in roots for slot, _child in root.children)
    assert slots == [0, 1]  # each parent feeds its own input slot
