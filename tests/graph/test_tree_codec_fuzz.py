"""Seeded fuzz suite for the flat routine-tree codec.

The graph twin of ``tests/encoding/test_codec_fuzz.py``, with the same
three properties over randomly generated (but always type-correct)
routine trees and frames:

1. **round trip** — decoding the encoding yields an equal tree / frame;
2. **decode totality** — truncating the buffer at *every* prefix length
   raises :class:`DecodeError` and nothing else;
3. **corruption totality** — flipping any single byte either still
   decodes or raises :class:`DecodeError` — never ``struct.error``,
   ``IndexError``, ``KeyError`` or ``UnicodeDecodeError``.

Deterministic by construction: one ``random.Random`` seeded per test.
"""

import random

import pytest

import repro.graph.codec as codec_module
from repro.encoding import DecodeError
from repro.graph.codec import (
    FLAG_COLLECTOR,
    FLAG_EMIT,
    FRAME_BATCHING,
    TreeNode,
    decode_batch_frame,
    decode_result_frame,
    decode_tree,
    decode_unit_frame,
    encode_batch_frame,
    encode_result_frame,
    encode_tree,
    encode_unit_frame,
    register_routine,
    routine,
)
from repro.types import BOOL, CHAR, INT, REAL, STRING, ArrayOf, RecordOf

pytestmark = pytest.mark.graph

SEED = 19880207  # same era pin as the transmit fuzz suite

_CHARS = "ab\n\x00 é字𐍈xyz0123456789"

R1 = (INT,)
R2 = (STRING, INT)
R3 = (ArrayOf(INT),)
R4 = (REAL, BOOL)


def _nop(state, captures, inputs):
    return ()


#: name -> (capture row, input row, output row).  Every output row has at
#: least one routine consuming it, so random chains always extend.
ROUTINES = {
    "fz.src1": ((STRING,), (), R1),
    "fz.src2": ((RecordOf({"xs": ArrayOf(INT), "who": STRING}),), (), R2),
    "fz.chain": ((), R1, R1),
    "fz.widen": ((INT,), R1, R2),
    "fz.pack": ((STRING, ArrayOf(INT)), R2, R3),
    "fz.fold": ((RecordOf({"a": INT, "b": STRING}),), R3, R1),
    "fz.split": ((), R1, R4),
    "fz.norm": ((BOOL, REAL, CHAR), R4, R1),
}
for _name, (_caps, _ins, _outs) in ROUTINES.items():
    register_routine(
        _name, _nop, capture_types=_caps, input_types=_ins, output_types=_outs
    )

#: input row -> routine names that consume it.
_CONSUMERS = {}
for _name, (_caps, _ins, _outs) in ROUTINES.items():
    _CONSUMERS.setdefault(_ins, []).append(_name)


def _value_for(tp, rng, depth=0):
    if tp is INT:
        return rng.choice((0, 1, -1, rng.randrange(-(2**63), 2**63)))
    if tp is REAL:
        return rng.choice((0.0, -1.5, 1e300, rng.uniform(-1e6, 1e6)))
    if tp is BOOL:
        return rng.random() < 0.5
    if tp is CHAR:
        return rng.choice(_CHARS)
    if tp is STRING:
        return "".join(rng.choice(_CHARS) for _ in range(rng.randrange(0, 12)))
    if isinstance(tp, ArrayOf):
        count = rng.randrange(0, 3 if depth >= 2 else 5)
        return [_value_for(tp.element, rng, depth + 1) for _ in range(count)]
    if isinstance(tp, RecordOf):
        return {name: _value_for(field, rng, depth + 1) for name, field in tp.fields}
    raise AssertionError("no generator for %r" % (tp,))


def _row_values(row, rng):
    return tuple(_value_for(tp, rng) for tp in row)


def _random_tree(rng, name=None, depth=0, next_id=None):
    """A random type-correct tree rooted at *name* (or a random source)."""
    if next_id is None:
        next_id = iter(range(10_000))
    if name is None:
        name = rng.choice(("fz.src1", "fz.src2"))
    spec = routine(name)
    collector = len(spec.input_types) > 0 and rng.random() < 0.25
    if collector:
        flags = FLAG_COLLECTOR
        n_inputs = rng.randrange(2, 5)
    else:
        flags = 0
        n_inputs = 0 if not spec.input_types else 1
    if rng.random() < 0.4:
        flags |= FLAG_EMIT
    children = []
    if depth < 3:
        for _ in range(rng.randrange(0, 3)):
            child_name = rng.choice(_CONSUMERS[spec.output_types])
            child = _random_tree(rng, child_name, depth + 1, next_id)
            children.append((rng.randrange(max(1, child.n_inputs)), child))
    return TreeNode(
        spec,
        next(next_id),
        rng.randrange(-(2**32), 2**32),
        flags,
        n_inputs,
        _row_values(spec.capture_types, rng),
        tuple(children),
    )


def _random_units(rng, count):
    units = []
    for _ in range(count):
        node = _random_tree(rng)
        units.append((rng.randrange(max(1, node.n_inputs)), node,
                      _row_values(node.spec.input_types, rng)))
    return units


def _assert_decode_total(decode, data):
    for cut in range(len(data)):
        with pytest.raises(DecodeError):
            decode(data[:cut])
    for index in range(len(data)):
        corrupt = bytearray(data)
        corrupt[index] ^= 0xFF
        try:
            decode(bytes(corrupt))
        except DecodeError:
            pass


def test_tree_round_trip():
    rng = random.Random(SEED)
    for _ in range(100):
        tree = _random_tree(rng)
        out = bytearray()
        encode_tree(tree, out)
        decoded, offset = decode_tree(bytes(out), 0)
        assert offset == len(out)
        assert decoded == tree
        decoded_mv, _ = decode_tree(memoryview(bytes(out)), 0)
        assert decoded_mv == tree


def test_batch_frame_round_trip_and_totality():
    rng = random.Random(SEED + 1)
    for trial in range(20):
        units = _random_units(rng, rng.randrange(1, 5))
        flags = FRAME_BATCHING if trial % 2 else 0
        frame = encode_batch_frame(7, "origin-g", trial, flags, units)
        graph_id, origin, epoch, got_flags, got = decode_batch_frame(frame)
        assert (graph_id, origin, epoch, got_flags) == (7, "origin-g", trial, flags)
        assert got == units
        assert decode_batch_frame(memoryview(frame)) == (
            7, "origin-g", trial, flags, units,
        )
    _assert_decode_total(decode_batch_frame, frame)


def test_unit_frame_round_trip_and_totality():
    rng = random.Random(SEED + 2)
    for _ in range(20):
        ((slot, node, values),) = _random_units(rng, 1)
        frame = encode_unit_frame(3, "cl", slot, node, values)
        assert decode_unit_frame(frame) == (3, "cl", slot, node, values)
    _assert_decode_total(decode_unit_frame, frame)


def test_result_frame_round_trip_and_totality():
    rng = random.Random(SEED + 3)
    for _ in range(20):
        results = []
        for index in range(rng.randrange(1, 5)):
            name = rng.choice(sorted(ROUTINES))
            outputs = _row_values(routine(name).output_types, rng)
            results.append((index, name, outputs))
        frame = encode_result_frame(5, results)
        assert decode_result_frame(frame) == (5, results)
    _assert_decode_total(decode_result_frame, frame)


def test_tree_truncation_every_prefix():
    # The loops above only sweep the last buffer; pin a fresh sweep on a
    # tree that exercises every routine family.
    rng = random.Random(SEED + 4)
    for name in sorted(ROUTINES):
        tree = _random_tree(rng, name)
        out = bytearray()
        encode_tree(tree, out)
        data = bytes(out)
        for cut in range(len(data)):
            with pytest.raises(DecodeError):
                decode_tree(data[:cut], 0)


def test_deep_tree_is_rejected_not_recursed():
    # A 70-deep chain encodes fine but must hit the depth guard on
    # decode, never RecursionError.  fz.chain consumes and produces R1,
    # so it nests under itself indefinitely.
    chain = TreeNode(routine("fz.chain"), 0, 0, 0, 1, ())
    for serial in range(70):
        chain = TreeNode(
            routine("fz.chain"), 1 + serial, 0, 0, 1, (), ((0, chain),)
        )
    out = bytearray()
    encode_tree(chain, out)
    with pytest.raises(DecodeError):
        decode_tree(bytes(out), 0)


def test_unknown_routine_is_a_decode_error():
    register_routine("fz.ephemeral", _nop, output_types=(INT,))
    tree = TreeNode(routine("fz.ephemeral"), 1, 0, 0, 0, ())
    out = bytearray()
    encode_tree(tree, out)
    codec_module._REGISTRY.pop("fz.ephemeral")
    with pytest.raises(DecodeError):
        decode_tree(bytes(out), 0)


def test_bad_flags_and_arity_are_decode_errors():
    tree = TreeNode(routine("fz.src1"), 1, 0, 0, 0, ("cap",))
    out = bytearray()
    encode_tree(tree, out)
    data = bytearray(out)
    # The flags byte sits right after the name and the two 8-byte ids.
    flags_at = 4 + len("fz.src1") + 16
    data[flags_at] = 0x80  # an undefined flag bit
    with pytest.raises(DecodeError):
        decode_tree(bytes(data), 0)
    data[flags_at] = FLAG_COLLECTOR
    data[flags_at + 1] = 1  # a collector joining one input is malformed
    with pytest.raises(DecodeError):
        decode_tree(bytes(data), 0)
    data[flags_at] = 0
    data[flags_at + 1] = 2  # a plain node with two input slots likewise
    with pytest.raises(DecodeError):
        decode_tree(bytes(data), 0)
