"""Sched-key routing: the fixed splitmix64 mix and the shard map."""

import pytest

from repro.graph import ShardRouter, mix64

pytestmark = pytest.mark.graph


def test_mix64_is_deterministic_and_64_bit():
    seen = set()
    for key in list(range(200)) + [-1, -(2**63), 2**63 - 1, 2**64 + 7]:
        value = mix64(key)
        assert 0 <= value < 2**64
        assert value == mix64(key)  # pure function of the key
        seen.add(value)
    # A well-distributed mix: no collisions over this sample.  2**64 + 7
    # aliases key 7 by construction (the mix is of the low 64 bits), so
    # 203 distinct values, not 204.
    assert len(seen) == 203
    assert mix64(2**64 + 7) == mix64(7)


def test_mix64_spreads_small_keys_across_shards():
    # Sequential integer keys (the common sched_key shape) must not all
    # land on one shard — that is the whole point of mixing first.
    for n_shards in (2, 3, 5, 8):
        slots = {mix64(key) % n_shards for key in range(64)}
        assert slots == set(range(n_shards))


def test_router_is_stable_and_consistent():
    router = ShardRouter(["a", "b", "c"])
    assert len(router) == 3
    for key in range(100):
        index = router.shard_index(key)
        assert router.shard_name(key) == router.shard_names[index]
        assert router.index_of(router.shard_name(key)) == index


def test_router_rejects_bad_groups():
    with pytest.raises(ValueError):
        ShardRouter([])
    with pytest.raises(ValueError):
        ShardRouter(["a", "b", "a"])
    with pytest.raises(KeyError):
        ShardRouter(["a"]).index_of("not-a-shard")
