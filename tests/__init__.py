"""Test package."""
