"""Test package."""
