"""The mini-Argus transcriptions of Figures 3-1 and 4-2 agree with each
other and with the Python transcriptions."""


from repro.apps import make_roster
from repro.apps.grades_argus import FIG_3_1_SOURCE, FIG_4_2_SOURCE, run_grades_program
from repro.lang import load_module


def test_both_sources_type_check():
    load_module(FIG_3_1_SOURCE)
    load_module(FIG_4_2_SOURCE)


def test_fig31_argus_output():
    roster = [("amy", 90), ("bob", 80), ("cal", 70)]
    output, system = run_grades_program(FIG_3_1_SOURCE, roster)
    assert output == "amy 90;bob 80;cal 70;"


def test_fig42_argus_output_matches_fig31():
    roster = make_roster(8)
    out31, _sys31 = run_grades_program(FIG_3_1_SOURCE, roster)
    out42, _sys42 = run_grades_program(FIG_4_2_SOURCE, roster)
    assert out31 == out42
    assert out31.count(";") == 8


def test_argus_programs_execute_in_alphabetical_order():
    roster = make_roster(6)
    output, _system = run_grades_program(FIG_4_2_SOURCE, roster)
    students = [chunk.split()[0] for chunk in output.split(";") if chunk]
    assert students == sorted(students)


def test_empty_roster():
    for source in (FIG_3_1_SOURCE, FIG_4_2_SOURCE):
        output, _system = run_grades_program(source, [])
        assert output == ""
