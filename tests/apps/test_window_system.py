"""The window system: dynamic ports, port transmission, per-window groups."""

import pytest

from repro.apps import build_window_system
from repro.entities import ArgusSystem

from ..conftest import run_client


@pytest.fixture
def windows_system():
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1)
    guardian = build_window_system(system)
    return system, guardian


def test_create_window_returns_record_of_ports(windows_system):
    system, guardian = windows_system

    def main(ctx):
        create = ctx.lookup("windows", "create_window")
        window = yield create.call()
        return sorted(window.keys())

    assert run_client(system, main) == ["change_color", "putc", "puts"]


def test_window_operations_through_transmitted_ports(windows_system):
    system, guardian = windows_system

    def main(ctx):
        create = ctx.lookup("windows", "create_window")
        window = yield create.call()
        putc = ctx.bind(window["putc"])
        puts = ctx.bind(window["puts"])
        change_color = ctx.bind(window["change_color"])
        putc.stream_statement("H")
        puts.stream_statement("ello")
        change_color.stream_statement("blue")
        yield change_color.synch()

    run_client(system, main)
    (window_state,) = guardian.state["windows"].values()
    assert window_state["text"] == ["H", "ello"]
    assert window_state["color"] == "blue"


def test_ports_of_one_window_share_a_group(windows_system):
    """'All ports for a particular window might be placed in the same
    group' — so calls to putc and puts are mutually sequenced."""
    system, guardian = windows_system

    def main(ctx):
        create = ctx.lookup("windows", "create_window")
        window = yield create.call()
        putc = ctx.bind(window["putc"])
        puts = ctx.bind(window["puts"])
        assert putc.stream_sender is puts.stream_sender
        yield ctx.sleep(0)

    run_client(system, main)


def test_different_windows_use_different_groups(windows_system):
    """'ports of different windows might belong to different groups' —
    their streams are independent."""
    system, guardian = windows_system

    def main(ctx):
        create = ctx.lookup("windows", "create_window")
        first = yield create.call()
        second = yield create.call()
        putc_first = ctx.bind(first["putc"])
        putc_second = ctx.bind(second["putc"])
        assert putc_first.stream_sender is not putc_second.stream_sender
        putc_first.stream_statement("a")
        putc_second.stream_statement("b")
        yield putc_first.synch()
        yield putc_second.synch()

    run_client(system, main)
    texts = sorted(
        "".join(state["text"]) for state in guardian.state["windows"].values()
    )
    assert texts == ["a", "b"]


def test_window_writes_are_ordered_within_window(windows_system):
    system, guardian = windows_system

    def main(ctx):
        create = ctx.lookup("windows", "create_window")
        window = yield create.call()
        putc = ctx.bind(window["putc"])
        for ch in "ordered":
            putc.stream_statement(ch)
        yield putc.synch()

    run_client(system, main)
    (window_state,) = guardian.state["windows"].values()
    assert "".join(window_state["text"]) == "ordered"
