"""The grades example: all four program structures agree (§3.1, §4)."""

import pytest

from repro.apps import (
    build_grades_world,
    make_roster,
    program_fig_3_1,
    program_fig_4_1,
    program_fig_4_2,
    program_rpc,
)

PROGRAMS = {
    "rpc": program_rpc,
    "fig_3_1": program_fig_3_1,
    "fig_4_1": program_fig_4_1,
    "fig_4_2": program_fig_4_2,
}


def run_program(program, roster, **world_kwargs):
    world = build_grades_world(**world_kwargs)

    def main(ctx):
        count = yield from program(ctx, roster)
        return count

    process = world.client.spawn(main)
    count = world.system.run(until=process)
    return world, count


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_processes_all_students(name):
    roster = make_roster(12)
    world, count = run_program(PROGRAMS[name], roster)
    assert count == 12
    assert len(world.printed) == 12


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_output_is_alphabetical_with_correct_averages(name):
    roster = make_roster(10)
    world, _count = run_program(PROGRAMS[name], roster)
    students = [line.split()[0] for line in world.printed]
    assert students == sorted(students)
    averages = world.recorded_averages()
    for line, (student, grade) in zip(world.printed, roster):
        assert line == "%s %.2f" % (student, averages[student])
        assert averages[student] == pytest.approx(grade)


def test_all_programs_print_identical_output():
    roster = make_roster(15)
    outputs = {}
    for name, program in PROGRAMS.items():
        world, _count = run_program(program, roster)
        outputs[name] = world.printed
    reference = outputs.pop("rpc")
    for name, printed in outputs.items():
        assert printed == reference, name


def test_repeated_grades_update_average():
    world = build_grades_world()
    roster = [("amy", 80), ("amy", 100)]

    def main(ctx):
        count = yield from program_fig_3_1(ctx, roster)
        return count

    process = world.client.spawn(main)
    world.system.run(until=process)
    assert world.recorded_averages()["amy"] == pytest.approx(90.0)
    # Fig 3-1 prints the running average at each claim: 80 then 90.
    assert world.printed == ["amy 80.00", "amy 90.00"]


def test_overlapped_versions_are_faster():
    """The performance ordering the paper predicts:
    rpc > fig_3_1 > coenter composition (with per-iteration client cost,
    which is what makes Fig 3-1's initiate-all-first barrier expensive;
    and a roster large enough for the overlap to outweigh batching
    granularity — "this overlapping ... becomes more important as the
    number of calls increases")."""
    roster = make_roster(60)
    times = {}
    for name, program in PROGRAMS.items():
        world = build_grades_world()

        def main(ctx, program=program):
            count = yield from program(ctx, roster, step_cost=0.3)
            return count

        process = world.client.spawn(main)
        world.system.run(until=process)
        times[name] = world.system.now
    assert times["fig_4_2"] < times["fig_3_1"] < times["rpc"]
    # Fork and coenter structures have equivalent overlap.
    assert times["fig_4_1"] == pytest.approx(times["fig_4_2"], rel=0.2)


def test_empty_roster():
    for program in PROGRAMS.values():
        world, count = run_program(program, [])
        assert count == 0
        assert world.printed == []
