"""Local concurrency: fork, coenter, promise queues and trees (§3.2, §4)."""

from repro.concurrency.coenter import Coenter, CoenterTerminated
from repro.concurrency.critical import (
    WoundedError,
    critical_depth,
    critical_section,
    is_wounded,
    terminate,
)
from repro.concurrency.fork import fork
from repro.concurrency.promise_queue import PromiseQueue, QueueClosed
from repro.concurrency.tree import PromiseTree, TreeNode
from repro.concurrency.vat import Vat, vat_of

__all__ = [
    "Coenter",
    "CoenterTerminated",
    "PromiseQueue",
    "PromiseTree",
    "QueueClosed",
    "TreeNode",
    "Vat",
    "WoundedError",
    "critical_depth",
    "critical_section",
    "fork",
    "is_wounded",
    "terminate",
    "vat_of",
]
