"""Critical-section tracking and process wounding (§4.2).

"Early termination of processes raises a question of safety.  First, the
process might be in the middle of a critical section; stopping it at such a
point could leave damaged data.  We solve this problem by delaying
termination while a process is in a critical section.  The Argus runtime
system keeps track of how many critical sections a process is in and delays
its termination until the count is zero; ... To encourage a process to
leave critical sections rapidly when it should terminate, we 'wound' it by
greatly restricting what it can do.  For example, it cannot make any remote
calls at such a point."

``critical_section`` is the built-in critical-section mechanism;
``terminate`` is the wound-aware kill used by the coenter.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.kernel import Environment
from repro.sim.process import Interrupt, Process

__all__ = [
    "critical_section",
    "terminate",
    "critical_depth",
    "is_wounded",
    "WoundedError",
]


class WoundedError(Exception):
    """A wounded process attempted a restricted operation (remote call)."""


def critical_depth(process: Process) -> int:
    """How many critical sections *process* is currently inside."""
    return getattr(process, "_critical_depth", 0)


def is_wounded(process: Optional[Process]) -> bool:
    """Whether *process* has a pending (delayed) termination."""
    return process is not None and getattr(process, "_wound_cause", None) is not None


def terminate(process: Process, cause: Any = None) -> None:
    """Interrupt *process*, respecting critical sections.

    If the process is outside all critical sections, the interrupt is
    delivered immediately.  Otherwise the process is *wounded*: the
    interrupt is held until it leaves its outermost critical section, and
    meanwhile restricted operations raise :class:`WoundedError`.
    """
    if process.triggered:
        return
    if critical_depth(process) == 0:
        process.interrupt(cause)
    else:
        process._wound_cause = (cause,)  # type: ignore[attr-defined]


class critical_section:
    """Context manager marking a critical section of the active process.

    Usage inside a simulated process::

        with critical_section(env):
            ... # termination is delayed while here
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._process: Optional[Process] = None

    def __enter__(self) -> "critical_section":
        process = self.env.active_process
        if process is None:
            raise RuntimeError("critical_section used outside a process")
        process._critical_depth = critical_depth(process) + 1  # type: ignore[attr-defined]
        self._process = process
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        process = self._process
        depth = critical_depth(process) - 1
        process._critical_depth = depth  # type: ignore[attr-defined]
        if depth == 0:
            wound = getattr(process, "_wound_cause", None)
            if wound is not None:
                process._wound_cause = None  # type: ignore[attr-defined]
                if process.triggered:
                    return False
                if self.env.active_process is process:
                    # We are running inside the wounded process itself (the
                    # usual case: it just left its critical section); the
                    # delayed termination is delivered by raising here —
                    # but never mask an exception already in flight.
                    if exc_type is None:
                        raise Interrupt(wound[0])
                else:
                    process.interrupt(wound[0])
        return False
