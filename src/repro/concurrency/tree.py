"""A binary tree whose nodes are promises (§3.2).

    "promises can be used for parallel insertion and searching of elements
     in a binary tree in which the nodes of the tree are promises.  If a
     search reaches a node that cannot be claimed yet, it waits until the
     promise is ready."

Every child slot of the tree is a :class:`~repro.core.promise.Promise` for
the subtree that will eventually hang there.  Inserters *resolve* blocked
slots; searchers *claim* them, blocking at the frontier until an inserter
extends the tree — producer/consumer synchronization with no extra locks,
purely through promise readiness.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.outcome import Outcome
from repro.core.promise import Promise
from repro.sim.kernel import Environment

__all__ = ["PromiseTree", "TreeNode"]


class TreeNode:
    """One materialized node; its children are promises for subtrees."""

    __slots__ = ("key", "value", "left", "right")

    def __init__(self, env: Environment, key: Any, value: Any = None) -> None:
        self.key = key
        self.value = value
        self.left = Promise(env, label="left(%r)" % (key,))
        self.right = Promise(env, label="right(%r)" % (key,))

    def __repr__(self) -> str:
        return "<TreeNode %r>" % (self.key,)


class PromiseTree:
    """Concurrently-built binary search tree with promise-valued slots."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: The root slot; blocked until the first insertion.
        self.root = Promise(env, label="root")
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion (non-blocking: resolves the frontier promise it reaches)
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any = None) -> TreeNode:
        """Insert *key*; returns the (new or existing) node.

        Runs without blocking: descends through *ready* slots and resolves
        the first blocked slot with a fresh node.  Duplicate keys update
        the stored value in place.
        """
        slot = self.root
        while slot.ready():
            node = slot.outcome().apply()
            if key == node.key:
                node.value = value
                return node
            slot = node.left if key < node.key else node.right
        node = TreeNode(self.env, key, value)
        slot.resolve(Outcome.normal(node))
        self._size += 1
        return node

    # ------------------------------------------------------------------
    # Search (blocking: waits at the frontier)
    # ------------------------------------------------------------------
    def search(self, key: Any):
        """Generator (``yield from``-able): find *key*, waiting on blocked
        slots until an inserter resolves them.

        Returns the node's value.  Never returns "not found": a search for
        a key that is never inserted waits forever, exactly as the paper's
        formulation implies — bound it with a timeout at the call site if
        needed.
        """
        slot = self.root
        while True:
            node = yield slot.claim()
            if key == node.key:
                return node.value
            slot = node.left if key < node.key else node.right

    def try_search(self, key: Any) -> Optional[TreeNode]:
        """Non-blocking probe of the *currently materialized* tree."""
        slot = self.root
        while slot.ready():
            node = slot.outcome().apply()
            if key == node.key:
                return node
            slot = node.left if key < node.key else node.right
        return None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def keys_in_order(self) -> List[Any]:
        """In-order keys of the materialized part (tests/examples)."""
        out: List[Any] = []

        def walk(slot: Promise) -> None:
            if not slot.ready():
                return
            node = slot.outcome().apply()
            walk(node.left)
            out.append(node.key)
            walk(node.right)

        walk(self.root)
        return out
