"""The vat: an idle-queue callback scheduler for promise continuations.

The blocking ``claim`` of the paper costs one simulated :class:`~repro.sim.process.Process`
per outstanding promise — a generator, an event subscription, and a
calendar entry each.  That is faithful to 1988 Argus, but it is the
bottleneck the ROADMAP names for million-client workloads: you cannot
hold 10^5 pending promises if every one of them needs its own process
just to be told its value arrived.

The vat is the alternative consumption substrate, modelled on the
E-rights scheme as distilled by 0install's ``async.mli`` (SNIPPETS.md
Snippet 3): a single idle queue of callbacks, drained in FIFO order on
the kernel's fast callback lane (:meth:`~repro.sim.kernel.Environment.call_soon`).
Registering a continuation on a promise costs one queue entry — no
process, no generator, no per-promise event machinery — so one driving
process can hold hundreds of thousands of pending promises.

Execution model (documented guarantees, relied on by the combinator
property tests and DESIGN.md section 12):

* **run-to-completion turns** — each queued callback runs to completion
  before the next starts; a callback is never preempted by simulated
  time passing or by another callback;
* **FIFO ordering** — callbacks run in the order they were enqueued;
  two continuations registered on the same promise fire in registration
  order, and continuations of a promise resolved earlier fire before
  continuations of a promise resolved later;
* **same-timestamp dispatch** — a drain occupies one calendar slot at
  the current simulated time: callbacks enqueued while the simulation is
  at time *t* run at time *t*, after already-scheduled events at *t*
  (``call_soon`` semantics).  Continuations therefore observe the same
  simulated timestamps a blocking ``claim`` would;
* **nested enqueues join the current drain** — a callback that enqueues
  further callbacks (a chained ``when_fulfilled``, a gather resolving)
  extends the same drain rather than scheduling a new calendar entry, so
  an entire continuation cascade settles within one timestamp.

The vat also carries the causal span context of the callback being run
(:attr:`current_span`), so calls made from inside a continuation nest
under the span of the activity that registered it — this is how
``repro.obs`` phase timelines keep summing to end-to-end latency across
continuation hops (see :func:`repro.obs.trace.mint_span`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

__all__ = ["Vat", "vat_of"]

#: Initial ring capacity (entries).  Must be a power of two.
_INITIAL_CAPACITY = 16


class Vat:
    """One environment's idle queue of promise-continuation callbacks.

    The queue is a preallocated ring buffer: one flat list holding three
    slots per entry (``fn``, ``arg``, ``span``), indexed by monotonically
    increasing head/tail counters masked down to a power-of-two capacity.
    Enqueueing writes three slots; no tuple, node or other object is
    allocated per entry, so a resolver flooding 10^5 continuations in
    one burst costs zero garbage beyond the (amortized-doubling) ring
    itself.  Slots are cleared as entries are consumed so the ring never
    pins dead callbacks or arguments.
    """

    __slots__ = (
        "env",
        "_ring",
        "_mask",
        "_head",
        "_tail",
        "_scheduled",
        "current_span",
        "turns",
        "callbacks_run",
    )

    def __init__(self, env: Any) -> None:
        self.env = env
        #: Flat ring storage: capacity * 3 slots.
        self._ring: list = [None] * (_INITIAL_CAPACITY * 3)
        #: capacity - 1; capacity is always a power of two, so ``index &
        #: mask`` is the ring position of an absolute counter value.
        self._mask = _INITIAL_CAPACITY - 1
        #: Absolute counters of entries consumed (head) and enqueued
        #: (tail).  They only ever increase; pending = tail - head.
        self._head = 0
        self._tail = 0
        self._scheduled = False
        #: Causal span context of the callback currently executing, or
        #: None outside a drain (observability only; never set unless the
        #: registering side captured a span).
        self.current_span: Optional[Tuple[int, int, int]] = None
        #: Number of drains performed (one drain = one calendar slot).
        self.turns = 0
        #: Total callbacks executed across all drains.
        self.callbacks_run = 0

    def __repr__(self) -> str:
        return "<Vat pending=%d turns=%d run=%d>" % (
            self._tail - self._head,
            self.turns,
            self.callbacks_run,
        )

    def pending(self) -> int:
        """Number of callbacks waiting to run (for tests and stats)."""
        return self._tail - self._head

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def do_soon(
        self,
        fn: Callable[[Any], None],
        arg: Any = None,
        span: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        """Queue ``fn(arg)`` to run as soon as the simulation is idle
        at the current timestamp.

        Exactly one argument, by design: a queue entry is three flat ring
        slots, and at 10^5 pending promises the resolver can flood the
        queue in a single burst — a varargs tuple per entry would be
        measurable in the benchmark's peak-memory comparison.  Bind extra
        state in a closure if you need more.

        *span*, if given, is the causal span context the callback should
        run under (it becomes :attr:`current_span` for the duration of
        the call).  The first enqueue of a burst schedules a single
        drain on the kernel's callback lane; subsequent enqueues — and
        enqueues made from inside callbacks — ride the same drain.
        """
        tail = self._tail
        mask = self._mask
        if tail - self._head > mask:  # ring full (pending == capacity)
            self._grow()
            mask = self._mask
        ring = self._ring
        base = (tail & mask) * 3
        ring[base] = fn
        ring[base + 1] = arg
        ring[base + 2] = span
        self._tail = tail + 1
        if not self._scheduled:
            self._scheduled = True
            self.env.call_soon(self._drain)

    def _grow(self) -> None:
        """Double the ring, re-seating pending entries at their new masked
        positions.  Absolute head/tail counters are preserved, so handles
        held across a grow (there are none today, but the drain loop's
        local counter is one) stay valid."""
        ring = self._ring
        mask = self._mask
        new_mask = (mask + 1) * 2 - 1
        new_ring = [None] * ((new_mask + 1) * 3)
        for index in range(self._head, self._tail):
            src = (index & mask) * 3
            dst = (index & new_mask) * 3
            new_ring[dst] = ring[src]
            new_ring[dst + 1] = ring[src + 1]
            new_ring[dst + 2] = ring[src + 2]
        self._ring = new_ring
        self._mask = new_mask

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Run every queued callback (including ones enqueued mid-drain).

        ``self._ring``/``self._mask`` are re-read every iteration (a
        callback that enqueues past capacity swaps them), and
        ``self._head`` is advanced *before* each callback runs, so an
        entry whose callback raises counts as consumed — exactly the
        popleft-then-call semantics the deque implementation had.
        """
        head = self._head
        count = 0
        try:
            while head != self._tail:
                ring = self._ring
                base = (head & self._mask) * 3
                fn = ring[base]
                arg = ring[base + 1]
                span = ring[base + 2]
                ring[base] = ring[base + 1] = ring[base + 2] = None
                head += 1
                self._head = head
                self.current_span = span
                fn(arg)
                count += 1
        finally:
            self.current_span = None
            self._scheduled = False
            self.turns += 1
            self.callbacks_run += count
            tracer = self.env.tracer
            if tracer is not None:
                tracer.emit("vat.turn", callbacks=count, pending=self._tail - head)
            # A callback that escaped with an exception (strict monitors,
            # programming errors) aborts the drain; anything still queued
            # must get a fresh calendar slot so no continuation is lost.
            if head != self._tail and not self._scheduled:
                self._scheduled = True
                self.env.call_soon(self._drain)


def vat_of(env: Any) -> Vat:
    """The environment's vat, created (and attached) on first use."""
    vat = env.vat
    if vat is None:
        vat = env.vat = Vat(env)
    return vat
