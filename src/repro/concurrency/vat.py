"""The vat: an idle-queue callback scheduler for promise continuations.

The blocking ``claim`` of the paper costs one simulated :class:`~repro.sim.process.Process`
per outstanding promise — a generator, an event subscription, and a
calendar entry each.  That is faithful to 1988 Argus, but it is the
bottleneck the ROADMAP names for million-client workloads: you cannot
hold 10^5 pending promises if every one of them needs its own process
just to be told its value arrived.

The vat is the alternative consumption substrate, modelled on the
E-rights scheme as distilled by 0install's ``async.mli`` (SNIPPETS.md
Snippet 3): a single idle queue of callbacks, drained in FIFO order on
the kernel's fast callback lane (:meth:`~repro.sim.kernel.Environment.call_soon`).
Registering a continuation on a promise costs one queue entry — no
process, no generator, no per-promise event machinery — so one driving
process can hold hundreds of thousands of pending promises.

Execution model (documented guarantees, relied on by the combinator
property tests and DESIGN.md section 12):

* **run-to-completion turns** — each queued callback runs to completion
  before the next starts; a callback is never preempted by simulated
  time passing or by another callback;
* **FIFO ordering** — callbacks run in the order they were enqueued;
  two continuations registered on the same promise fire in registration
  order, and continuations of a promise resolved earlier fire before
  continuations of a promise resolved later;
* **same-timestamp dispatch** — a drain occupies one calendar slot at
  the current simulated time: callbacks enqueued while the simulation is
  at time *t* run at time *t*, after already-scheduled events at *t*
  (``call_soon`` semantics).  Continuations therefore observe the same
  simulated timestamps a blocking ``claim`` would;
* **nested enqueues join the current drain** — a callback that enqueues
  further callbacks (a chained ``when_fulfilled``, a gather resolving)
  extends the same drain rather than scheduling a new calendar entry, so
  an entire continuation cascade settles within one timestamp.

The vat also carries the causal span context of the callback being run
(:attr:`current_span`), so calls made from inside a continuation nest
under the span of the activity that registered it — this is how
``repro.obs`` phase timelines keep summing to end-to-end latency across
continuation hops (see :func:`repro.obs.trace.mint_span`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Tuple

__all__ = ["Vat", "vat_of"]


class Vat:
    """One environment's idle queue of promise-continuation callbacks."""

    __slots__ = (
        "env",
        "_queue",
        "_scheduled",
        "current_span",
        "turns",
        "callbacks_run",
    )

    def __init__(self, env: Any) -> None:
        self.env = env
        self._queue: deque = deque()
        self._scheduled = False
        #: Causal span context of the callback currently executing, or
        #: None outside a drain (observability only; never set unless the
        #: registering side captured a span).
        self.current_span: Optional[Tuple[int, int, int]] = None
        #: Number of drains performed (one drain = one calendar slot).
        self.turns = 0
        #: Total callbacks executed across all drains.
        self.callbacks_run = 0

    def __repr__(self) -> str:
        return "<Vat pending=%d turns=%d run=%d>" % (
            len(self._queue),
            self.turns,
            self.callbacks_run,
        )

    def pending(self) -> int:
        """Number of callbacks waiting to run (for tests and stats)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def do_soon(
        self,
        fn: Callable[[Any], None],
        arg: Any = None,
        span: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        """Queue ``fn(arg)`` to run as soon as the simulation is idle
        at the current timestamp.

        Exactly one argument, by design: a queue entry is one flat
        ``(fn, arg, span)`` triple, and at 10^5 pending promises the
        resolver can flood the queue in a single burst — a varargs tuple
        per entry would be measurable in the benchmark's peak-memory
        comparison.  Bind extra state in a closure if you need more.

        *span*, if given, is the causal span context the callback should
        run under (it becomes :attr:`current_span` for the duration of
        the call).  The first enqueue of a burst schedules a single
        drain on the kernel's callback lane; subsequent enqueues — and
        enqueues made from inside callbacks — ride the same drain.
        """
        self._queue.append((fn, arg, span))
        if not self._scheduled:
            self._scheduled = True
            self.env.call_soon(self._drain)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Run every queued callback (including ones enqueued mid-drain)."""
        queue = self._queue
        count = 0
        try:
            while queue:
                fn, arg, span = queue.popleft()
                self.current_span = span
                fn(arg)
                count += 1
        finally:
            self.current_span = None
            self._scheduled = False
            self.turns += 1
            self.callbacks_run += count
            tracer = self.env.tracer
            if tracer is not None:
                tracer.emit("vat.turn", callbacks=count, pending=len(queue))
            # A callback that escaped with an exception (strict monitors,
            # programming errors) aborts the drain; anything still queued
            # must get a fresh calendar slot so no continuation is lost.
            if queue and not self._scheduled:
                self._scheduled = True
                self.env.call_soon(self._drain)


def vat_of(env: Any) -> Vat:
    """The environment's vat, created (and attached) on first use."""
    vat = env.vat
    if vat is None:
        vat = env.vat = Vat(env)
    return vat
