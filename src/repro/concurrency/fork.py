"""Local forks: promises for local procedure calls (§3.2).

    "A fork causes a call of a local procedure to run in parallel with the
     caller.  When the procedure terminates, its results are stored in the
     promise, which then becomes claimable."

Arguments are passed by sharing (ordinary Python references — objects live
on the heap, so there are no lifetime problems), no encoding happens, and
the forked process gets its own agent.  Exceptions raised by the procedure
— user signals, ``unavailable``, ``failure`` — propagate through the
promise to whoever claims it, which is the type-safe exception propagation
the paper highlights as missing from Mesa and Modula-2+.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.exceptions import ArgusError
from repro.core.outcome import Outcome
from repro.core.promise import Promise
from repro.obs.trace import mint_span
from repro.sim.process import Interrupt, ProcessKilled
from repro.types.signatures import PromiseType

__all__ = ["fork"]


def fork(
    ctx: Any,
    procedure: Callable,
    *args: Any,
    ptype: Optional[PromiseType] = None,
    label: str = "",
) -> Promise:
    """``p: pt := fork foo(args)``.

    *procedure* is a generator function ``procedure(child_ctx, *args)``; it
    runs in a new process with a new agent of the same guardian.  Returns
    the promise for its result, typed by *ptype* when given.
    """
    env = ctx.env
    name = label or getattr(procedure, "__name__", "fork")
    tracer = env.tracer
    # The fork is a span of its own: minted in the forking process (so it
    # nests under whatever call is running) and inherited by the forked
    # process, so calls the forked procedure makes nest under the fork.
    span = mint_span(env) if tracer is not None else None
    child_ctx = ctx.spawn_context(name)
    promise = Promise(env, ptype, label="fork:%s" % name)
    process = env.process(procedure(child_ctx, *args))
    if span is not None:
        process.span = span
        tracer.emit(
            "fork.spawned",
            label=name,
            pid=process.pid,
            trace_id=span[0],
            span_id=span[1],
            parent_span_id=span[2],
            promise_id=promise.promise_id,
        )
    ctx.guardian._track(process)

    def complete(event) -> None:
        if promise.ready():
            return
        if event.ok:
            promise.resolve(_result_outcome(ptype, event.value))
            return
        exc = event.value
        event.defused = True
        if isinstance(exc, ArgusError):
            promise.resolve(Outcome.exceptional(exc))
        elif isinstance(exc, (ProcessKilled, Interrupt)):
            promise.resolve(Outcome.unavailable("forked process terminated early"))
        else:
            promise.resolve(Outcome.failure("procedure crashed: %r" % (exc,)))

    if process.triggered:
        complete(process)
    else:
        process.callbacks.append(complete)
    return promise


def _result_outcome(ptype: Optional[PromiseType], result: Any) -> Outcome:
    if ptype is None:
        if result is None:
            return Outcome.normal()
        return Outcome.normal(result)
    count = len(ptype.returns)
    if count == 0:
        if result is not None:
            return Outcome.failure("procedure returned a value but promise has no results")
        return Outcome.normal()
    if count == 1:
        return Outcome.normal(result)
    if not isinstance(result, tuple) or len(result) != count:
        return Outcome.failure(
            "procedure returned %r but promise declares %d results" % (result, count)
        )
    return Outcome.normal(*result)
