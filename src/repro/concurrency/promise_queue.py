"""The shared promise queue of Figures 4-1 and 4-2 (``queue[pt]``).

A thin Argus-flavoured facade over :class:`repro.sim.sync.BlockingQueue`
with the paper's operation names (``enq``/``deq``), critical-section
protection around the queue operations (so coenter termination can never
observe a half-updated queue — the paper's dequeue-damage example), and an
optional element type used to sanity-check enqueued promises.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.concurrency.critical import critical_section
from repro.core.promise import Promise
from repro.sim.events import Event
from repro.sim.kernel import Environment
from repro.sim.sync import BlockingQueue, QueueClosed
from repro.types.signatures import PromiseType

__all__ = ["PromiseQueue", "QueueClosed"]


class PromiseQueue:
    """A FIFO of promises shared between producer and consumer processes."""

    def __init__(
        self,
        env: Environment,
        element_type: Optional[PromiseType] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.env = env
        self.element_type = element_type
        self._queue = BlockingQueue(env, capacity)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._queue.closed

    @property
    def raw(self) -> BlockingQueue:
        """The underlying queue (what ``Coenter.guard_queue`` wants)."""
        return self._queue

    def enq(self, promise: Promise) -> Event:
        """Enqueue a promise; yieldable (blocks only if bounded and full)."""
        if self.element_type is not None and isinstance(promise, Promise):
            if promise.ptype is not None and promise.ptype != self.element_type:
                raise TypeError(
                    "promise type %r does not match queue element type %r"
                    % (promise.ptype, self.element_type)
                )
        with critical_section(self.env):
            return self._queue.put(promise)

    def deq(self) -> Event:
        """Dequeue the oldest promise; yieldable, waits while empty.

        Raises :class:`QueueClosed` into the waiting process if the queue
        is closed (the coenter's answer to the termination problem).
        """
        with critical_section(self.env):
            return self._queue.get()

    def close(self, reason: Any = None) -> None:
        """Close the queue; blocked and future deq/enq raise QueueClosed."""
        self._queue.close(reason)
