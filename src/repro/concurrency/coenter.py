"""The ``coenter`` statement (§4.2).

    "A coenter statement contains a number of arms, each defining a
     computation to be run as a process. ... The process executing the
     coenter is halted, and remains halted until all the subprocesses
     complete. ... a subprocess can cause other subprocesses to terminate
     early.  It does this by causing a control transfer outside of the
     coenter."

Semantics implemented here:

* every arm runs as its own process with its own agent;
* if an arm raises an exception, every other arm is *terminated* —
  respecting critical sections via the wounding mechanism of
  :mod:`repro.concurrency.critical`;
* shared queues registered with :meth:`Coenter.guard_queue` are closed on
  early termination, so no sibling can hang in ``deq`` (the Figure 4-1
  termination problem);
* the parent resumes only after all arms have actually finished, and then
  the first exception (if any) propagates to it — "control will continue
  in the parent process at the except statement";
* optionally each arm runs as an atomic action that aborts on early
  termination (the paper runs both grades arms "as actions").

A dynamic number of arms is supported (the paper: "Argus provides such a
mechanism, which extends the coenter to allow a dynamic number of
processes") — add one arm per work item with :meth:`arm_each`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List

from repro.sim.events import Event
from repro.sim.process import Interrupt, Process, ProcessKilled
from repro.sim.sync import BlockingQueue
from repro.concurrency.critical import terminate

__all__ = ["Coenter", "CoenterTerminated"]


class CoenterTerminated(Exception):
    """Interrupt cause delivered to arms terminated by a sibling failure."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> BaseException:
        return self.args[0]


class _Arm:
    __slots__ = ("procedure", "args", "label", "atomic")

    def __init__(self, procedure: Callable, args: tuple, label: str, atomic: bool) -> None:
        self.procedure = procedure
        self.args = args
        self.label = label
        self.atomic = atomic


class Coenter:
    """Builder/executor for one coenter statement.

    Usage inside a simulated process::

        co = ctx.coenter()
        co.arm(record_arm, grades)
        co.arm(print_arm, grades)
        results = yield co.run()      # raises the first arm exception
    """

    def __init__(self, ctx: Any) -> None:
        self.ctx = ctx
        self.env = ctx.env
        self._arms: List[_Arm] = []
        self._queues: List[BlockingQueue] = []
        self._started = False

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def arm(
        self,
        procedure: Callable,
        *args: Any,
        label: str = "",
        atomic: bool = False,
    ) -> "Coenter":
        """Add an arm: ``procedure(arm_ctx, *args)`` run as a subprocess.

        With ``atomic=True`` the arm runs as an atomic action that commits
        on normal completion and aborts on failure or early termination.
        """
        if self._started:
            raise RuntimeError("coenter already running")
        self._arms.append(
            _Arm(procedure, args, label or getattr(procedure, "__name__", "arm"), atomic)
        )
        return self

    def arm_each(
        self,
        procedure: Callable,
        items: Iterable[Any],
        label: str = "",
        atomic: bool = False,
    ) -> "Coenter":
        """Dynamic arms: one per item (process-per-item composition, §4.3)."""
        for index, item in enumerate(items):
            self.arm(
                procedure,
                item,
                label="%s[%d]" % (label or getattr(procedure, "__name__", "arm"), index),
                atomic=atomic,
            )
        return self

    def guard_queue(self, queue: BlockingQueue) -> BlockingQueue:
        """Register a shared queue to be closed if the coenter terminates
        early, so no arm hangs in ``deq`` forever."""
        self._queues.append(queue)
        return queue

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> Event:
        """Start all arms; returns a yieldable event.

        The event succeeds with the list of arm results (in arm order)
        once every arm finished normally; it fails with the first arm
        exception after all other arms have been terminated and finished.
        """
        if self._started:
            raise RuntimeError("coenter already running")
        self._started = True
        done = Event(self.env)
        if not self._arms:
            done.succeed([])
            return done

        state = {
            "failure": None,
            "remaining": len(self._arms),
        }
        results: List[Any] = [None] * len(self._arms)
        processes: List[Process] = []
        arm_contexts: List[Any] = []

        def finish() -> None:
            if state["failure"] is not None:
                done.defused = True
                done.fail(state["failure"])
            else:
                done.succeed(list(results))

        def on_arm_done(index: int, event: Event) -> None:
            if event.ok:
                results[index] = event.value
            else:
                exc = event.value
                event.defused = True
                if not isinstance(exc, (Interrupt, ProcessKilled)):
                    if state["failure"] is None:
                        state["failure"] = exc
                        self._terminate_others(processes, arm_contexts, exc)
            state["remaining"] -= 1
            if state["remaining"] == 0:
                finish()

        # Creating processes burdens the system (§4.3); arms start
        # staggered by the configured per-process overhead.
        spawn_overhead = getattr(self.ctx.system, "process_spawn_overhead", 0.0)
        # Arms inherit the coenter'ing process's causal span (tracing
        # only): calls an arm makes nest under the span the parent was
        # running in, keeping the whole coenter one call tree.
        parent_span = None
        if self.env.tracer is not None and self.env.active_process is not None:
            parent_span = self.env.active_process.span
        for index, arm in enumerate(self._arms):
            arm_ctx = self.ctx.spawn_context(arm.label)
            arm_contexts.append(arm_ctx)
            process = self.env.process(
                self._run_arm(arm, arm_ctx, index * spawn_overhead)
            )
            if parent_span is not None:
                process.span = parent_span
            self.ctx.guardian._track(process)
            processes.append(process)

            def hook(event: Event, index: int = index) -> None:
                on_arm_done(index, event)

            if process.triggered:
                hook(process)
            else:
                process.callbacks.append(hook)
        return done

    def as_promise(self):
        """Run the coenter, viewed through the promise continuation layer.

        Starts the arms exactly as :meth:`run` does (timing, termination
        and stream-abandonment semantics are untouched) but returns a
        :class:`~repro.core.promise.Promise` instead of a raw event, so a
        coenter can participate in ``when_resolved`` chains and
        ``Promise.all`` gathers without a process blocked on it.  The
        promise fulfils with the list of arm results; it breaks with the
        first arm exception — an :class:`~repro.core.exceptions.ArgusError`
        rides the outcome verbatim, any other exception becomes a
        ``failure`` outcome (promises can only carry Argus exceptions).
        """
        from repro.core.exceptions import ArgusError
        from repro.core.outcome import Outcome
        from repro.core.promise import Promise

        done = self.run()
        promise = Promise(self.env, label="coenter")

        def settle(event: Event) -> None:
            if event.ok:
                promise.resolve(Outcome.normal(event.value))
                return
            event.defused = True
            exc = event.value
            if isinstance(exc, ArgusError):
                promise.resolve(Outcome.exceptional(exc))
            else:
                promise.resolve(Outcome.failure("coenter arm raised %r" % (exc,)))

        if done.triggered:
            settle(done)
        else:
            done.callbacks.append(settle)
        return promise

    def _run_arm(self, arm: _Arm, arm_ctx: Any, start_delay: float = 0.0):
        """The generator actually run as the arm's process."""
        if start_delay > 0:
            yield self.env.timeout(start_delay)
        if arm.atomic:
            from repro.transactions.action import run_as_action

            result = yield from run_as_action(arm_ctx, arm.procedure, *arm.args)
        else:
            result = yield from arm.procedure(arm_ctx, *arm.args)
        return result

    def _terminate_others(
        self,
        processes: List[Process],
        arm_contexts: List[Any],
        exc: BaseException,
    ) -> None:
        """Terminate sibling arms (critical-section aware), close guarded
        queues so nothing hangs, and abandon the arms' streams so remote
        orphans are found and destroyed (§4.2: "we do not wait to
        terminate any calls that may be running elsewhere")."""
        for queue in self._queues:
            queue.close("coenter terminated: %s" % (exc,))
        for process, arm_ctx in zip(processes, arm_contexts):
            if process.is_alive and process is not self.env.active_process:
                terminate(process, CoenterTerminated(exc))
            self.ctx.guardian.endpoint.abandon_agent(arm_ctx.agent)
