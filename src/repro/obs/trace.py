"""Structured tracing for the simulation: typed events with sim timestamps.

The tracer is the measurement substrate the ROADMAP's performance work
stands on: instead of inferring what the run did from end state, every hot
layer (kernel processes, network, stream transport, guardians, promises)
emits typed events through one :class:`Tracer` attached to the
:class:`~repro.sim.kernel.Environment`.

Zero overhead when disabled
---------------------------
Tracing is off by default: ``Environment.tracer`` is ``None`` and every
instrumentation site is guarded by a single attribute load plus a ``None``
check::

    tracer = self.env.tracer
    if tracer is not None:
        tracer.emit(EV_MESSAGE_SENT, src=..., dst=...)

No event object, dict or string is ever constructed on the disabled path;
``tests/obs/test_overhead_guard.py`` (marker ``obs_overhead``) enforces
this.

When enabled, the tracer both records the raw event stream (exportable as
JSONL, one event per line) and feeds a :class:`~repro.obs.metrics.Metrics`
registry with per-node / per-stream / per-promise counters and latency
histograms, so most assertions can use aggregates without walking events.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Metrics

__all__ = [
    "TraceEvent",
    "Tracer",
    "load_jsonl",
    "mint_span",
    "summary_from_metrics",
    "trace_meta",
    "EV_TRACE_META",
    # Event type constants, grouped by layer.
    "EV_PROCESS_CREATED",
    "EV_PROCESS_RESUMED",
    "EV_PROCESS_FINISHED",
    "EV_MESSAGE_SENT",
    "EV_MESSAGE_DELIVERED",
    "EV_MESSAGE_DROPPED",
    "EV_NODE_CRASH",
    "EV_NODE_RECOVER",
    "EV_PARTITION",
    "EV_HEAL",
    "EV_CALL_BUFFERED",
    "EV_PACKET_SENT",
    "EV_CALL_DELIVERED",
    "EV_CALL_DUPLICATE",
    "EV_CALL_EXECUTING",
    "EV_CALL_COMPLETED",
    "EV_REPLY_PACKET_SENT",
    "EV_CALL_RESOLVED",
    "EV_WINDOW_STALL",
    "EV_RTT_SAMPLE",
    "EV_BATCH_LIMIT",
    "EV_FORK_SPAWNED",
    "EV_STREAM_BREAK",
    "EV_STREAM_REFUSED",
    "EV_GUARDIAN_CRASHED",
    "EV_GUARDIAN_DESTROYED",
    "EV_PROMISE_CREATED",
    "EV_PROMISE_RESOLVED",
    "EV_PROMISE_CLAIMED",
    "EV_PROMISE_CLAIM_LATENCY",
    "EV_PROMISE_CHAINED",
    "EV_VAT_TURN",
    "EV_GRAPH_ROUTINE",
    "EV_GRAPH_EPOCH",
]

# -- sim layer ---------------------------------------------------------
EV_PROCESS_CREATED = "process.created"
EV_PROCESS_RESUMED = "process.resumed"
EV_PROCESS_FINISHED = "process.finished"

# -- network layer -----------------------------------------------------
EV_MESSAGE_SENT = "message.sent"
EV_MESSAGE_DELIVERED = "message.delivered"
EV_MESSAGE_DROPPED = "message.dropped"
EV_NODE_CRASH = "node.crash"
EV_NODE_RECOVER = "node.recover"
EV_PARTITION = "net.partition"
EV_HEAL = "net.heal"

# -- stream transport layer --------------------------------------------
EV_CALL_BUFFERED = "stream.call_buffered"
EV_PACKET_SENT = "stream.packet_sent"
EV_CALL_DELIVERED = "stream.call_delivered"
EV_CALL_DUPLICATE = "stream.call_duplicate"
EV_CALL_EXECUTING = "stream.call_executing"
EV_CALL_COMPLETED = "stream.call_completed"
EV_REPLY_PACKET_SENT = "stream.reply_packet_sent"
EV_CALL_RESOLVED = "stream.call_resolved"
EV_STREAM_BREAK = "stream.break"
EV_STREAM_REFUSED = "stream.refused"
#: Flow control held ready calls back (adaptive windowed transport, PR 5).
EV_WINDOW_STALL = "stream.window_stall"
#: One Karn-valid RTT measurement fed to the SRTT/RTTVAR estimator.
EV_RTT_SAMPLE = "stream.rtt_sample"
#: The AIMD controller moved the effective batch-size threshold.
EV_BATCH_LIMIT = "stream.batch_limit"

# -- concurrency layer -------------------------------------------------
EV_FORK_SPAWNED = "fork.spawned"

# -- entity layer ------------------------------------------------------
EV_GUARDIAN_CRASHED = "guardian.crashed"
EV_GUARDIAN_DESTROYED = "guardian.destroyed"

# -- promise layer -----------------------------------------------------
EV_PROMISE_CREATED = "promise.created"
EV_PROMISE_RESOLVED = "promise.resolved"
EV_PROMISE_CLAIMED = "promise.claimed"
EV_PROMISE_CLAIM_LATENCY = "promise.claim_latency"
#: A continuation was registered: a derived promise chained off a base one.
EV_PROMISE_CHAINED = "promise.chained"

# -- vat layer ---------------------------------------------------------
#: One vat drain completed (``callbacks`` run, ``pending`` left behind by
#: an aborted drain — normally 0).
EV_VAT_TURN = "vat.turn"

# -- graph layer -------------------------------------------------------
#: One graph routine executed on a shard (``shard``, ``graph``, ``node``,
#: ``callback``, ``cost``, ``migrated``).  ``migrated`` marks executions
#: a ``node_func`` re-routed away from the node's static shard.
EV_GRAPH_ROUTINE = "graph.routine"
#: One graph frame shipped (``shard`` = sender, ``dst``, ``epoch``,
#: ``units`` = deliveries or results inside it).
EV_GRAPH_EPOCH = "graph.epoch"

# -- trace metadata ----------------------------------------------------
#: Synthetic record written by :meth:`Tracer.export_jsonl` when the ring
#: buffer overflowed: carries ``dropped_events`` so offline analysis can
#: tell a truncated trace from a complete one.  Not a simulation event;
#: every consumer of event streams skips it.
EV_TRACE_META = "trace.meta"


def mint_span(env: Any) -> Tuple[int, int, int]:
    """Mint a causal span context ``(trace_id, span_id, parent_span_id)``.

    Called only when tracing is enabled, at the moment a call is made (a
    stream call, an RPC, or a fork).  The parent is the span of the
    currently executing process — set by the dispatcher for handler
    executions and by ``fork`` for forked procedures — so a call made from
    inside a handler nests under the call that started that handler.  A
    call with no enclosing span starts a new trace (``parent_span_id`` 0).

    All identifiers come from the per-environment serial counters
    (:meth:`~repro.sim.kernel.Environment.new_serial`), so span ids are
    deterministic across runs and across environments — the golden-trace
    test compares them verbatim.
    """
    active = env.active_process
    parent = active.span if active is not None else None
    if parent is None:
        # No process is running: we may be inside a vat callback (a
        # promise continuation).  The vat carries the span the
        # continuation was registered under, so calls issued from
        # continuation hops keep nesting under the original caller.
        vat = env.vat
        if vat is not None:
            parent = vat.current_span
    if parent is None:
        return (env.new_serial("trace"), env.new_serial("span"), 0)
    return (parent[0], env.new_serial("span"), parent[1])


class TraceEvent:
    """One recorded event: simulated time, type, and free-form fields."""

    __slots__ = ("time", "type", "fields")

    def __init__(self, time: float, type: str, fields: Dict[str, Any]) -> None:
        self.time = time
        self.type = type
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        record = {"t": self.time, "type": self.type}
        record.update(self.fields)
        return record

    def __repr__(self) -> str:
        return "<TraceEvent t=%.3f %s %r>" % (self.time, self.type, self.fields)


class Tracer:
    """Collects trace events and aggregates metrics for one environment.

    Attach with :meth:`install` (or ``ArgusSystem(tracing=True)``); detach
    by setting ``env.tracer = None``.  With ``capture=False`` the raw event
    list is not kept (metrics only), which bounds memory on long runs.
    With ``max_events=N`` the event store becomes a ring buffer keeping the
    most recent N events (``dropped_events`` counts the overflow), so long
    fault-injection runs can keep full tracing on with bounded memory.
    """

    def __init__(
        self,
        env: Any,
        capture: bool = True,
        metrics: Optional[Metrics] = None,
        max_events: Optional[int] = None,
    ) -> None:
        self.env = env
        self.capture = capture
        self.max_events = max_events
        #: Events evicted from the ring buffer (0 unless max_events is set
        #: and the run outgrew it).
        self.dropped_events = 0
        if max_events is not None:
            if max_events <= 0:
                raise ValueError("max_events must be positive, got %r" % (max_events,))
            self.events: Any = deque(maxlen=max_events)
        else:
            self.events = []
        self.metrics = metrics or Metrics()
        #: Attached :class:`~repro.obs.monitor.MonitorSuite`, or None.
        self.monitors = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def install(
        cls, env: Any, capture: bool = True, max_events: Optional[int] = None
    ) -> "Tracer":
        """Create a tracer and attach it as ``env.tracer``."""
        tracer = cls(env, capture=capture, max_events=max_events)
        env.tracer = tracer
        return tracer

    def uninstall(self) -> None:
        """Detach from the environment (recorded data stays readable)."""
        if getattr(self.env, "tracer", None) is self:
            self.env.tracer = None

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, etype: str, **fields: Any) -> None:
        """Record one event at the current simulated time."""
        now = self.env.now
        if self.capture:
            events = self.events
            if self.max_events is not None and len(events) == self.max_events:
                self.dropped_events += 1
            events.append(TraceEvent(now, etype, fields))
        aggregate = _AGGREGATORS.get(etype)
        if aggregate is not None:
            aggregate(self.metrics, fields)
        monitors = self.monitors
        if monitors is not None:
            monitors.observe(etype, now, fields)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events_of(self, *etypes: str) -> List[TraceEvent]:
        """All captured events of the given type(s), in emission order."""
        wanted = set(etypes)
        return [event for event in self.events if event.type in wanted]

    def count(self, etype: str) -> int:
        """Number of captured events of *etype*."""
        return sum(1 for event in self.events if event.type == etype)

    # ------------------------------------------------------------------
    # Export and reporting
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write the captured events to *path*, one JSON object per line.

        Returns the number of events written.  Field values that are not
        JSON-native are rendered with ``repr``.

        When the ring buffer overflowed (``dropped_events > 0``) the file
        starts with one :data:`EV_TRACE_META` record carrying the drop
        count, so offline tools (``python -m repro.obs summarize``) can
        warn that the trace is truncated instead of silently reading it
        as complete.  Complete traces are written byte-identically to
        before this record existed.
        """
        with open(path, "w") as handle:
            if self.dropped_events:
                meta = {
                    "t": 0.0,
                    "type": EV_TRACE_META,
                    "dropped_events": self.dropped_events,
                    "captured_events": len(self.events),
                }
                handle.write(json.dumps(meta))
                handle.write("\n")
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), default=repr))
                handle.write("\n")
        return len(self.events)

    def summary(self) -> Dict[str, Any]:
        """A JSON-serializable report: metrics plus derived ratios.

        ``derived`` contains the quantities the paper's claims are stated
        in, e.g. wire messages per stream call (the buffering amortization
        of §2) and mean promise claim latency.
        """
        return summary_from_metrics(
            self.metrics, len(self.events), dropped_events=self.dropped_events
        )

    def summary_json(self, path: str) -> Dict[str, Any]:
        """Write :meth:`summary` to *path* as JSON; returns the report."""
        report = self.summary()
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True, default=repr)
            handle.write("\n")
        return report

    def __repr__(self) -> str:
        return "<Tracer events=%d capture=%r>" % (len(self.events), self.capture)


def summary_from_metrics(
    metrics: Metrics, event_count: int, dropped_events: int = 0
) -> Dict[str, Any]:
    """The :meth:`Tracer.summary` report, computable from any metrics
    registry — including one rebuilt offline from an exported JSONL trace
    (see :func:`replay_metrics` and the ``summarize`` CLI subcommand).

    ``dropped_events`` (from :attr:`Tracer.dropped_events` live, or the
    trace's :data:`EV_TRACE_META` record offline) is surfaced in the
    report so a ring-buffer-truncated trace is never read as complete.
    """
    report = metrics.summary()
    calls = metrics.total("stream.calls")
    wire_messages = metrics.total("net.messages_sent")
    claim_wait = metrics.merged_histogram("promise.claim_latency")
    derived: Dict[str, Any] = {
        "stream_calls": calls,
        "wire_messages": wire_messages,
        "messages_per_call": (wire_messages / calls) if calls else None,
        "promises_outstanding": (
            metrics.total("promise.created") - metrics.total("promise.resolved")
        ),
        "mean_claim_latency": claim_wait.mean if claim_wait.count else None,
    }
    report["derived"] = derived
    report["event_count"] = event_count
    report["dropped_events"] = dropped_events
    return report


def trace_meta(events: List[TraceEvent]) -> Dict[str, Any]:
    """The trace's metadata, folded from its :data:`EV_TRACE_META` records.

    Returns ``{"dropped_events": 0}`` for a complete trace.  Loaded traces
    keep meta records inline in the event list (consumers that dispatch on
    event type skip them naturally); this helper is how readers check for
    truncation without scanning themselves.
    """
    meta: Dict[str, Any] = {"dropped_events": 0}
    for event in events:
        if event.type == EV_TRACE_META:
            meta["dropped_events"] += event.fields.get("dropped_events", 0)
            if "captured_events" in event.fields:
                meta["captured_events"] = event.fields["captured_events"]
    return meta


def replay_metrics(events: List[TraceEvent]) -> Metrics:
    """Rebuild a :class:`Metrics` registry by re-aggregating *events*.

    Inverse of the live path: a loaded JSONL trace carries only raw events,
    so the CLI replays them through the same aggregation table the tracer
    uses online.
    """
    metrics = Metrics()
    for event in events:
        aggregate = _AGGREGATORS.get(event.type)
        if aggregate is not None:
            aggregate(metrics, event.fields)
    return metrics


def load_jsonl(path: str) -> List[TraceEvent]:
    """Read a trace exported with :meth:`Tracer.export_jsonl`.

    Returns the events in file order as :class:`TraceEvent` objects, so
    everything that consumes ``tracer.events`` — the span builder, the
    critical-path analyzer, the Chrome exporter, metric replay — works the
    same on a loaded trace.  Blank lines are skipped.
    """
    events: List[TraceEvent] = []
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            time = record.pop("t")
            etype = record.pop("type")
            events.append(TraceEvent(time, etype, record))
    return events


# ----------------------------------------------------------------------
# Event → metrics aggregation
# ----------------------------------------------------------------------
# Aggregation lives here, in one table, so instrumentation sites stay a
# single ``emit`` call and the metric vocabulary has one home.

def _agg_message_sent(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("net.messages_sent", node=fields["src"])
    metrics.observe("net.message_bytes", fields["bytes"], node=fields["src"])


def _agg_message_delivered(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("net.messages_delivered", node=fields["dst"])
    latency = fields.get("latency")
    if latency is not None:
        metrics.observe("net.delivery_latency", latency)


def _agg_message_dropped(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("net.messages_dropped", reason=fields["reason"])


def _agg_call_buffered(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.calls", stream=fields["stream"], kind=fields["kind"])
    metrics.observe(
        "stream.buffer_occupancy", fields["buffered"], stream=fields["stream"]
    )


def _agg_packet_sent(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.packets_sent", stream=fields["stream"])
    metrics.observe("stream.batch_size", fields["entries"], stream=fields["stream"])
    if fields.get("attempt", 0) > 0:
        metrics.inc("stream.retransmissions", stream=fields["stream"])


def _agg_call_delivered(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.calls_delivered", stream=fields["stream"])


def _agg_call_duplicate(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.duplicates", stream=fields["stream"])


def _agg_call_executing(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.calls_executing", stream=fields["stream"])


def _agg_call_completed(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc(
        "stream.calls_completed", stream=fields["stream"], status=fields["status"]
    )


def _agg_fork_spawned(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("concurrency.forks")


def _agg_reply_packet_sent(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.reply_packets_sent", stream=fields["stream"])
    metrics.observe(
        "stream.reply_batch_size", fields["entries"], stream=fields["stream"]
    )
    sacks = fields.get("sacks")
    if sacks:
        metrics.inc("stream.sack_ranges_sent", amount=sacks, stream=fields["stream"])


def _agg_window_stall(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.window_stalls", stream=fields["stream"])
    metrics.observe(
        "stream.window_deferred", fields["deferred"], stream=fields["stream"]
    )


def _agg_rtt_sample(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.observe("stream.rtt", fields["sample"], stream=fields["stream"])
    metrics.observe("stream.rto", fields["rto"], stream=fields["stream"])


def _agg_batch_limit(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.observe("stream.batch_limit", fields["limit"], stream=fields["stream"])


def _agg_call_resolved(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc(
        "stream.calls_resolved", stream=fields["stream"], status=fields["status"]
    )


def _agg_stream_break(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.breaks", side=fields["side"])


def _agg_stream_refused(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("stream.refused")


def _agg_guardian_crashed(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("guardian.crashes", guardian=fields["guardian"])


def _agg_guardian_destroyed(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("guardian.destroyed", guardian=fields["guardian"])


def _agg_promise_created(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("promise.created")


def _agg_promise_resolved(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("promise.resolved", status=fields["status"])
    metrics.observe("promise.resolve_latency", fields["age"])


def _agg_promise_claimed(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("promise.claims", ready=fields["ready"])


def _agg_promise_claim_latency(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.observe("promise.claim_latency", fields["wait"])


def _agg_promise_chained(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("promise.chained", kind=fields["kind"])


def _agg_vat_turn(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("vat.turns")
    metrics.observe("vat.turn_callbacks", fields["callbacks"])


def _agg_process_created(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("sim.processes_created")


def _agg_process_resumed(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("sim.process_resumptions")


def _agg_process_finished(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("sim.processes_finished", status=fields["status"])


def _agg_graph_routine(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("graph.routines", shard=fields["shard"])
    metrics.observe("graph.routine_cost", fields["cost"], shard=fields["shard"])
    if fields.get("migrated"):
        metrics.inc("graph.migrations", shard=fields["shard"])


def _agg_graph_epoch(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("graph.epochs", shard=fields["shard"])
    metrics.observe("graph.epoch_units", fields["units"], shard=fields["shard"])


def _agg_node_crash(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("net.node_crashes", node=fields["node"])


def _agg_node_recover(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("net.node_recoveries", node=fields["node"])


def _agg_partition(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("net.partitions")


def _agg_heal(metrics: Metrics, fields: Dict[str, Any]) -> None:
    metrics.inc("net.heals")


_AGGREGATORS = {
    EV_MESSAGE_SENT: _agg_message_sent,
    EV_MESSAGE_DELIVERED: _agg_message_delivered,
    EV_MESSAGE_DROPPED: _agg_message_dropped,
    EV_CALL_BUFFERED: _agg_call_buffered,
    EV_PACKET_SENT: _agg_packet_sent,
    EV_CALL_DELIVERED: _agg_call_delivered,
    EV_CALL_DUPLICATE: _agg_call_duplicate,
    EV_CALL_EXECUTING: _agg_call_executing,
    EV_CALL_COMPLETED: _agg_call_completed,
    EV_FORK_SPAWNED: _agg_fork_spawned,
    EV_REPLY_PACKET_SENT: _agg_reply_packet_sent,
    EV_CALL_RESOLVED: _agg_call_resolved,
    EV_WINDOW_STALL: _agg_window_stall,
    EV_RTT_SAMPLE: _agg_rtt_sample,
    EV_BATCH_LIMIT: _agg_batch_limit,
    EV_STREAM_BREAK: _agg_stream_break,
    EV_STREAM_REFUSED: _agg_stream_refused,
    EV_GUARDIAN_CRASHED: _agg_guardian_crashed,
    EV_GUARDIAN_DESTROYED: _agg_guardian_destroyed,
    EV_PROMISE_CREATED: _agg_promise_created,
    EV_PROMISE_RESOLVED: _agg_promise_resolved,
    EV_PROMISE_CLAIMED: _agg_promise_claimed,
    EV_PROMISE_CLAIM_LATENCY: _agg_promise_claim_latency,
    EV_PROMISE_CHAINED: _agg_promise_chained,
    EV_VAT_TURN: _agg_vat_turn,
    EV_GRAPH_ROUTINE: _agg_graph_routine,
    EV_GRAPH_EPOCH: _agg_graph_epoch,
    EV_PROCESS_CREATED: _agg_process_created,
    EV_PROCESS_RESUMED: _agg_process_resumed,
    EV_PROCESS_FINISHED: _agg_process_finished,
    EV_NODE_CRASH: _agg_node_crash,
    EV_NODE_RECOVER: _agg_node_recover,
    EV_PARTITION: _agg_partition,
    EV_HEAL: _agg_heal,
}
