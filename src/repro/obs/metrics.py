"""Metrics: counters and latency histograms aggregated during a run.

The registry has two histogram modes, chosen per :class:`Metrics`
instance:

* **exact** (the default) — a run produces at most a few hundred thousand
  observations, so histograms keep their raw samples and report exact
  means and percentiles.  Every simulation test uses this mode.
* **streaming** (``Metrics(streaming=True)``) — observations land in
  constant-memory log-bucketed :class:`~repro.obs.hist.StreamingHistogram`
  instances (~1% relative error on quantiles).  The open-loop load
  harness (``benchmarks/load``) runs in this mode: 10^5–10^6 agents'
  latency samples must never be retained raw.

Every counter and histogram is keyed by a metric *name* plus a small set
of labels (``node=...``, ``stream=...``, ``reason=...``), mirroring how
production systems (and the Reitz many-task runtime instrumentation in
PAPERS.md) break per-operation statistics down by entity.  A registry can
additionally forward writes into a
:class:`~repro.obs.timeseries.WindowedCollector` (``Metrics(collector=...)``)
so the same instrumentation sites also produce per-window timelines.

All values are plain Python numbers and the :meth:`Metrics.summary` report
is JSON-serializable, so tests and benchmarks can assert on it directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.hist import DEFAULT_RELATIVE_ERROR, StreamingHistogram

__all__ = ["Counter", "Histogram", "Metrics", "format_key"]

#: A label set, canonicalized as a sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(name: str, label_key: LabelKey) -> str:
    """Render ``name{k=v,...}`` (just ``name`` when there are no labels)."""
    if not label_key:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % kv for kv in label_key))


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return "Counter(%d)" % self.value


class Histogram:
    """Exact distribution of observed values (latencies, sizes, counts)."""

    __slots__ = ("_values", "_sorted")

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._sorted and self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self.total / len(self._values)

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def values(self) -> List[float]:
        """The raw observations, in observation order."""
        return list(self._values)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s observations into this histogram (in place).

        Merging an empty histogram — on either side — is a no-op for the
        non-empty one, and the result's statistics are exactly those of
        the pooled samples.  Returns ``self`` for chaining.
        """
        values = other.values()
        if values:
            if self._sorted and (not self._values or values[0] >= self._values[-1]):
                # Fast path: appending a sorted run that starts past our
                # current tail keeps the merged list sorted.
                self._sorted = all(
                    values[i] <= values[i + 1] for i in range(len(values) - 1)
                )
            else:
                self._sorted = False
            self._values.extend(values)
        return self

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0 <= p <= 100), nearest-rank method."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100], got %r" % (p,))
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(1, int(round(p / 100.0 * len(self._values) + 0.5)))
        return self._values[min(rank, len(self._values)) - 1]

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly summary statistics."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def __repr__(self) -> str:
        return "Histogram(count=%d, mean=%.4f)" % (self.count, self.mean)


class Metrics:
    """A registry of labelled counters and histograms.

    ``inc``/``observe`` create series lazily; readers use
    :meth:`counter_value` / :meth:`histogram` (exact label match) or
    :meth:`total` (sum over every label set of a name).

    ``streaming=True`` switches every histogram series to the
    constant-memory :class:`~repro.obs.hist.StreamingHistogram`
    (``relative_error`` bounds its quantile error); the default keeps the
    exact raw-sample :class:`Histogram` so existing tests see exact
    percentiles.  An attached ``collector``
    (:class:`~repro.obs.timeseries.WindowedCollector`) additionally
    receives every write, keyed by bare metric name, to build per-window
    timelines alongside the run totals.
    """

    def __init__(
        self,
        streaming: bool = False,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        collector: Optional[Any] = None,
    ) -> None:
        self.streaming = streaming
        self.relative_error = relative_error
        self.collector = collector
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Any] = {}

    def _new_histogram(self) -> Any:
        if self.streaming:
            return StreamingHistogram(self.relative_error)
        return Histogram()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Increment counter *name* (with *labels*) by *amount*."""
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        counter.inc(amount)
        if self.collector is not None:
            self.collector.inc(name, amount)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record *value* into histogram *name* (with *labels*)."""
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = self._new_histogram()
        histogram.observe(value)
        if self.collector is not None:
            self.collector.observe(name, value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> int:
        """The exact series' value (0 if never incremented)."""
        counter = self._counters.get((name, _label_key(labels)))
        return counter.value if counter is not None else 0

    def total(self, name: str) -> int:
        """Sum of counter *name* across all of its label sets."""
        return sum(
            counter.value
            for (counter_name, _), counter in self._counters.items()
            if counter_name == name
        )

    def histogram(self, name: str, **labels: Any) -> Any:
        """The histogram series (an empty one, of the registry's mode, if
        never observed)."""
        histogram = self._histograms.get((name, _label_key(labels)))
        return histogram if histogram is not None else self._new_histogram()

    def merged_histogram(self, name: str) -> Any:
        """All observations of *name* pooled across label sets."""
        merged = self._new_histogram()
        for (histogram_name, _), histogram in self._histograms.items():
            if histogram_name == name:
                merged.merge(histogram)
        return merged

    def counter_names(self) -> List[str]:
        return sorted({name for name, _ in self._counters})

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A JSON-serializable report of every series."""
        counters = {
            format_key(name, label_key): counter.value
            for (name, label_key), counter in sorted(self._counters.items())
        }
        histograms = {
            format_key(name, label_key): histogram.snapshot()
            for (name, label_key), histogram in sorted(self._histograms.items())
        }
        return {"counters": counters, "histograms": histograms}
