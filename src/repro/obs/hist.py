"""Constant-memory streaming histogram with bounded relative error.

The exact :class:`~repro.obs.metrics.Histogram` keeps every raw sample —
perfect for simulation tests ("a few hundred thousand observations") but
unusable under the open-loop load harness, where 10^5–10^6 simulated
agents produce one latency sample per request.  This module provides the
HDR/DDSketch-style alternative: **log-bucketed counts**.

A value ``v > 0`` lands in bucket ``ceil(log_gamma(v))`` where
``gamma = (1 + e) / (1 - e)`` for the configured relative error ``e``
(default 1%).  Bucket *i* covers ``(gamma^(i-1), gamma^i]`` and is
reported as the bucket midpoint ``2 * gamma^i / (gamma + 1)``, which is
within ``e`` of every value in the bucket — so any quantile estimate is
within ``e`` *relative* error of the exact sample quantile (zero is kept
in its own bucket and reported exactly).  Memory is O(distinct buckets):
a span of values from 1 microsecond to 1 hour needs ~1100 buckets at 1%
error, independent of how many observations fall into them.

Design properties the load harness leans on:

* **mergeable** — :meth:`merge` adds bucket counts; merging is
  associative and commutative, so per-window / per-node histograms roll
  up without replay (``tests/obs/test_hist.py`` pins associativity);
* **serializable** — :meth:`to_dict` / :meth:`from_dict` round-trip
  through JSON, so ``BENCH_PR8.json`` can carry full distributions and
  ``python -m repro.obs report`` can re-query them offline;
* **API-compatible** — ``count`` / ``total`` / ``mean`` / ``min`` /
  ``max`` / ``percentile`` / ``snapshot`` match the exact histogram, so
  :class:`~repro.obs.metrics.Metrics` can swap one for the other behind
  its ``streaming=`` mode flag.

``min``/``max`` are tracked exactly (they are single floats) and quantile
answers are clamped into ``[min, max]``, so the edges never show
bucket-rounding artifacts.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

__all__ = ["StreamingHistogram", "DEFAULT_RELATIVE_ERROR"]

#: Default bound on the relative error of quantile estimates (~1%).
DEFAULT_RELATIVE_ERROR = 0.01


class StreamingHistogram:
    """Log-bucketed distribution of non-negative values (latencies, sizes)."""

    __slots__ = (
        "relative_error",
        "_gamma",
        "_inv_log_gamma",
        "_half_width",
        "_buckets",
        "_zero_count",
        "count",
        "total",
        "_min",
        "_max",
    )

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                "relative_error must be in (0, 1), got %r" % (relative_error,)
            )
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        # Midpoint factor: bucket i is reported as 2*gamma^i/(gamma+1).
        self._half_width = 2.0 / (self._gamma + 1.0)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (must be >= 0)."""
        if value < 0.0:
            raise ValueError(
                "StreamingHistogram records non-negative values, got %r" % (value,)
            )
        if value == 0.0:
            self._zero_count += 1
        else:
            index = math.ceil(math.log(value) * self._inv_log_gamma)
            buckets = self._buckets
            buckets[index] = buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold *other*'s counts into this histogram (in place).

        Both sides must use the same ``relative_error`` (their bucket
        boundaries line up exactly); merging an empty histogram — on
        either side — is a no-op for the non-empty one.  Returns ``self``
        for chaining.
        """
        if not isinstance(other, StreamingHistogram):
            raise TypeError(
                "can only merge StreamingHistogram, got %r" % type(other).__name__
            )
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge histograms with different relative errors "
                "(%r vs %r)" % (self.relative_error, other.relative_error)
            )
        buckets = self._buckets
        for index, n in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        self._zero_count += other._zero_count
        self.count += other.count
        self.total += other.total
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        return self

    # ------------------------------------------------------------------
    # Reading (exact-Histogram-compatible surface)
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        return self.total / self.count

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def bucket_count(self) -> int:
        """Distinct non-empty buckets — the memory footprint driver."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0 <= p <= 100), nearest-rank over buckets.

        Within ``relative_error`` of the exact sample percentile; 0.0 for
        an empty histogram (matching the exact histogram's convention).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100], got %r" % (p,))
        if not self.count:
            return 0.0
        rank = max(1, int(round(p / 100.0 * self.count + 0.5)))
        rank = min(rank, self.count)
        remaining = rank - self._zero_count
        if remaining <= 0:
            return 0.0
        for index in sorted(self._buckets):
            remaining -= self._buckets[index]
            if remaining <= 0:
                estimate = self._half_width * self._gamma ** index
                # Clamp to the exactly-tracked range so the extreme
                # quantiles never exceed the observed min/max.
                return min(max(estimate, self.min), self.max)
        return self.max  # unreachable unless counts drifted

    def quantiles(self, *ps: float) -> Dict[str, float]:
        """Several percentiles at once, keyed ``p50``-style."""
        return {
            ("p%g" % p).replace(".", ""): self.percentile(p) for p in ps
        }

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly summary statistics (exact-histogram superset)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable full-fidelity encoding (sparse buckets)."""
        return {
            "relative_error": self.relative_error,
            "count": self.count,
            "total": self.total,
            "min": self._min,
            "max": self._max,
            "zero_count": self._zero_count,
            "buckets": {str(index): n for index, n in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamingHistogram":
        """Inverse of :meth:`to_dict` (JSON string keys are re-interned)."""
        histogram = cls(relative_error=data["relative_error"])
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram._min = data["min"]
        histogram._max = data["max"]
        histogram._zero_count = data["zero_count"]
        histogram._buckets = {int(index): n for index, n in data["buckets"].items()}
        return histogram

    def __repr__(self) -> str:
        return "StreamingHistogram(count=%d, buckets=%d, mean=%.4f)" % (
            self.count,
            self.bucket_count,
            self.mean,
        )
