"""Causal spans: fold the raw event stream into per-call span trees.

Every stream call, RPC, and fork carries a span context
``(trace_id, span_id, parent_span_id)`` minted at the caller (see
:func:`repro.obs.trace.mint_span`).  This module reconstructs, from a
captured or loaded trace, what each call *did* with its time:

* :func:`build_spans` — one :class:`CallSpan` per ``(stream, incarnation,
  seq)``, with the full phase timeline of the call;
* :func:`build_trees` — the causal forest: spans (calls and forks) linked
  parent → child via their span ids, one tree per trace;
* :func:`critical_path` / :func:`aggregate_critical_path` — where the
  latency went, per call and across the whole run;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON (load in ``chrome://tracing`` or Perfetto).

Phase model
-----------
A call's life is a chain of timestamps taken from consecutive events::

    t_buffered    stream.call_buffered    caller queued the call
    t_sent        stream.packet_sent      first packet covering its seq
    t_delivered   stream.call_delivered   receiver accepted it, in order
    t_exec_start  stream.call_executing   handler process spawned
    t_exec_end    stream.call_completed   handler outcome produced
    t_reply_sent  stream.reply_packet_sent  first reply covering its seq
    t_resolved    stream.call_resolved    caller's promise resolved

The six phase durations are the differences of consecutive timestamps
(``buffered``, ``call_on_wire``, ``queued``, ``executing``,
``reply_buffered``, ``reply_on_wire``), so for a complete span they sum
*exactly* to the end-to-end latency ``t_resolved - t_buffered`` — the
invariant ``tests/obs/test_spans.py`` pins on the Figure 3-1 workload.
Calls cut short by a stream break have partial timelines
(``span.complete`` is False) and are excluded from aggregates.

Claim time is joined separately via the call's promise id
(``promise.claim_latency``): it measures the *caller's* wait, which
overlaps the phases above rather than extending them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import (
    EV_CALL_BUFFERED,
    EV_CALL_COMPLETED,
    EV_CALL_DELIVERED,
    EV_CALL_EXECUTING,
    EV_CALL_RESOLVED,
    EV_FORK_SPAWNED,
    EV_GRAPH_EPOCH,
    EV_GRAPH_ROUTINE,
    EV_PACKET_SENT,
    EV_PROMISE_CLAIM_LATENCY,
    EV_REPLY_PACKET_SENT,
    TraceEvent,
)

__all__ = [
    "CallSpan",
    "SpanNode",
    "PHASES",
    "build_spans",
    "build_trees",
    "critical_path",
    "aggregate_critical_path",
    "format_tree",
    "graph_shard_breakdown",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Phase names in timeline order; durations in this order sum to the
#: end-to-end latency of a complete span.
PHASES = (
    "buffered",
    "call_on_wire",
    "queued",
    "executing",
    "reply_buffered",
    "reply_on_wire",
)

#: The timestamp attributes bounding the phases, in order (len(PHASES)+1).
_TIMELINE = (
    "t_buffered",
    "t_sent",
    "t_delivered",
    "t_exec_start",
    "t_exec_end",
    "t_reply_sent",
    "t_resolved",
)


class CallSpan:
    """One stream call's reconstructed timeline and span identity."""

    __slots__ = (
        "stream",
        "incarnation",
        "seq",
        "port",
        "kind",
        "trace_id",
        "span_id",
        "parent_span_id",
        "promise_id",
        "status",
        "claim_wait",
    ) + _TIMELINE

    def __init__(self, stream: str, incarnation: int, seq: int) -> None:
        self.stream = stream
        self.incarnation = incarnation
        self.seq = seq
        self.port: Optional[str] = None
        self.kind: Optional[str] = None
        self.trace_id: Optional[int] = None
        self.span_id: Optional[int] = None
        self.parent_span_id: Optional[int] = None
        self.promise_id: Optional[int] = None
        self.status: Optional[str] = None
        self.claim_wait: Optional[float] = None
        for name in _TIMELINE:
            setattr(self, name, None)

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True when every timeline timestamp was observed."""
        return all(getattr(self, name) is not None for name in _TIMELINE)

    @property
    def end_to_end(self) -> Optional[float]:
        """Latency from buffering to resolution (None if incomplete)."""
        if self.t_resolved is None or self.t_buffered is None:
            return None
        return self.t_resolved - self.t_buffered

    def phases(self) -> Dict[str, Optional[float]]:
        """Phase durations in timeline order; None where data is missing.

        For a complete span the values sum exactly to :attr:`end_to_end`
        (they are differences of consecutive timestamps).
        """
        durations: Dict[str, Optional[float]] = {}
        for index, phase in enumerate(PHASES):
            start = getattr(self, _TIMELINE[index])
            end = getattr(self, _TIMELINE[index + 1])
            durations[phase] = None if start is None or end is None else end - start
        return durations

    @property
    def name(self) -> str:
        return "%s %s seq=%d" % (self.kind or "call", self.port or "?", self.seq)

    def __repr__(self) -> str:
        return "<CallSpan %s on %s span=%r e2e=%r>" % (
            self.name,
            self.stream,
            self.span_id,
            self.end_to_end,
        )


class SpanNode:
    """One node of the causal forest: a call span or a fork."""

    __slots__ = ("kind", "name", "time", "trace_id", "span_id", "parent_span_id", "call", "children")

    def __init__(
        self,
        kind: str,
        name: str,
        time: float,
        trace_id: Optional[int],
        span_id: Optional[int],
        parent_span_id: Optional[int],
        call: Optional[CallSpan] = None,
    ) -> None:
        self.kind = kind  # "call" | "fork"
        self.name = name
        self.time = time
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.call = call
        self.children: List["SpanNode"] = []

    def __repr__(self) -> str:
        return "<SpanNode %s %r span=%r children=%d>" % (
            self.kind,
            self.name,
            self.span_id,
            len(self.children),
        )


# ----------------------------------------------------------------------
# Folding events into spans
# ----------------------------------------------------------------------
def build_spans(events: List[TraceEvent]) -> List[CallSpan]:
    """Fold *events* into one :class:`CallSpan` per call, in buffer order.

    Works on live ``tracer.events`` and on traces re-read with
    :func:`repro.obs.trace.load_jsonl` alike.  Only the first observation
    of each timestamp is kept, so retransmissions never move a phase
    boundary backwards.
    """
    spans: Dict[Any, CallSpan] = {}
    order: List[CallSpan] = []
    # (stream, incarnation) -> spans still waiting for t_sent / t_reply_sent,
    # so packet-range scans touch only unsent calls, not the whole run.
    awaiting_send: Dict[Any, List[CallSpan]] = {}
    awaiting_reply: Dict[Any, List[CallSpan]] = {}
    by_promise: Dict[int, CallSpan] = {}

    for event in events:
        etype = event.type
        fields = event.fields
        if etype == EV_CALL_BUFFERED:
            key = (fields["stream"], fields["incarnation"], fields["seq"])
            span = spans.get(key)
            if span is None:
                span = CallSpan(*key)
                spans[key] = span
                order.append(span)
            span.port = fields.get("port")
            span.kind = fields.get("kind")
            span.trace_id = fields.get("trace_id")
            span.span_id = fields.get("span_id")
            span.parent_span_id = fields.get("parent_span_id")
            span.promise_id = fields.get("promise_id")
            if span.t_buffered is None:
                span.t_buffered = event.time
            stream_key = (fields["stream"], fields["incarnation"])
            awaiting_send.setdefault(stream_key, []).append(span)
            awaiting_reply.setdefault(stream_key, []).append(span)
            if span.promise_id is not None:
                by_promise[span.promise_id] = span
        elif etype == EV_PACKET_SENT:
            lo, hi = fields.get("seq_lo"), fields.get("seq_hi")
            if lo is None:
                continue
            stream_key = (fields["stream"], fields["incarnation"])
            waiting = awaiting_send.get(stream_key)
            if not waiting:
                continue
            still = []
            for span in waiting:
                if span.t_sent is None and lo <= span.seq <= hi:
                    span.t_sent = event.time
                elif span.t_sent is None:
                    still.append(span)
            awaiting_send[stream_key] = still
        elif etype == EV_CALL_DELIVERED:
            span = spans.get((fields["stream"], fields["incarnation"], fields["seq"]))
            if span is not None and span.t_delivered is None:
                span.t_delivered = event.time
        elif etype == EV_CALL_EXECUTING:
            span = spans.get((fields["stream"], fields["incarnation"], fields["seq"]))
            if span is not None and span.t_exec_start is None:
                span.t_exec_start = event.time
        elif etype == EV_CALL_COMPLETED:
            span = spans.get((fields["stream"], fields["incarnation"], fields["seq"]))
            if span is not None and span.t_exec_end is None:
                span.t_exec_end = event.time
        elif etype == EV_REPLY_PACKET_SENT:
            stream_key = (fields["stream"], fields["incarnation"])
            waiting = awaiting_reply.get(stream_key)
            if not waiting:
                continue
            lo, hi = fields.get("seq_lo"), fields.get("seq_hi")
            completed = fields.get("completed_seq", 0)
            still = []
            for span in waiting:
                covered = (
                    lo is not None and lo <= span.seq <= hi
                ) or span.seq <= completed
                if span.t_reply_sent is None and covered:
                    # Only a reply sent after the call finished executing can
                    # carry its outcome; the completed_seq watermark
                    # guarantees that, the entry range re-checks it for
                    # retransmitted reply entries.
                    if span.t_exec_end is None or event.time >= span.t_exec_end:
                        span.t_reply_sent = event.time
                        continue
                if span.t_reply_sent is None:
                    still.append(span)
            awaiting_reply[stream_key] = still
        elif etype == EV_CALL_RESOLVED:
            span = spans.get((fields["stream"], fields["incarnation"], fields["seq"]))
            if span is not None and span.t_resolved is None:
                span.t_resolved = event.time
                span.status = fields.get("status")
        elif etype == EV_PROMISE_CLAIM_LATENCY:
            span = by_promise.get(fields.get("promise_id"))
            if span is not None and span.claim_wait is None:
                span.claim_wait = fields.get("wait")
    return order


def build_trees(events: List[TraceEvent]) -> List[SpanNode]:
    """The causal forest: call and fork spans linked parent → child.

    Returns the root nodes (``parent_span_id`` 0, or orphans whose parent
    never appeared in the trace window), ordered by trace id then start
    time.  Each :class:`SpanNode` of kind ``"call"`` carries its
    :class:`CallSpan` in ``node.call``.
    """
    nodes: Dict[int, SpanNode] = {}
    order: List[SpanNode] = []
    for span in build_spans(events):
        if span.span_id is None:
            continue
        node = SpanNode(
            "call",
            span.name,
            span.t_buffered if span.t_buffered is not None else 0.0,
            span.trace_id,
            span.span_id,
            span.parent_span_id,
            call=span,
        )
        nodes[span.span_id] = node
        order.append(node)
    for event in events:
        if event.type != EV_FORK_SPAWNED:
            continue
        fields = event.fields
        span_id = fields.get("span_id")
        if span_id is None or span_id in nodes:
            continue
        node = SpanNode(
            "fork",
            "fork %s" % fields.get("label", "?"),
            event.time,
            fields.get("trace_id"),
            span_id,
            fields.get("parent_span_id"),
        )
        nodes[span_id] = node
        order.append(node)

    roots: List[SpanNode] = []
    for node in order:
        parent = nodes.get(node.parent_span_id) if node.parent_span_id else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.time, child.span_id))
    roots.sort(key=lambda node: (node.trace_id or 0, node.time, node.span_id))
    return roots


def format_tree(roots: List[SpanNode]) -> str:
    """Render the causal forest as indented text (the ``spans`` CLI)."""
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        detail = ""
        if node.call is not None:
            e2e = node.call.end_to_end
            detail = " [%s]" % (
                "e2e=%.3f" % e2e if e2e is not None else "incomplete"
            )
        lines.append(
            "%s%s t=%.3f trace=%s span=%s%s"
            % ("  " * depth, node.name, node.time, node.trace_id, node.span_id, detail)
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Critical-path analysis
# ----------------------------------------------------------------------
def critical_path(span: CallSpan) -> Dict[str, Any]:
    """Per-call breakdown: each phase's duration and share of the total."""
    phases = span.phases()
    total = span.end_to_end
    dominant = None
    if total:
        dominant = max(
            (phase for phase in PHASES if phases[phase] is not None),
            key=lambda phase: phases[phase],
            default=None,
        )
    return {
        "call": span.name,
        "stream": span.stream,
        "seq": span.seq,
        "complete": span.complete,
        "end_to_end": total,
        "phases": phases,
        "dominant_phase": dominant,
        "claim_wait": span.claim_wait,
    }


#: Tail definitions shared with the SLO engine (:mod:`repro.obs.slo`):
#: span reports and SLO reports quote the same percentiles, through p999.
TAIL_PERCENTILES = (50.0, 99.0, 99.9)


def _percentile_summary(histogram: Any) -> Dict[str, float]:
    return {
        "p50": histogram.percentile(50),
        "p99": histogram.percentile(99),
        "p999": histogram.percentile(99.9),
    }


def aggregate_critical_path(spans: List[CallSpan]) -> Dict[str, Any]:
    """Where the run's latency went, summed over all complete spans.

    ``phase_totals`` sums each phase across complete calls;
    ``phase_fractions`` normalizes by the summed end-to-end latency (the
    fractions sum to 1.0 because the phases partition each call's
    latency).  ``end_to_end_percentiles`` and ``phase_percentiles`` carry
    the p50/p99/**p999** distribution summaries (exact, nearest-rank) so
    span reports and SLO reports (:mod:`repro.obs.slo`) agree on tail
    definitions.  The slowest call is included for drill-down.
    """
    from repro.obs.metrics import Histogram

    complete = [span for span in spans if span.complete]
    totals = {phase: 0.0 for phase in PHASES}
    phase_hists = {phase: Histogram() for phase in PHASES}
    e2e_hist = Histogram()
    e2e_total = 0.0
    slowest: Optional[CallSpan] = None
    for span in complete:
        for phase, duration in span.phases().items():
            totals[phase] += duration
            phase_hists[phase].observe(duration)
        e2e = span.end_to_end
        e2e_total += e2e
        e2e_hist.observe(e2e)
        if slowest is None or e2e > slowest.end_to_end:
            slowest = span
    return {
        "calls": len(spans),
        "complete_calls": len(complete),
        "end_to_end_total": e2e_total,
        "end_to_end_mean": (e2e_total / len(complete)) if complete else None,
        "end_to_end_percentiles": (
            _percentile_summary(e2e_hist) if complete else None
        ),
        "phase_totals": totals,
        "phase_percentiles": (
            {phase: _percentile_summary(phase_hists[phase]) for phase in PHASES}
            if complete
            else None
        ),
        "phase_fractions": (
            {phase: totals[phase] / e2e_total for phase in PHASES}
            if e2e_total
            else None
        ),
        "slowest_call": critical_path(slowest) if slowest is not None else None,
    }


# ----------------------------------------------------------------------
# Graph shard breakdown
# ----------------------------------------------------------------------
def graph_shard_breakdown(events: List[TraceEvent]) -> Dict[str, Dict[str, Any]]:
    """Per-shard accounting of graph execution, from the graph events.

    For each shard that executed routines or shipped epoch frames,
    returns ``routines`` (executions), ``migrated`` (executions a
    ``node_func`` re-routed here), ``busy`` (summed routine compute
    time), ``frames_out`` (epoch/result frames shipped from here) and
    ``units_out`` (deliveries inside them).  Empty when the trace has no
    graph events — the CLI uses that to keep non-graph reports
    unchanged.
    """
    shards: Dict[str, Dict[str, Any]] = {}

    def entry(shard: str) -> Dict[str, Any]:
        found = shards.get(shard)
        if found is None:
            found = shards[shard] = {
                "routines": 0,
                "migrated": 0,
                "busy": 0.0,
                "frames_out": 0,
                "units_out": 0,
            }
        return found

    for event in events:
        if event.type == EV_GRAPH_ROUTINE:
            fields = event.fields
            row = entry(fields["shard"])
            row["routines"] += 1
            row["busy"] += fields.get("cost", 0.0)
            if fields.get("migrated"):
                row["migrated"] += 1
        elif event.type == EV_GRAPH_EPOCH:
            fields = event.fields
            row = entry(fields["shard"])
            row["frames_out"] += 1
            row["units_out"] += fields.get("units", 0)
    return shards


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
# Timestamps: sim time is in milliseconds; the trace-event format wants
# microseconds, hence the ×1000.
_US_PER_SIM = 1000.0


def to_chrome_trace(events: List[TraceEvent]) -> Dict[str, Any]:
    """Render the trace as a Chrome trace-event JSON object.

    One track (pid) per stream, one row (tid) per call seq; each phase of
    each call becomes a complete ("X") slice, so the buffering, wire, and
    execution phases line up visually.  Open the written file in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    spans = build_spans(events)
    stream_pids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        pid = stream_pids.get(span.stream)
        if pid is None:
            pid = len(stream_pids) + 1
            stream_pids[span.stream] = pid
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": "stream %s" % span.stream},
                }
            )
        phases = span.phases()
        for index, phase in enumerate(PHASES):
            duration = phases[phase]
            if duration is None:
                continue
            start = getattr(span, _TIMELINE[index])
            trace_events.append(
                {
                    "name": "%s %s" % (span.name, phase),
                    "cat": phase,
                    "ph": "X",
                    "ts": start * _US_PER_SIM,
                    "dur": duration * _US_PER_SIM,
                    "pid": pid,
                    "tid": span.seq,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_span_id": span.parent_span_id,
                        "status": span.status,
                    },
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: List[TraceEvent], path: str) -> int:
    """Write :func:`to_chrome_trace` to *path*; returns the slice count."""
    document = to_chrome_trace(events)
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return sum(1 for entry in document["traceEvents"] if entry["ph"] == "X")
