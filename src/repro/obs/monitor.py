"""Online invariant monitors: check transport guarantees as events flow.

The trace layer already records *what happened*; the monitors check that
what happened is *allowed*.  A :class:`MonitorSuite` attaches to a
:class:`~repro.obs.trace.Tracer` and observes every event at emission
time, so an invariant violation surfaces at the simulated moment it
occurs — with the offending event in hand — instead of as a mysterious
wrong answer at the end of the run.

The monitored invariants are the paper's transport guarantees:

* **exactly-once delivery** — a receiver never delivers the same call
  serial twice within one stream incarnation (duplicates on the wire are
  fine and show up as ``stream.call_duplicate``; a second
  ``stream.call_delivered`` is the bug);
* **FIFO call order** — within a stream incarnation, calls are delivered
  in exactly the order they were buffered (seq 1, 2, 3, ... with no gap
  and no reordering);
* **no claim before resolve** — a promise never claims *ready* before a
  resolution was recorded for it;
* **resolve once** — a promise is never resolved twice.

By default violations *raise* :class:`MonitorViolation` immediately.
Raises from emit sites inside handler bodies are converted to handler
failures by the dispatcher's catch-all, so every violation is also
recorded in :attr:`MonitorSuite.violations`; the traced test fixtures
assert that list is empty at teardown, catching both paths.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.trace import (
    EV_CALL_BUFFERED,
    EV_CALL_DELIVERED,
    EV_PROMISE_CLAIMED,
    EV_PROMISE_CREATED,
    EV_PROMISE_RESOLVED,
)

__all__ = [
    "MonitorViolation",
    "Monitor",
    "ExactlyOnceMonitor",
    "FifoOrderMonitor",
    "PromiseLifecycleMonitor",
    "MonitorSuite",
    "DEFAULT_MONITORS",
]


class MonitorViolation(AssertionError):
    """A transport invariant was broken.

    Subclasses ``AssertionError`` so a violation fails a test even if it
    escapes through generic ``except Exception`` plumbing.  Carries the
    structured context of the offense.
    """

    def __init__(
        self, monitor: str, message: str, time: float, etype: str, fields: Dict[str, Any]
    ) -> None:
        super().__init__(
            "[%s] %s (at t=%.6f on %s %r)" % (monitor, message, time, etype, fields)
        )
        self.monitor = monitor
        self.message = message
        self.time = time
        self.etype = etype
        self.fields = dict(fields)


class Monitor:
    """Base class: override :meth:`observe`, call :meth:`report` on a
    violation."""

    name = "monitor"

    def __init__(self, suite: "MonitorSuite") -> None:
        self.suite = suite

    def observe(self, etype: str, time: float, fields: Dict[str, Any]) -> None:
        raise NotImplementedError

    def report(
        self, message: str, time: float, etype: str, fields: Dict[str, Any]
    ) -> None:
        self.suite._record(
            MonitorViolation(self.name, message, time, etype, fields)
        )


class ExactlyOnceMonitor(Monitor):
    """Each call serial is delivered at most once per stream incarnation."""

    name = "exactly-once"

    def __init__(self, suite: "MonitorSuite") -> None:
        super().__init__(suite)
        self._delivered: Set[Tuple[str, int, int]] = set()

    def observe(self, etype: str, time: float, fields: Dict[str, Any]) -> None:
        if etype != EV_CALL_DELIVERED:
            return
        seq = fields.get("seq")
        if seq is None:
            return  # synthetic/partial event: nothing to check
        key = (fields.get("stream"), fields.get("incarnation", 0), seq)
        if key in self._delivered:
            self.report(
                "call seq=%d delivered twice on %s (incarnation %d)"
                % (key[2], key[0], key[1]),
                time,
                etype,
                fields,
            )
            return
        self._delivered.add(key)


class FifoOrderMonitor(Monitor):
    """Within a stream incarnation, delivery order equals call order.

    Call serials start at 1 per incarnation and the receiver must deliver
    them gaplessly ascending; buffered serials must likewise ascend on the
    sending side (a regression there would fake FIFO delivery trivially).
    """

    name = "fifo-order"

    def __init__(self, suite: "MonitorSuite") -> None:
        super().__init__(suite)
        self._last_delivered: Dict[Tuple[str, int], int] = {}
        self._last_buffered: Dict[Tuple[str, int], int] = {}

    def observe(self, etype: str, time: float, fields: Dict[str, Any]) -> None:
        seq = fields.get("seq")
        if seq is None:
            return  # synthetic/partial event: nothing to check
        if etype == EV_CALL_DELIVERED:
            key = (fields.get("stream"), fields.get("incarnation", 0))
            expected = self._last_delivered.get(key, 0) + 1
            if seq != expected:
                self.report(
                    "out-of-order delivery on %s: got seq=%d, expected %d"
                    % (key[0], seq, expected),
                    time,
                    etype,
                    fields,
                )
            self._last_delivered[key] = seq
        elif etype == EV_CALL_BUFFERED:
            key = (fields.get("stream"), fields.get("incarnation", 0))
            last = self._last_buffered.get(key, 0)
            if seq <= last:
                self.report(
                    "non-ascending call serial on %s: seq=%d after %d"
                    % (key[0], seq, last),
                    time,
                    etype,
                    fields,
                )
            self._last_buffered[key] = seq


class PromiseLifecycleMonitor(Monitor):
    """Promises resolve at most once and never claim ready unresolved."""

    name = "promise-lifecycle"

    def __init__(self, suite: "MonitorSuite") -> None:
        super().__init__(suite)
        self._resolved: Set[int] = set()

    def observe(self, etype: str, time: float, fields: Dict[str, Any]) -> None:
        promise_id = fields.get("promise_id")
        if promise_id is None:
            return  # synthetic/partial event: nothing to check
        if etype == EV_PROMISE_CREATED:
            # A promise born ready (make_fulfilled / make_broken) never
            # emits promise.resolved: its creation *is* its resolution.
            # Without this, a continuation-driven claim of such a promise
            # would misreport as claim-before-resolve.
            if fields.get("resolved"):
                self._resolved.add(promise_id)
        elif etype == EV_PROMISE_RESOLVED:
            if promise_id in self._resolved:
                self.report(
                    "promise #%d resolved twice" % promise_id, time, etype, fields
                )
                return
            self._resolved.add(promise_id)
        elif etype == EV_PROMISE_CLAIMED:
            if fields.get("ready") and promise_id not in self._resolved:
                self.report(
                    "promise #%d claimed ready before any resolution" % promise_id,
                    time,
                    etype,
                    fields,
                )


#: The monitors every suite starts with: the paper's transport guarantees.
DEFAULT_MONITORS: List[Any] = [
    ExactlyOnceMonitor,
    FifoOrderMonitor,
    PromiseLifecycleMonitor,
]


class MonitorSuite:
    """A set of online monitors attached to one tracer.

    With ``strict=True`` (the default) the first violation raises
    immediately at the emit site; either way every violation is appended
    to :attr:`violations` for end-of-run assertions.

    The suite starts with :data:`DEFAULT_MONITORS` (pass ``monitors=`` to
    override the roster) and further oracles can be plugged in with
    :meth:`register` — the chaos engine (:mod:`repro.chaos`) uses this to
    run campaign-specific end-to-end oracles alongside the transport
    invariants.
    """

    def __init__(
        self, strict: bool = True, monitors: Optional[List[Any]] = None
    ) -> None:
        self.strict = strict
        self.violations: List[MonitorViolation] = []
        factories = DEFAULT_MONITORS if monitors is None else monitors
        self.monitors: List[Monitor] = [factory(self) for factory in factories]

    # ------------------------------------------------------------------
    @classmethod
    def install(
        cls,
        tracer: Any,
        strict: bool = True,
        monitors: Optional[List[Any]] = None,
    ) -> "MonitorSuite":
        """Create a suite and attach it as ``tracer.monitors``."""
        suite = cls(strict=strict, monitors=monitors)
        tracer.monitors = suite
        return suite

    def register(self, factory: Any) -> Monitor:
        """Instantiate *factory* (a :class:`Monitor` subclass or any
        ``suite -> Monitor`` callable) and add it to the roster.

        The new monitor observes every event emitted from now on; returns
        the instance so callers can inspect its state afterwards.
        """
        monitor = factory(self)
        self.monitors.append(monitor)
        return monitor

    def observe(self, etype: str, time: float, fields: Dict[str, Any]) -> None:
        """Called by :meth:`Tracer.emit` for every event."""
        for monitor in self.monitors:
            monitor.observe(etype, time, fields)

    def _record(self, violation: MonitorViolation) -> None:
        self.violations.append(violation)
        if self.strict:
            raise violation

    def assert_clean(self) -> None:
        """Raise the first recorded violation, if any."""
        if self.violations:
            raise self.violations[0]

    def __repr__(self) -> str:
        return "<MonitorSuite monitors=%d violations=%d>" % (
            len(self.monitors),
            len(self.violations),
        )
