"""Declarative SLOs and load-report rendering.

An **SLO spec** states, per workload, the service levels the system must
hold under open-loop load: latency ceilings at p50/p99/**p999** (the same
tail definitions the span aggregation quotes — see
:data:`repro.obs.spans.TAIL_PERCENTILES`) and a floor on max sustainable
throughput (the highest offered rate the stepped-rate search found the
system still serving without the flow-control window collapsing).  Specs
are plain dicts so they can live in JSON next to the reports they judge::

    {
      "echo": {
        "latency": {"p50": 0.01, "p99": 0.05, "p999": 0.25},
        "throughput_floor": 2000.0
      }
    }

The **load report** (``BENCH_PR8.json``, written by
``benchmarks/load/run_load.py``) carries one entry per workload:

* ``latency`` — quantile summary of the run at the measured rate;
* ``latency_hist`` — the full :class:`~repro.obs.hist.StreamingHistogram`
  encoding, so offline tools can re-query any quantile;
* ``steps`` — the stepped-rate search ladder (offered vs achieved rate,
  sustained verdict, per-step quantiles);
* ``max_sustainable_throughput`` — the search result;
* ``windows`` — the per-window timeline rows from the
  :class:`~repro.obs.timeseries.WindowedCollector` (latency-over-time,
  throughput-over-time, in-flight occupancy);
* ``slo`` — the verdicts this module computed for it.

``python -m repro.obs report`` renders the summary + verdict tables;
``python -m repro.obs top`` replays the window rows as live ``top``-style
frames.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SloSpec",
    "evaluate_slo",
    "load_report",
    "render_report",
    "render_top_frame",
    "top_frames",
    "DEFAULT_SLO_SPEC",
]

#: The checks a workload spec may state, with their comparison direction.
#: Latency percentiles are ceilings; the throughput floor is a floor.
LATENCY_KEYS = ("p50", "p99", "p999")

#: Default spec used by the load harness when none is supplied.  Ceilings
#: are stated in simulated seconds and calibrated against the committed
#: quick-mode topology (see ``benchmarks/load/harness.py``); the
#: throughput floors are what the committed snapshots sustain with >2x
#: headroom on the search ladder.
DEFAULT_SLO_SPEC: Dict[str, Any] = {
    "echo": {
        "latency": {"p50": 0.050, "p99": 0.250, "p999": 0.500},
        "throughput_floor": 400.0,
    },
    "pipeline": {
        "latency": {"p50": 0.100, "p99": 0.400, "p999": 0.800},
        "throughput_floor": 150.0,
    },
    "kv": {
        "latency": {"p50": 0.050, "p99": 0.250, "p999": 0.500},
        "throughput_floor": 400.0,
    },
}


class SloSpec:
    """A parsed SLO spec: per-workload ceilings and floors."""

    def __init__(self, spec: Optional[Dict[str, Any]] = None) -> None:
        self.spec = dict(spec if spec is not None else DEFAULT_SLO_SPEC)
        for workload, entry in self.spec.items():
            unknown = set(entry) - {"latency", "throughput_floor"}
            if unknown:
                raise ValueError(
                    "unknown SLO keys %r for workload %r" % (sorted(unknown), workload)
                )
            bad = set(entry.get("latency", {})) - set(LATENCY_KEYS)
            if bad:
                raise ValueError(
                    "unknown latency percentiles %r for workload %r "
                    "(known: %s)" % (sorted(bad), workload, ", ".join(LATENCY_KEYS))
                )

    @classmethod
    def from_file(cls, path: str) -> "SloSpec":
        with open(path) as handle:
            return cls(json.load(handle))

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.spec)

    def workloads(self) -> List[str]:
        return sorted(self.spec)

    def evaluate(self, workload: str, summary: Dict[str, Any]) -> Dict[str, Any]:
        """Judge one workload's load summary against its spec entry.

        *summary* needs ``latency`` (a quantile dict) and, when the spec
        states a throughput floor, ``max_sustainable_throughput``.
        Returns ``{"checks": [...], "ok": bool}``; a workload with no
        spec entry passes vacuously with no checks.
        """
        entry = self.spec.get(workload)
        checks: List[Dict[str, Any]] = []
        if entry is None:
            return {"checks": checks, "ok": True}
        latency = summary.get("latency", {})
        for key, ceiling in sorted(entry.get("latency", {}).items()):
            actual = latency.get(key)
            checks.append(
                {
                    "check": "latency_" + key,
                    "kind": "ceiling",
                    "limit": ceiling,
                    "actual": actual,
                    "ok": actual is not None and actual <= ceiling,
                }
            )
        floor = entry.get("throughput_floor")
        if floor is not None:
            actual = summary.get("max_sustainable_throughput")
            checks.append(
                {
                    "check": "max_sustainable_throughput",
                    "kind": "floor",
                    "limit": floor,
                    "actual": actual,
                    "ok": actual is not None and actual >= floor,
                }
            )
        return {"checks": checks, "ok": all(check["ok"] for check in checks)}


def evaluate_slo(
    spec: SloSpec, workloads: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Judge every workload in a load report; overall ``ok`` is the AND."""
    verdicts = {
        name: spec.evaluate(name, summary) for name, summary in sorted(workloads.items())
    }
    return {
        "workloads": verdicts,
        "ok": all(verdict["ok"] for verdict in verdicts.values()),
    }


# ----------------------------------------------------------------------
# Report rendering (the ``report`` and ``top`` CLI subcommands)
# ----------------------------------------------------------------------
def load_report(path: str) -> Dict[str, Any]:
    """Read a ``BENCH_PR8.json``-shaped load report."""
    with open(path) as handle:
        report = json.load(handle)
    if "workloads" not in report:
        raise ValueError(
            "%s does not look like a load report (no 'workloads' key)" % (path,)
        )
    return report


def _fmt(value: Any, width: int = 10, digits: int = 4) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return ("%%%d.%df" % (width, digits)) % value
    return str(value).rjust(width)


def render_report(report: Dict[str, Any]) -> str:
    """The per-workload summary + SLO verdict tables, as terminal text."""
    lines: List[str] = []
    mode = report.get("mode", "?")
    lines.append(
        "load report: mode=%s  agents=%s  workloads=%d"
        % (mode, report.get("agents", "?"), len(report.get("workloads", {})))
    )
    for name in sorted(report.get("workloads", {})):
        entry = report["workloads"][name]
        latency = entry.get("latency", {})
        lines.append("")
        lines.append("workload %s" % name)
        lines.append(
            "  requests=%s  errors=%s  reconnects=%s  max_sustainable=%s ops/s"
            % (
                entry.get("requests"),
                entry.get("errors"),
                entry.get("reconnects"),
                _fmt(entry.get("max_sustainable_throughput"), 1, 1).strip(),
            )
        )
        lines.append(
            "  latency: p50=%s  p99=%s  p999=%s  max=%s"
            % (
                _fmt(latency.get("p50"), 1),
                _fmt(latency.get("p99"), 1),
                _fmt(latency.get("p999"), 1),
                _fmt(latency.get("max"), 1),
            )
        )
        steps = entry.get("steps") or []
        if steps:
            lines.append("  rate ladder (offered -> achieved, sustained?):")
            for step in steps:
                lines.append(
                    "    %8.1f -> %8.1f ops/s  p99=%s  %s"
                    % (
                        step["offered_rate"],
                        step["achieved_rate"],
                        _fmt(step.get("p99"), 1),
                        "sustained" if step["sustained"] else "COLLAPSED",
                    )
                )
        slo = entry.get("slo")
        if slo is not None:
            lines.append("  SLO: %s" % ("ok" if slo["ok"] else "BREACHED"))
            for check in slo["checks"]:
                lines.append(
                    "    %-28s %-8s limit=%s actual=%s  %s"
                    % (
                        check["check"],
                        check["kind"],
                        _fmt(check["limit"], 1),
                        _fmt(check["actual"], 1),
                        "ok" if check["ok"] else "FAIL",
                    )
                )
    overall = report.get("slo", {}).get("ok")
    if overall is not None:
        lines.append("")
        lines.append("overall SLO verdict: %s" % ("ok" if overall else "BREACHED"))
    return "\n".join(lines)


_BAR_WIDTH = 24


def _bar(value: float, peak: float) -> str:
    if peak <= 0.0:
        return " " * _BAR_WIDTH
    filled = int(round(_BAR_WIDTH * min(value / peak, 1.0)))
    return ("#" * filled).ljust(_BAR_WIDTH)


def render_top_frame(
    name: str, rows: List[Dict[str, Any]], index: int
) -> str:
    """One ``top``-style frame: the window at *index* over its run context.

    Shows the current window's throughput/latency/occupancy plus a small
    scrolling tail of earlier windows with throughput bars, so replaying
    frames in sequence reads like watching the run live.
    """
    row = rows[index]
    peak_rate = max((r.get("load.completed_rate", 0) or 0) for r in rows) or 1.0
    lines = [
        "obs top — %s   window %d/%d   t=[%.2f, %.2f)"
        % (name, index + 1, len(rows), row["t0"], row["t1"]),
        "  throughput %8.1f ops/s   offered %8.1f ops/s   in-flight %s (max %s)"
        % (
            row.get("load.completed_rate", 0.0) or 0.0,
            row.get("load.issued_rate", 0.0) or 0.0,
            _fmt(row.get("load.inflight_last"), 1, 0),
            _fmt(row.get("load.inflight_max"), 1, 0),
        ),
        "  latency    p50=%s  p99=%s  p999=%s  max=%s"
        % (
            _fmt(row.get("load.latency_p50"), 1),
            _fmt(row.get("load.latency_p99"), 1),
            _fmt(row.get("load.latency_p999"), 1),
            _fmt(row.get("load.latency_max"), 1),
        ),
        "  errors     %s   reconnects %s   churn %s"
        % (
            _fmt(row.get("load.errors", 0), 1, 0),
            _fmt(row.get("load.reconnects", 0), 1, 0),
            _fmt(row.get("load.churn", 0), 1, 0),
        ),
        "",
        "  %-16s %-*s %10s %10s" % ("window", _BAR_WIDTH, "throughput", "ops/s", "p99"),
    ]
    tail = rows[max(0, index - 9): index + 1]
    for past in tail:
        rate = past.get("load.completed_rate", 0.0) or 0.0
        marker = "▶" if past is row else " "
        lines.append(
            " %s[%7.2f,%7.2f) %s %10.1f %10s"
            % (
                marker,
                past["t0"],
                past["t1"],
                _bar(rate, peak_rate),
                rate,
                _fmt(past.get("load.latency_p99"), 1),
            )
        )
    return "\n".join(lines)


def top_frames(report: Dict[str, Any], workload: str) -> Iterable[str]:
    """Every frame of *workload*'s window replay, in time order."""
    entry = report.get("workloads", {}).get(workload)
    if entry is None:
        raise KeyError(
            "no workload %r in report (known: %s)"
            % (workload, ", ".join(sorted(report.get("workloads", {}))))
        )
    rows = entry.get("windows") or []
    for index in range(len(rows)):
        yield render_top_frame(workload, rows, index)
