"""Pytest fixtures for trace-driven tests.

Loaded as a pytest plugin from the repository's top-level ``conftest.py``,
so both ``tests/`` and ``benchmarks/`` can write mechanism-level
assertions::

    def test_exactly_once(traced_system):
        system = traced_system(latency=1.0)
        ...
        assert system.tracer.metrics.total("stream.duplicates") == 0
"""

from __future__ import annotations

import pytest

from repro.obs.trace import Tracer

__all__ = ["traced_env", "traced_system"]


@pytest.fixture
def traced_env():
    """A fresh simulation environment with a tracer already attached."""
    from repro.sim.kernel import Environment

    env = Environment()
    Tracer.install(env)
    return env


@pytest.fixture
def traced_system():
    """Factory for :class:`ArgusSystem` instances with tracing enabled.

    Returns a callable accepting the same keyword arguments as
    ``ArgusSystem``; deterministic cheap-network defaults match the
    ``system`` fixture in ``tests/conftest.py``.
    """
    from repro.entities.system import ArgusSystem

    def build(**kwargs):
        kwargs.setdefault("latency", 1.0)
        kwargs.setdefault("kernel_overhead", 0.1)
        kwargs.setdefault("tracing", True)
        return ArgusSystem(**kwargs)

    return build
