"""Pytest fixtures for trace-driven tests.

Loaded as a pytest plugin from the repository's top-level ``conftest.py``,
so both ``tests/`` and ``benchmarks/`` can write mechanism-level
assertions::

    def test_exactly_once(traced_system):
        system = traced_system(latency=1.0)
        ...
        assert system.tracer.metrics.total("stream.duplicates") == 0

Both fixtures attach the standard :class:`~repro.obs.monitor.MonitorSuite`
to every tracer they hand out, so transport-invariant violations
(duplicate delivery, call reordering, double resolution, claim before
resolve) raise at the simulated moment they occur — and are re-asserted
at teardown, which catches raises that handler plumbing swallowed.

When the environment variable ``REPRO_TRACE_DIR`` names a directory and a
traced test *fails*, each fixture exports its captured events there as
``<testname>.jsonl`` — CI uploads that directory as a build artifact, so
a red run ships the evidence needed to replay it with ``python -m
repro.obs``.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.obs.monitor import MonitorSuite
from repro.obs.trace import Tracer

__all__ = ["traced_env", "traced_system"]


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Stamp each test item with its call-phase report, so fixtures can
    tell at teardown whether the test body failed."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        item.rep_call = report


def _failed(request) -> bool:
    report = getattr(request.node, "rep_call", None)
    return report is not None and report.failed


def _export_on_failure(request, tracer: Tracer, suffix: str = "") -> None:
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if not trace_dir or not _failed(request):
        return
    os.makedirs(trace_dir, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    path = os.path.join(trace_dir, "%s%s.jsonl" % (stem, suffix))
    try:
        tracer.export_jsonl(path)
    except OSError:
        pass  # artifact export is best-effort; never mask the real failure


@pytest.fixture
def traced_env(request):
    """A fresh simulation environment with a tracer (and the standard
    invariant monitors) already attached."""
    from repro.sim.kernel import Environment

    env = Environment()
    tracer = Tracer.install(env)
    suite = MonitorSuite.install(tracer)
    yield env
    _export_on_failure(request, tracer)
    suite.assert_clean()


@pytest.fixture
def traced_system(request):
    """Factory for :class:`ArgusSystem` instances with tracing enabled.

    Returns a callable accepting the same keyword arguments as
    ``ArgusSystem``; deterministic cheap-network defaults match the
    ``system`` fixture in ``tests/conftest.py``.  Every built system gets
    the standard monitor suite; all suites are re-checked at teardown.
    """
    from repro.entities.system import ArgusSystem

    built = []

    def build(**kwargs):
        kwargs.setdefault("latency", 1.0)
        kwargs.setdefault("kernel_overhead", 0.1)
        kwargs.setdefault("tracing", True)
        system = ArgusSystem(**kwargs)
        if system.tracer is not None:
            MonitorSuite.install(system.tracer)
        built.append(system)
        return system

    yield build
    for index, system in enumerate(built):
        tracer = system.tracer
        if tracer is None:
            continue
        _export_on_failure(
            request, tracer, suffix="" if len(built) == 1 else "-%d" % index
        )
        if tracer.monitors is not None:
            tracer.monitors.assert_clean()
