"""Observability: structured tracing, spans, and metrics for the simulation.

See :mod:`repro.obs.trace` for the tracer (typed events, JSONL export,
summary report), :mod:`repro.obs.spans` for causal span trees /
critical-path analysis / Chrome trace export, :mod:`repro.obs.monitor`
for the online invariant monitors, and :mod:`repro.obs.metrics` for the
counter/histogram registry.  Tracing is disabled by default and is
enabled per run with ``ArgusSystem(tracing=True)`` or
``Tracer.install(env)``.  Exported traces are analyzed offline with
``python -m repro.obs`` (see :mod:`repro.obs.__main__`).
"""

from repro.obs.hist import StreamingHistogram
from repro.obs.metrics import Counter, Histogram, Metrics
from repro.obs.monitor import MonitorSuite, MonitorViolation
from repro.obs.slo import SloSpec, evaluate_slo
from repro.obs.spans import (
    CallSpan,
    SpanNode,
    aggregate_critical_path,
    build_spans,
    build_trees,
    critical_path,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.timeseries import WindowedCollector
from repro.obs.trace import TraceEvent, Tracer, load_jsonl, mint_span

__all__ = [
    "Counter",
    "Histogram",
    "Metrics",
    "SloSpec",
    "StreamingHistogram",
    "WindowedCollector",
    "evaluate_slo",
    "MonitorSuite",
    "MonitorViolation",
    "CallSpan",
    "SpanNode",
    "TraceEvent",
    "Tracer",
    "aggregate_critical_path",
    "build_spans",
    "build_trees",
    "critical_path",
    "load_jsonl",
    "mint_span",
    "to_chrome_trace",
    "write_chrome_trace",
]
