"""Observability: structured tracing and metrics for the simulation.

See :mod:`repro.obs.trace` for the tracer (typed events, JSONL export,
summary report) and :mod:`repro.obs.metrics` for the counter/histogram
registry.  Tracing is disabled by default and is enabled per run with
``ArgusSystem(tracing=True)`` or ``Tracer.install(env)``.
"""

from repro.obs.metrics import Counter, Histogram, Metrics
from repro.obs.trace import TraceEvent, Tracer

__all__ = ["Counter", "Histogram", "Metrics", "TraceEvent", "Tracer"]
