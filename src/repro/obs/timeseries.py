"""Windowed time-series: per-sim-time-window counters, histograms, gauges.

The load harness needs *latency over time*, *throughput over time* and
*occupancy over time* for runs with 10^5–10^6 requests — without keeping
any per-request record.  :class:`WindowedCollector` buckets observations
into fixed-width simulated-time windows; each window holds plain counters,
:class:`~repro.obs.hist.StreamingHistogram` distributions, and min/mean/
max gauge samples, so a whole run reduces to ``O(windows x series)``
memory regardless of traffic volume.

The collector reads its clock from a callable (typically
``lambda: env.now``), so writers never pass timestamps explicitly and the
:class:`~repro.obs.metrics.Metrics` registry can forward into a collector
transparently (``Metrics(collector=...)``).

``rows()`` flattens the windows into JSON-ready dicts — the schema the
``BENCH_PR8.json`` load report embeds and ``python -m repro.obs top``
replays.  A ``max_windows`` cap turns the store into a ring (oldest
windows evicted, counted in ``dropped_windows``) for genuinely unbounded
runs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.hist import DEFAULT_RELATIVE_ERROR, StreamingHistogram

__all__ = ["WindowedCollector", "WindowStats"]


class WindowStats:
    """One window's aggregates: counters, distributions, gauges."""

    __slots__ = ("index", "counters", "histograms", "gauges")

    def __init__(self, index: int) -> None:
        self.index = index
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, StreamingHistogram] = {}
        #: name -> [n, total, min, max, last]
        self.gauges: Dict[str, List[float]] = {}


class WindowedCollector:
    """Aggregate observations into fixed-width simulated-time windows."""

    def __init__(
        self,
        window: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_windows: Optional[int] = None,
    ) -> None:
        if window <= 0.0:
            raise ValueError("window width must be positive, got %r" % (window,))
        if max_windows is not None and max_windows <= 0:
            raise ValueError("max_windows must be positive, got %r" % (max_windows,))
        self.window = window
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.relative_error = relative_error
        self.max_windows = max_windows
        #: Windows evicted by the ``max_windows`` ring cap.
        self.dropped_windows = 0
        self._windows: Dict[int, WindowStats] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _window_at(self, t: Optional[float]) -> WindowStats:
        if t is None:
            t = self.clock()
        index = int(t // self.window)
        stats = self._windows.get(index)
        if stats is None:
            stats = self._windows[index] = WindowStats(index)
            if self.max_windows is not None and len(self._windows) > self.max_windows:
                oldest = min(self._windows)
                del self._windows[oldest]
                self.dropped_windows += 1
        return stats

    def inc(self, name: str, amount: float = 1, t: Optional[float] = None) -> None:
        """Add *amount* to counter *name* in the window covering *t* (or now)."""
        counters = self._window_at(t).counters
        counters[name] = counters.get(name, 0) + amount

    def observe(self, name: str, value: float, t: Optional[float] = None) -> None:
        """Record *value* into the windowed distribution *name*."""
        histograms = self._window_at(t).histograms
        histogram = histograms.get(name)
        if histogram is None:
            histogram = histograms[name] = StreamingHistogram(self.relative_error)
        histogram.observe(value)

    def gauge(self, name: str, value: float, t: Optional[float] = None) -> None:
        """Record one sample of an instantaneous level (occupancy, queue)."""
        gauges = self._window_at(t).gauges
        entry = gauges.get(name)
        if entry is None:
            gauges[name] = [1, value, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value
            entry[4] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        return len(self._windows)

    def counter_series(self, name: str) -> List[Any]:
        """``[(window_start, value), ...]`` for counter *name*, time order."""
        return [
            (stats.index * self.window, stats.counters.get(name, 0))
            for stats in self._sorted_windows()
        ]

    def merged_histogram(self, name: str) -> StreamingHistogram:
        """Distribution *name* pooled across every window."""
        merged = StreamingHistogram(self.relative_error)
        for stats in self._windows.values():
            histogram = stats.histograms.get(name)
            if histogram is not None:
                merged.merge(histogram)
        return merged

    def _sorted_windows(self) -> List[WindowStats]:
        return [self._windows[index] for index in sorted(self._windows)]

    def rows(self) -> List[Dict[str, Any]]:
        """The per-window timeline as JSON-ready dicts, in time order.

        Each row carries the window bounds, every counter both raw and as
        a per-second rate, every distribution as quantile summary columns
        (``<name>_p50`` etc.), and every gauge as mean/max columns.
        """
        rows: List[Dict[str, Any]] = []
        width = self.window
        for stats in self._sorted_windows():
            row: Dict[str, Any] = {
                "t0": stats.index * width,
                "t1": (stats.index + 1) * width,
            }
            for name, value in sorted(stats.counters.items()):
                row[name] = value
                row[name + "_rate"] = value / width
            for name, histogram in sorted(stats.histograms.items()):
                row[name + "_count"] = histogram.count
                row[name + "_mean"] = histogram.mean
                row[name + "_p50"] = histogram.percentile(50)
                row[name + "_p99"] = histogram.percentile(99)
                row[name + "_p999"] = histogram.percentile(99.9)
                row[name + "_max"] = histogram.max
            for name, (n, total, lo, hi, last) in sorted(stats.gauges.items()):
                row[name + "_mean"] = total / n
                row[name + "_min"] = lo
                row[name + "_max"] = hi
                row[name + "_last"] = last
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Serialization (full fidelity, unlike the flattened rows)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "relative_error": self.relative_error,
            "dropped_windows": self.dropped_windows,
            "windows": [
                {
                    "index": stats.index,
                    "counters": dict(stats.counters),
                    "histograms": {
                        name: histogram.to_dict()
                        for name, histogram in stats.histograms.items()
                    },
                    "gauges": {name: list(entry) for name, entry in stats.gauges.items()},
                }
                for stats in self._sorted_windows()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WindowedCollector":
        collector = cls(
            window=data["window"], relative_error=data["relative_error"]
        )
        collector.dropped_windows = data.get("dropped_windows", 0)
        for entry in data["windows"]:
            stats = WindowStats(entry["index"])
            stats.counters = dict(entry["counters"])
            stats.histograms = {
                name: StreamingHistogram.from_dict(payload)
                for name, payload in entry["histograms"].items()
            }
            stats.gauges = {name: list(value) for name, value in entry["gauges"].items()}
            collector._windows[stats.index] = stats
        return collector

    def __repr__(self) -> str:
        return "WindowedCollector(window=%r, windows=%d)" % (
            self.window,
            len(self._windows),
        )
