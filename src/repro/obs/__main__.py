"""Trace analysis CLI: ``python -m repro.obs <subcommand> trace.jsonl``.

Operates offline on a trace exported with ``Tracer.export_jsonl`` (or an
example's ``--trace DIR`` flag).  Subcommands:

``summarize``
    Replay the events through the metric aggregators and print the same
    summary report a live ``tracer.summary()`` would give.

``spans``
    Print the causal forest: every call and fork span, indented under the
    span that caused it, with end-to-end latency per call.

``critical-path``
    Aggregate phase breakdown across all complete calls — where the
    run's latency went (buffering, wire, queueing, execution, reply
    path) — plus the slowest single call.  Use ``--per-call`` to list
    every call's breakdown.  Traces with promise-graph events get an
    extra per-shard table (routines, migrations, busy time, frames).

``chrome``
    Convert the trace to Chrome trace-event JSON; open the output in
    ``chrome://tracing`` or https://ui.perfetto.dev.

Two further subcommands operate on a **load report** (the
``BENCH_PR8.json`` written by ``benchmarks/load/run_load.py``) instead of
a raw trace:

``report``
    Per-workload load summary: achieved throughput, latency quantiles
    through p999, the stepped-rate ladder, and the SLO verdict table.

``top``
    Replay the run's per-window timeline as live ``top``-style frames
    (throughput bars, in-flight occupancy, tail latency per window).
    ``--interval`` inserts a real-time delay between frames;
    the default of 0 prints all frames at once (CI-friendly).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.obs.slo import load_report, render_report, top_frames
from repro.obs.spans import (
    PHASES,
    aggregate_critical_path,
    build_spans,
    build_trees,
    critical_path,
    format_tree,
    graph_shard_breakdown,
    write_chrome_trace,
)
from repro.obs.trace import (
    EV_TRACE_META,
    load_jsonl,
    replay_metrics,
    summary_from_metrics,
    trace_meta,
)


def _load_trace(path: str):
    """Load a JSONL trace with actionable errors for bad inputs."""
    try:
        events = load_jsonl(path)
    except json.JSONDecodeError as exc:
        raise ValueError(
            "%s: not a JSONL trace (invalid JSON: %s)" % (path, exc)
        ) from None
    if not events:
        raise ValueError(
            "%s: trace contains no events (was it exported with tracing "
            "enabled?)" % (path,)
        )
    return events


def _load_report(path: str):
    """Load a load-report JSON with actionable errors for bad inputs."""
    try:
        return load_report(path)
    except json.JSONDecodeError as exc:
        raise ValueError(
            "%s: not a load report (invalid JSON: %s)" % (path, exc)
        ) from None


def _cmd_summarize(args: argparse.Namespace) -> int:
    events = _load_trace(args.trace)
    meta = trace_meta(events)
    events = [event for event in events if event.type != EV_TRACE_META]
    metrics = replay_metrics(events)
    report = summary_from_metrics(
        metrics, len(events), dropped_events=meta["dropped_events"]
    )
    if meta["dropped_events"]:
        sys.stderr.write(
            "warning: trace is TRUNCATED — the ring buffer dropped %d events "
            "before export; counts and histograms cover only the %d retained "
            "events\n" % (meta["dropped_events"], len(events))
        )
    json.dump(report, sys.stdout, indent=2, sort_keys=True, default=repr)
    sys.stdout.write("\n")
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    events = _load_trace(args.trace)
    roots = build_trees(events)
    if not roots:
        print("no spans in trace (was it recorded with tracing enabled?)")
        return 1
    print(format_tree(roots))
    return 0


def _print_graph_shards(shards) -> None:
    """The per-shard graph section; prints nothing for non-graph traces."""
    if not shards:
        return
    total_busy = sum(row["busy"] for row in shards.values())
    print("graph shards (routine executions grouped by shard):")
    print(
        "    %-12s %9s %9s %10s %7s %8s %9s"
        % ("shard", "routines", "migrated", "busy", "busy%", "frames", "units")
    )
    for shard in sorted(shards):
        row = shards[shard]
        print(
            "    %-12s %9d %9d %10.3f %6.1f%% %8d %9d"
            % (
                shard,
                row["routines"],
                row["migrated"],
                row["busy"],
                100.0 * row["busy"] / total_busy if total_busy else 0.0,
                row["frames_out"],
                row["units_out"],
            )
        )


def _cmd_critical_path(args: argparse.Namespace) -> int:
    events = _load_trace(args.trace)
    spans = build_spans(events)
    report = aggregate_critical_path(spans)
    if args.per_call:
        for span in spans:
            detail = critical_path(span)
            print(
                "%-40s e2e=%s"
                % (
                    detail["call"],
                    "%.3f" % detail["end_to_end"]
                    if detail["end_to_end"] is not None
                    else "incomplete",
                )
            )
            for phase in PHASES:
                duration = detail["phases"][phase]
                if duration is not None:
                    print("    %-14s %10.3f" % (phase, duration))
        print()
    print(
        "calls: %d (%d complete)" % (report["calls"], report["complete_calls"])
    )
    shards = graph_shard_breakdown(events)
    if not report["complete_calls"]:
        _print_graph_shards(shards)
        return 1
    total = report["end_to_end_total"]
    print("end-to-end total: %.3f  mean: %.3f" % (total, report["end_to_end_mean"]))
    tails = report["end_to_end_percentiles"]
    print(
        "end-to-end percentiles: p50=%.3f  p99=%.3f  p999=%.3f"
        % (tails["p50"], tails["p99"], tails["p999"])
    )
    print("phase breakdown (summed over complete calls; p999 per phase):")
    phase_tails = report["phase_percentiles"]
    for phase in PHASES:
        duration = report["phase_totals"][phase]
        print(
            "    %-14s %10.3f  (%5.1f%%)  p999=%.3f"
            % (
                phase,
                duration,
                100.0 * duration / total if total else 0.0,
                phase_tails[phase]["p999"],
            )
        )
    slowest = report["slowest_call"]
    if slowest is not None:
        print(
            "slowest call: %s on %s (e2e=%.3f, dominant phase: %s)"
            % (
                slowest["call"],
                slowest["stream"],
                slowest["end_to_end"],
                slowest["dominant_phase"],
            )
        )
    _print_graph_shards(shards)
    return 0


def _cmd_chrome(args: argparse.Namespace) -> int:
    events = _load_trace(args.trace)
    slices = write_chrome_trace(events, args.output)
    print("wrote %d slices to %s" % (slices, args.output))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = _load_report(args.report)
    print(render_report(report))
    slo = report.get("slo")
    return 0 if slo is None or slo.get("ok") else 1


def _cmd_top(args: argparse.Namespace) -> int:
    report = _load_report(args.report)
    workloads = sorted(report.get("workloads", {}))
    if not workloads:
        print("report has no workloads")
        return 1
    workload = args.workload or workloads[0]
    frames = list(top_frames(report, workload))
    if not frames:
        print("workload %r recorded no windows" % (workload,))
        return 1
    for index, frame in enumerate(frames):
        if args.interval > 0:
            # Live replay: repaint in place like top(1).
            sys.stdout.write("\x1b[2J\x1b[H")
        print(frame)
        if args.interval > 0 and index + 1 < len(frames):
            time.sleep(args.interval)
        elif args.interval == 0 and index + 1 < len(frames):
            print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze an exported JSONL simulation trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="metrics summary replayed from events")
    p_sum.add_argument("trace", help="path to a trace .jsonl file")
    p_sum.set_defaults(func=_cmd_summarize)

    p_spans = sub.add_parser("spans", help="print the causal span forest")
    p_spans.add_argument("trace", help="path to a trace .jsonl file")
    p_spans.set_defaults(func=_cmd_spans)

    p_cp = sub.add_parser(
        "critical-path", help="aggregate per-phase latency breakdown"
    )
    p_cp.add_argument("trace", help="path to a trace .jsonl file")
    p_cp.add_argument(
        "--per-call", action="store_true", help="also list each call's breakdown"
    )
    p_cp.set_defaults(func=_cmd_critical_path)

    p_chrome = sub.add_parser("chrome", help="export Chrome trace-event JSON")
    p_chrome.add_argument("trace", help="path to a trace .jsonl file")
    p_chrome.add_argument(
        "-o", "--output", default="trace.chrome.json", help="output path"
    )
    p_chrome.set_defaults(func=_cmd_chrome)

    p_report = sub.add_parser(
        "report", help="summarize a load report (BENCH_PR8.json) with SLO verdicts"
    )
    p_report.add_argument("report", help="path to a load report .json file")
    p_report.set_defaults(func=_cmd_report)

    p_top = sub.add_parser(
        "top", help="replay a load report's per-window timeline as top-style frames"
    )
    p_top.add_argument("report", help="path to a load report .json file")
    p_top.add_argument(
        "-w", "--workload", default=None, help="workload to replay (default: first)"
    )
    p_top.add_argument(
        "-i",
        "--interval",
        type=float,
        default=0.0,
        help="seconds between frames (0 = print all frames at once)",
    )
    p_top.set_defaults(func=_cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        # Bad inputs (missing/empty/corrupt files) are user errors, not
        # analyzer bugs: one actionable line on stderr, exit 2, no
        # traceback.
        sys.stderr.write("error: %s\n" % (exc,))
        return 2


if __name__ == "__main__":
    sys.exit(main())
