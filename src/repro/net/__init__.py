"""Simulated network substrate: nodes, cost model, faults (DESIGN.md §2)."""

from repro.net.faults import FaultPlan, schedule_crash, schedule_partition
from repro.net.message import HEADER_BYTES, Message
from repro.net.network import Network, NetworkStats, Node, NodeDown

__all__ = [
    "FaultPlan",
    "HEADER_BYTES",
    "Message",
    "Network",
    "NetworkStats",
    "Node",
    "NodeDown",
    "schedule_crash",
    "schedule_partition",
]
