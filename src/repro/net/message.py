"""Network messages and size accounting.

The paper's performance argument for streams is about *physical* messages:

    "Stream calls and their replies, however, are buffered and sent when
     convenient ...  Buffering allows us to amortize the overhead of kernel
     calls and the transmission delays for messages over several calls,
     especially for small calls and replies."

A :class:`Message` is one physical datagram.  Its payload is opaque to the
network; the transport layer packs one or many call requests / replies /
acks into it.  Sizes are explicit so the cost model can charge transmission
time per byte.
"""

from __future__ import annotations

import itertools
from typing import Any

__all__ = ["Message", "HEADER_BYTES"]

#: Fixed per-datagram header cost in bytes (addressing, checksums, ...).
HEADER_BYTES = 64

_message_ids = itertools.count(1)


class Message:
    """One physical datagram travelling between two nodes."""

    __slots__ = (
        "msg_id",
        "src",
        "dst",
        "address",
        "payload",
        "payload_bytes",
        "wire_bytes",
        "send_time",
        "dst_incarnation",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        address: str,
        payload: Any,
        payload_bytes: int,
    ) -> None:
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0, got %r" % (payload_bytes,))
        self.msg_id = next(_message_ids)
        self.src = src
        self.dst = dst
        self.address = address
        self.payload = payload
        self.payload_bytes = payload_bytes
        #: Total bytes on the wire including the datagram header.  A plain
        #: attribute (not a property): the network reads it several times
        #: per send on the hot path.
        self.wire_bytes = HEADER_BYTES + payload_bytes
        self.send_time: float = -1.0
        #: Destination node incarnation at send time, stamped by the
        #: network.  A crash flushes the NIC queue: a datagram addressed
        #: to a previous incarnation is never delivered to the next one
        #: (otherwise a chaos-duplicated copy of an old stream's first
        #: packet could re-open the stream on a recovered node and
        #: re-execute already-delivered calls).  -1 until stamped.
        self.dst_incarnation: int = -1

    def __repr__(self) -> str:
        return "<Message #%d %s->%s/%s %dB>" % (
            self.msg_id,
            self.src,
            self.dst,
            self.address,
            self.wire_bytes,
        )
