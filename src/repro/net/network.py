"""The simulated network: nodes, links, cost model, delivery.

Substitutes for the real network under Mercury call-streams (DESIGN.md §2).
The model charges three costs per physical message, matching the overheads
the paper says buffering amortizes:

* ``kernel_overhead`` — fixed cost paid by the *sender's CPU* for each
  datagram (the "overhead of kernel calls");
* transmission time — ``wire_bytes / bandwidth``, also occupying the sender;
* ``latency`` — propagation delay in flight (plus optional jitter).

Delivery between a pair of nodes is FIFO (jitter never reorders a link);
loss, partitions and node crashes make the network *unreliable*, so the
stream transport above it must implement acknowledgements, retransmission
and deduplication to provide the exactly-once ordered semantics of §2.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from heapq import heappush

from repro.net.message import Message
from repro.sim.events import Event
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry

__all__ = ["Network", "Node", "NetworkStats", "NodeDown"]

_INF = float("inf")

#: Delivery callbacks receive the message; registered per (node, address).
DeliveryHandler = Callable[[Message], None]


class NodeDown(Exception):
    """An operation was attempted on a crashed node."""


class NetworkStats:
    """Counters for benchmark reporting.

    Slotted: the send path bumps several counters per message, and slot
    access is measurably cheaper than instance-dict access there.
    """

    __slots__ = (
        "messages_sent",
        "messages_delivered",
        "messages_dropped_loss",
        "messages_dropped_partition",
        "messages_dropped_crash",
        "messages_dropped_chaos",
        "messages_duplicated",
        "bytes_sent",
        "kernel_calls",
    )

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped_loss = 0
        self.messages_dropped_partition = 0
        self.messages_dropped_crash = 0
        self.messages_dropped_chaos = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0
        self.kernel_calls = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return "NetworkStats(%s)" % ", ".join(
            "%s=%d" % kv for kv in sorted(self.snapshot().items())
        )


class Node:
    """A network node; guardians (entities) live entirely on one node."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.alive = True
        #: Incarnation increments on every recovery.  The network stamps
        #: each datagram with the destination incarnation it was sent to
        #: and refuses to deliver across a recovery — a crash resets the
        #: "connection", so pre-crash traffic (including chaos-duplicated
        #: copies) can never replay into the next incarnation.
        self.incarnation = 0
        self._handlers: Dict[str, DeliveryHandler] = {}
        self._crash_listeners: list = []

    def __repr__(self) -> str:
        return "<Node %s %s>" % (self.name, "up" if self.alive else "DOWN")

    def register(self, address: str, handler: DeliveryHandler) -> None:
        """Attach a delivery handler for datagrams addressed to *address*."""
        if address in self._handlers:
            raise ValueError("address %r already registered on %s" % (address, self))
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        """Remove the delivery handler at *address* (idempotent)."""
        self._handlers.pop(address, None)

    def on_crash(self, listener: Callable[["Node"], None]) -> None:
        """Register a callback run when this node crashes."""
        self._crash_listeners.append(listener)

    def crash(self) -> None:
        """Take the node down; in-flight messages to it will be dropped."""
        if not self.alive:
            return
        self.alive = False
        tracer = self.network.env.tracer
        if tracer is not None:
            tracer.emit("node.crash", node=self.name, incarnation=self.incarnation)
        # A crashed NIC loses its queue: the node's pre-crash send/receive
        # backlog and link FIFO history must not constrain the traffic of
        # its next incarnation.
        self.network._forget_node_clocks(self.name)
        for listener in list(self._crash_listeners):
            listener(self)

    def recover(self) -> None:
        """Bring the node back up with a new incarnation."""
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        tracer = self.network.env.tracer
        if tracer is not None:
            tracer.emit("node.recover", node=self.name, incarnation=self.incarnation)

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.address)
        if handler is not None:
            handler(message)
        # Datagrams to unknown addresses are silently dropped, like UDP.


class Network:
    """The collection of nodes plus the link cost/fault model."""

    def __init__(
        self,
        env: Environment,
        latency: float = 1.0,
        bandwidth: float = float("inf"),
        kernel_overhead: float = 0.1,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        rng: Optional[RngRegistry] = None,
    ) -> None:
        if latency < 0 or kernel_overhead < 0 or jitter < 0:
            raise ValueError("latency, kernel_overhead and jitter must be >= 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1), got %r" % (loss_rate,))
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.latency = latency
        self.bandwidth = bandwidth
        self.kernel_overhead = kernel_overhead
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.rng = rng or RngRegistry(0)
        self.stats = NetworkStats()
        #: Optional per-message chaos (drop/delay/dup/reorder); see
        #: :class:`repro.net.faults.LinkFaultInjector`.  None keeps the
        #: send path bit-identical to the fault-free simulator.
        self.link_faults = None
        self._nodes: Dict[str, Node] = {}
        self._partitions: Set[Tuple[str, str]] = set()
        self._link_clock: Dict[Tuple[str, str], float] = {}
        # Per-node "NIC" serialization: kernel calls and transmissions on one
        # node happen one at a time, so per-message overhead is a genuine
        # throughput limit that batching amortizes (paper §2).
        self._nic_free: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        """Create a node named *name* (unique)."""
        if name in self._nodes:
            raise ValueError("node %r already exists" % (name,))
        node = Node(self, name)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        """The node named *name* (KeyError if absent)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError("no node named %r" % (name,)) from None

    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, in creation order."""
        return tuple(self._nodes.values())

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    @staticmethod
    def _pair(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def partition(self, a: str, b: str) -> None:
        """Sever communication between nodes *a* and *b* (both ways)."""
        self._partitions.add(self._pair(a, b))
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("net.partition", a=a, b=b)

    def heal(self, a: str, b: str) -> None:
        """Restore communication between nodes *a* and *b*."""
        self._partitions.discard(self._pair(a, b))
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("net.heal", a=a, b=b)

    def partitioned(self, a: str, b: str) -> bool:
        """Whether *a* and *b* currently cannot communicate."""
        return self._pair(a, b) in self._partitions

    # ------------------------------------------------------------------
    # Link-level chaos
    # ------------------------------------------------------------------
    def install_link_faults(self, injector) -> None:
        """Attach a :class:`~repro.net.faults.LinkFaultInjector` (or None).

        Every subsequent remote message consults it once: the message may
        be dropped, held up (FIFO-preserving congestion), rerouted past the
        FIFO clamp (reordering) or duplicated.  Passing ``None`` restores
        the undisturbed network.
        """
        self.link_faults = injector

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def transmission_time(self, message: Message) -> float:
        """Wire time for *message* at the configured bandwidth."""
        if self.bandwidth == float("inf"):
            return 0.0
        return message.wire_bytes / self.bandwidth

    def send(self, message: Message, want_done: bool = True) -> Optional[Event]:
        """Transmit *message*; returns the event of the sender's CPU being
        free again (after kernel overhead + transmission time).

        Local sends (src == dst) skip the network entirely: no kernel call,
        no latency — mirroring how Argus optimizes same-guardian calls.

        Callers that do not wait for the CPU-free moment (the stream
        transport fires and forgets) pass ``want_done=False`` and get
        ``None`` back: no Event object is built for a result nobody reads.

        The body open-codes :meth:`transmission_time`, the NIC max and the
        old ``_should_drop`` helper (same check order, same counters, same
        RNG draws) — this is the hottest non-kernel path in the simulator;
        see benchmarks/perf.
        """
        src_name = message.src
        dst_name = message.dst
        nodes = self._nodes
        src = nodes.get(src_name)
        if src is None:
            self.node(src_name)  # raises the canonical KeyError
        if not src.alive:
            raise NodeDown("cannot send from crashed node %r" % (src_name,))
        env = self.env
        now = env._now
        message.send_time = now

        if src_name == dst_name:
            done = None
            if want_done:
                done = Event(env)
                done.succeed()
            # Delivered on the next simulation tick, no generator frame.
            env.call_soon(self._finish_local, message, src)
            return done

        wire_bytes = message.wire_bytes
        stats = self.stats
        stats.messages_sent += 1
        stats.kernel_calls += 1
        stats.bytes_sent += wire_bytes
        tracer = env.tracer
        if tracer is not None:
            tracer.emit(
                "message.sent",
                src=src_name,
                dst=dst_name,
                address=message.address,
                bytes=wire_bytes,
                payload=type(message.payload).__name__,
            )
        bandwidth = self.bandwidth
        busy = self.kernel_overhead
        if bandwidth != _INF:
            busy += wire_bytes / bandwidth
        # The sending NIC handles one message at a time: this message's
        # kernel call starts only once earlier ones are done.
        nic = self._nic_free
        free = nic.get(src_name)
        if free is None or free < now:
            send_done = now + busy
        else:
            send_done = free + busy
        nic[src_name] = send_done

        # Drop checks, in the historical _should_drop order: partition,
        # unknown destination, random loss.
        partitions = self._partitions
        if partitions and (
            ((src_name, dst_name) if src_name <= dst_name else (dst_name, src_name))
            in partitions
        ):
            stats.messages_dropped_partition += 1
            self._trace_drop(message, "partition")
        elif (dst := nodes.get(dst_name)) is None:
            stats.messages_dropped_crash += 1
            self._trace_drop(message, "no_such_node")
        else:
            loss_rate = self.loss_rate
            if loss_rate > 0.0 and self.rng.stream("net.loss").random() < loss_rate:
                stats.messages_dropped_loss += 1
                self._trace_drop(message, "loss")
            else:
                # Stamp the destination incarnation: a datagram addressed
                # to this incarnation dies with it (crash = NIC reset), so
                # late copies can never reach the recovered node.
                message.dst_incarnation = dst.incarnation
                faults = self.link_faults
                if faults is None:
                    # Fast path: exactly one FIFO delivery.
                    flight = self.latency
                    if self.jitter:
                        flight += self.rng.stream("net.jitter").uniform(
                            0.0, self.jitter
                        )
                    arrival = send_done + flight
                    # FIFO per directed link: never deliver before an
                    # earlier message.
                    link = (src_name, dst_name)
                    clock = self._link_clock
                    prev = clock.get(link)
                    if prev is not None and prev > arrival:
                        arrival = prev
                    clock[link] = arrival
                    # The receiving side pays a kernel call too, serialized
                    # on its own NIC — but only after the message arrives.
                    # Open-coded env.call_at (see the bucket layout in
                    # repro.sim.kernel): `arrival` can never be in the
                    # past here, and skipping the call frame is worth it
                    # on the hottest non-kernel path in the simulator.
                    buckets = env._buckets
                    b = buckets.get(arrival)
                    if b is None:
                        bpool = env._bucket_pool
                        if bpool:
                            b = bpool.pop()
                            lane = b[0]
                            lane.append(self._arrive)
                            lane.append((message, dst))
                            buckets[arrival] = b
                        else:
                            buckets[arrival] = [
                                [self._arrive, (message, dst)],
                                0,
                                None,
                                0,
                            ]
                        heappush(env._times, arrival)
                    else:
                        lane = b[0]
                        lane.append(self._arrive)
                        lane.append((message, dst))
                else:
                    self._send_with_faults(message, dst, send_done, faults)

        if not want_done:
            return None
        # Pre-triggered and scheduled directly at send_done — exactly a
        # Timeout's semantics without the Timeout + closure + re-schedule.
        done = Event(env)
        done._ok = True
        done._value = None
        env.schedule(done, send_done - now)
        return done

    def _send_with_faults(
        self, message: Message, dst: "Node", send_done: float, faults
    ) -> None:
        """Chaos-enabled delivery: the injector may drop, delay, duplicate
        or reorder; each resulting copy is delivered independently."""
        env = self.env
        deliveries = ((0.0, True),)
        decision = faults.decide(message.src, message.dst)
        if decision is not None:
            if decision is faults.DROP:
                self.stats.messages_dropped_chaos += 1
                self._trace_drop(message, "chaos")
                deliveries = ()
            else:
                deliveries = decision
                if len(deliveries) > 1:
                    self.stats.messages_duplicated += len(deliveries) - 1
        for extra_delay, fifo in deliveries:
            flight = self.latency + extra_delay
            if self.jitter:
                flight += self.rng.stream("net.jitter").uniform(0.0, self.jitter)
            arrival = send_done + flight
            if fifo:
                # FIFO per directed link: never deliver before an earlier
                # message.  Chaos-reordered copies and stray duplicates
                # skip the clamp (and leave the clock alone): they took an
                # independent slow path.
                link = (message.src, message.dst)
                arrival = max(arrival, self._link_clock.get(link, 0.0))
                self._link_clock[link] = arrival
            # The receiving side pays a kernel call too, serialized on its
            # own NIC — but only after the message arrives.
            env.call_at(arrival, self._arrive, message, dst)

    def _should_drop(self, message: Message) -> bool:
        if self.partitioned(message.src, message.dst):
            self.stats.messages_dropped_partition += 1
            self._trace_drop(message, "partition")
            return True
        if message.dst not in self._nodes:
            self.stats.messages_dropped_crash += 1
            self._trace_drop(message, "no_such_node")
            return True
        if self.loss_rate > 0.0:
            if self.rng.stream("net.loss").random() < self.loss_rate:
                self.stats.messages_dropped_loss += 1
                self._trace_drop(message, "loss")
                return True
        return False

    def _trace_drop(self, message: Message, reason: str) -> None:
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "message.dropped",
                src=message.src,
                dst=message.dst,
                reason=reason,
            )

    # ------------------------------------------------------------------
    # Delivery (scheduled callbacks — no generator processes; see
    # benchmarks/perf and DESIGN.md §8)
    # ------------------------------------------------------------------
    def _finish_local(self, message: Message, dst: Node) -> None:
        # Same-node messages skip the network: no kernel call, no latency,
        # delivered on the next simulation tick.
        if dst.alive:
            self.stats.messages_delivered += 1
            tracer = self.env.tracer
            if tracer is not None:
                tracer.emit(
                    "message.delivered",
                    src=message.src,
                    dst=message.dst,
                    local=True,
                    latency=self.env.now - message.send_time,
                )
            dst._deliver(message)

    def _arrive(self, message: Message, dst: Node) -> None:
        # Re-check conditions at arrival time: a partition or crash that
        # happened while the message was in flight still eats it.
        partitions = self._partitions
        if partitions:
            src_name = message.src
            dst_name = message.dst
            pair = (
                (src_name, dst_name) if src_name <= dst_name else (dst_name, src_name)
            )
            if pair in partitions:
                self.stats.messages_dropped_partition += 1
                self._trace_drop(message, "partition")
                return
        if not dst.alive or dst.incarnation != message.dst_incarnation:
            self.stats.messages_dropped_crash += 1
            self._trace_drop(
                message, "crash" if not dst.alive else "stale_incarnation"
            )
            return
        # Receiving kernel call, serialized on the destination NIC.
        self.stats.kernel_calls += 1
        env = self.env
        now = env._now
        nic = self._nic_free
        free = nic.get(dst.name)
        receive_start = now if free is None or free < now else free
        receive_done = receive_start + self.kernel_overhead
        nic[dst.name] = receive_done
        if receive_done > now:
            # Open-coded env.call_at, as in send(): receive_done > now,
            # so the past-check is vacuous.
            buckets = env._buckets
            b = buckets.get(receive_done)
            if b is None:
                bpool = env._bucket_pool
                if bpool:
                    b = bpool.pop()
                    lane = b[0]
                    lane.append(self._finish_remote)
                    lane.append((message, dst))
                    buckets[receive_done] = b
                else:
                    buckets[receive_done] = [
                        [self._finish_remote, (message, dst)],
                        0,
                        None,
                        0,
                    ]
                heappush(env._times, receive_done)
            else:
                lane = b[0]
                lane.append(self._finish_remote)
                lane.append((message, dst))
        else:
            self._finish_remote(message, dst)

    def _finish_remote(self, message: Message, dst: Node) -> None:
        if not dst.alive or dst.incarnation != message.dst_incarnation:
            self.stats.messages_dropped_crash += 1
            self._trace_drop(
                message, "crash" if not dst.alive else "stale_incarnation"
            )
            return
        self.stats.messages_delivered += 1
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "message.delivered",
                src=message.src,
                dst=message.dst,
                local=False,
                latency=self.env._now - message.send_time,
            )
        handler = dst._handlers.get(message.address)
        if handler is not None:
            handler(message)

    def _forget_node_clocks(self, name: str) -> None:
        """Drop *name*'s NIC backlog and link FIFO clocks (node crashed)."""
        self._nic_free.pop(name, None)
        for link in [link for link in self._link_clock if name in link]:
            del self._link_clock[link]
