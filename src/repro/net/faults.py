"""Fault-injection helpers: crashes, partitions, and link-level chaos.

The paper's stream semantics are defined largely by their behaviour under
"problems such as node crashes and network partitions"; these helpers script
such problems deterministically so that tests, the E9 benchmark and the
chaos-campaign engine (:mod:`repro.chaos`) can exercise break detection and
the ``unavailable``/``failure`` mapping.

Two layers of fault model live here:

* **scheduled faults** (:func:`schedule_crash`, :func:`schedule_partition`,
  :class:`FaultPlan`): timed node crashes/recoveries and partition/heal
  windows, installed as simulation processes;
* **link-level chaos** (:class:`LinkFaultProfile`,
  :class:`LinkFaultInjector`): per-message drop / delay / duplication /
  reordering applied inside :meth:`Network.send`, the adversarial traffic
  the transport's acknowledgement + retransmission + dedup machinery must
  absorb while preserving exactly-once FIFO delivery.

All randomness is routed through :mod:`repro.sim.rng` named streams (pass
an :class:`~repro.sim.rng.RngRegistry`), so fault draws never perturb
workload or jitter draws and campaigns replay bit-identically from a seed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.net.network import Network
from repro.sim.rng import RngRegistry

__all__ = [
    "FaultPlan",
    "LinkFaultInjector",
    "LinkFaultProfile",
    "schedule_crash",
    "schedule_partition",
]


def _require_nodes(network: Network, *names: str) -> None:
    """Validate node names eagerly, so a typo fails at scheduling time
    instead of surfacing mid-simulation as an opaque KeyError from inside
    a fault script process."""
    for name in names:
        try:
            network.node(name)
        except KeyError:
            raise ValueError(
                "cannot schedule fault: no node named %r (known: %s)"
                % (name, ", ".join(sorted(n.name for n in network.nodes())) or "none")
            ) from None


def schedule_crash(
    network: Network,
    node_name: str,
    at: float,
    recover_at: Optional[float] = None,
) -> None:
    """Crash *node_name* at simulated time *at*; optionally recover later."""
    if recover_at is not None and recover_at <= at:
        raise ValueError("recover_at must be after the crash time")
    _require_nodes(network, node_name)
    env = network.env

    def script():
        yield env.timeout(max(0.0, at - env.now))
        network.node(node_name).crash()
        if recover_at is not None:
            yield env.timeout(recover_at - at)
            network.node(node_name).recover()

    env.process(script())


def schedule_partition(
    network: Network,
    a: str,
    b: str,
    at: float,
    heal_at: Optional[float] = None,
) -> None:
    """Partition nodes *a* and *b* at time *at*; optionally heal later."""
    if heal_at is not None and heal_at <= at:
        raise ValueError("heal_at must be after the partition time")
    _require_nodes(network, a, b)
    env = network.env

    def script():
        yield env.timeout(max(0.0, at - env.now))
        network.partition(a, b)
        if heal_at is not None:
            yield env.timeout(heal_at - at)
            network.heal(a, b)

    env.process(script())


class FaultPlan:
    """A declarative schedule of faults, applied to a network at once.

    Example::

        plan = FaultPlan()
        plan.crash("db", at=50.0, recover_at=80.0)
        plan.partition("client", "db", at=10.0, heal_at=20.0)
        plan.apply(network)
    """

    def __init__(self) -> None:
        self._crashes: List[Tuple[str, float, Optional[float]]] = []
        self._partitions: List[Tuple[str, str, float, Optional[float]]] = []

    def crash(
        self, node_name: str, at: float, recover_at: Optional[float] = None
    ) -> "FaultPlan":
        """Schedule a crash (and optional recovery) of *node_name*."""
        self._crashes.append((node_name, at, recover_at))
        return self

    def partition(
        self, a: str, b: str, at: float, heal_at: Optional[float] = None
    ) -> "FaultPlan":
        """Schedule a partition (and optional heal) between *a* and *b*."""
        self._partitions.append((a, b, at, heal_at))
        return self

    def apply(self, network: Network) -> None:
        """Install every scheduled fault onto *network*.

        All node names are validated before *any* fault is installed, so a
        bad plan raises immediately and leaves the network untouched.
        """
        for node_name, _, _ in self._crashes:
            _require_nodes(network, node_name)
        for a, b, _, _ in self._partitions:
            _require_nodes(network, a, b)
        for node_name, at, recover_at in self._crashes:
            schedule_crash(network, node_name, at, recover_at)
        for a, b, at, heal_at in self._partitions:
            schedule_partition(network, a, b, at, heal_at)

    def __len__(self) -> int:
        return len(self._crashes) + len(self._partitions)

    @classmethod
    def random(
        cls,
        rng: Union[random.Random, RngRegistry],
        nodes: Sequence[str],
        horizon: float,
        max_faults: int = 4,
        crashable: Optional[Sequence[str]] = None,
        min_outage: float = 1.0,
        max_outage: float = 15.0,
    ) -> "FaultPlan":
        """A seeded random schedule of crashes and partitions.

        Used by the property-style stress tests and the chaos engine: all
        draws come from one dedicated random stream, so identical seeds
        regenerate identical plans on every platform and generating a plan
        never perturbs any other stream's draws.  Pass an
        :class:`~repro.sim.rng.RngRegistry` to draw from its
        ``"faults.plan"`` stream (preferred), or a pre-seeded
        ``random.Random`` to use directly.

        *crashable* restricts which nodes may crash (e.g. keep the driving
        client alive so liveness stays assertable); partitions may involve
        any pair from *nodes*.  Every fault gets a recovery/heal time, with
        a 25% chance of staying down past the horizon instead — breaks
        must map to ``unavailable``/``failure`` either way.
        """
        if len(nodes) < 2:
            raise ValueError("need at least two nodes to build a fault plan")
        if isinstance(rng, RngRegistry):
            rng = rng.stream("faults.plan")
        plan = cls()
        crash_pool = list(crashable if crashable is not None else nodes)
        for _ in range(rng.randint(0, max_faults)):
            at = rng.uniform(0.5, horizon)
            outage = rng.uniform(min_outage, max_outage)
            until = None if rng.random() < 0.25 else at + outage
            if crash_pool and rng.random() < 0.5:
                plan.crash(rng.choice(crash_pool), at=at, recover_at=until)
            else:
                a, b = rng.sample(list(nodes), 2)
                plan.partition(a, b, at=at, heal_at=until)
        return plan


# ----------------------------------------------------------------------
# Link-level chaos: per-message drop / delay / duplication / reordering
# ----------------------------------------------------------------------

class LinkFaultProfile:
    """Per-message fault rates for one link (or every link).

    * ``drop_rate`` — probability a message silently disappears;
    * ``delay_rate`` / ``delay_min`` / ``delay_max`` — probability a
      message is held up by a uniform extra delay, *preserving* link FIFO
      order (congestion: everything behind it queues too);
    * ``reorder_rate`` — probability a message takes a slow independent
      path: it gets the extra delay *without* the FIFO clamp, so later
      messages can overtake it (true reordering on the wire);
    * ``dup_rate`` — probability a stray duplicate copy is also delivered,
      after its own extra delay, unclamped.

    The stream transport must absorb all of this: duplicates are detected
    by sequence number, reordering is repaired by the receiver's
    out-of-order buffer, drops by go-back-N retransmission.
    """

    __slots__ = (
        "drop_rate", "dup_rate", "delay_rate", "reorder_rate",
        "delay_min", "delay_max",
    )

    def __init__(
        self,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        delay_rate: float = 0.0,
        reorder_rate: float = 0.0,
        delay_min: float = 0.5,
        delay_max: float = 5.0,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate), ("dup_rate", dup_rate),
            ("delay_rate", delay_rate), ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError("%s must be in [0, 1), got %r" % (name, rate))
        if delay_min < 0 or delay_max < delay_min:
            raise ValueError("need 0 <= delay_min <= delay_max")
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.delay_rate = delay_rate
        self.reorder_rate = reorder_rate
        self.delay_min = delay_min
        self.delay_max = delay_max

    @property
    def active(self) -> bool:
        """Whether any fault can actually fire under this profile."""
        return bool(
            self.drop_rate or self.dup_rate or self.delay_rate or self.reorder_rate
        )

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready representation (see :mod:`repro.chaos.schedule`)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "LinkFaultProfile":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        unknown = set(record) - set(cls.__slots__)
        if unknown:
            raise ValueError("unknown LinkFaultProfile fields: %s" % sorted(unknown))
        return cls(**record)

    def __repr__(self) -> str:
        parts = ", ".join(
            "%s=%r" % (name, getattr(self, name))
            for name in self.__slots__
            if getattr(self, name)
        )
        return "LinkFaultProfile(%s)" % parts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinkFaultProfile) and self.to_dict() == other.to_dict()


#: Fast-path decision shared by every undisturbed message.
_NORMAL = ((0.0, True),)


class LinkFaultInjector:
    """Applies a :class:`LinkFaultProfile` to every message a network sends.

    Installed via :meth:`Network.install_link_faults`; consulted once per
    remote message.  Per-link overrides (unordered node pairs) take
    precedence over the default profile.  All draws come from the single
    ``random.Random`` handed in — campaign code passes a dedicated
    ``registry.stream("chaos.link")`` so link chaos is independent of every
    other stochastic component.
    """

    #: Sentinel decision: the message is eaten by chaos.
    DROP = ("drop",)

    def __init__(
        self,
        rng: random.Random,
        default: Optional[LinkFaultProfile] = None,
        per_link: Optional[Dict[Tuple[str, str], LinkFaultProfile]] = None,
    ) -> None:
        self.rng = rng
        self.default = default
        self.per_link: Dict[Tuple[str, str], LinkFaultProfile] = {}
        for (a, b), profile in (per_link or {}).items():
            self.per_link[Network._pair(a, b)] = profile
        #: Counters mirrored into NetworkStats by the send path.
        self.decisions = 0
        self.drops = 0
        self.delays = 0
        self.reorders = 0
        self.duplicates = 0

    def profile_for(self, src: str, dst: str) -> Optional[LinkFaultProfile]:
        """The profile governing the (src, dst) link, or None."""
        if self.per_link:
            profile = self.per_link.get(Network._pair(src, dst))
            if profile is not None:
                return profile
        return self.default

    def decide(self, src: str, dst: str):
        """One fault decision for one message.

        Returns ``None`` (deliver normally — the overwhelmingly common
        case), the drop sentinel, or a tuple of ``(extra_delay,
        fifo_clamped)`` deliveries (more than one entry means duplication).
        """
        profile = self.profile_for(src, dst)
        if profile is None or not profile.active:
            return None
        self.decisions += 1
        rng = self.rng
        if profile.drop_rate and rng.random() < profile.drop_rate:
            self.drops += 1
            return self.DROP
        extra = 0.0
        fifo = True
        if profile.reorder_rate and rng.random() < profile.reorder_rate:
            # A slow independent path: delayed and exempt from the FIFO
            # clamp, so later traffic overtakes this message.
            extra = rng.uniform(profile.delay_min, profile.delay_max)
            fifo = False
            self.reorders += 1
        elif profile.delay_rate and rng.random() < profile.delay_rate:
            extra = rng.uniform(profile.delay_min, profile.delay_max)
            self.delays += 1
        if profile.dup_rate and rng.random() < profile.dup_rate:
            self.duplicates += 1
            stray = rng.uniform(profile.delay_min, profile.delay_max)
            return ((extra, fifo), (stray, False))
        if extra == 0.0 and fifo:
            return _NORMAL
        return ((extra, fifo),)
