"""Fault-injection helpers: scheduled crashes, recoveries and partitions.

The paper's stream semantics are defined largely by their behaviour under
"problems such as node crashes and network partitions"; these helpers script
such problems deterministically so that tests and the E9 benchmark can
exercise break detection and the ``unavailable``/``failure`` mapping.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.net.network import Network
from repro.sim.kernel import Environment

__all__ = ["FaultPlan", "schedule_crash", "schedule_partition"]


def _require_nodes(network: Network, *names: str) -> None:
    """Validate node names eagerly, so a typo fails at scheduling time
    instead of surfacing mid-simulation as an opaque KeyError from inside
    a fault script process."""
    for name in names:
        try:
            network.node(name)
        except KeyError:
            raise ValueError(
                "cannot schedule fault: no node named %r (known: %s)"
                % (name, ", ".join(sorted(n.name for n in network.nodes())) or "none")
            ) from None


def schedule_crash(
    network: Network,
    node_name: str,
    at: float,
    recover_at: Optional[float] = None,
) -> None:
    """Crash *node_name* at simulated time *at*; optionally recover later."""
    if recover_at is not None and recover_at <= at:
        raise ValueError("recover_at must be after the crash time")
    _require_nodes(network, node_name)
    env = network.env

    def script():
        yield env.timeout(max(0.0, at - env.now))
        network.node(node_name).crash()
        if recover_at is not None:
            yield env.timeout(recover_at - at)
            network.node(node_name).recover()

    env.process(script())


def schedule_partition(
    network: Network,
    a: str,
    b: str,
    at: float,
    heal_at: Optional[float] = None,
) -> None:
    """Partition nodes *a* and *b* at time *at*; optionally heal later."""
    if heal_at is not None and heal_at <= at:
        raise ValueError("heal_at must be after the partition time")
    _require_nodes(network, a, b)
    env = network.env

    def script():
        yield env.timeout(max(0.0, at - env.now))
        network.partition(a, b)
        if heal_at is not None:
            yield env.timeout(heal_at - at)
            network.heal(a, b)

    env.process(script())


class FaultPlan:
    """A declarative schedule of faults, applied to a network at once.

    Example::

        plan = FaultPlan()
        plan.crash("db", at=50.0, recover_at=80.0)
        plan.partition("client", "db", at=10.0, heal_at=20.0)
        plan.apply(network)
    """

    def __init__(self) -> None:
        self._crashes: List[Tuple[str, float, Optional[float]]] = []
        self._partitions: List[Tuple[str, str, float, Optional[float]]] = []

    def crash(
        self, node_name: str, at: float, recover_at: Optional[float] = None
    ) -> "FaultPlan":
        """Schedule a crash (and optional recovery) of *node_name*."""
        self._crashes.append((node_name, at, recover_at))
        return self

    def partition(
        self, a: str, b: str, at: float, heal_at: Optional[float] = None
    ) -> "FaultPlan":
        """Schedule a partition (and optional heal) between *a* and *b*."""
        self._partitions.append((a, b, at, heal_at))
        return self

    def apply(self, network: Network) -> None:
        """Install every scheduled fault onto *network*.

        All node names are validated before *any* fault is installed, so a
        bad plan raises immediately and leaves the network untouched.
        """
        for node_name, _, _ in self._crashes:
            _require_nodes(network, node_name)
        for a, b, _, _ in self._partitions:
            _require_nodes(network, a, b)
        for node_name, at, recover_at in self._crashes:
            schedule_crash(network, node_name, at, recover_at)
        for a, b, at, heal_at in self._partitions:
            schedule_partition(network, a, b, at, heal_at)

    def __len__(self) -> int:
        return len(self._crashes) + len(self._partitions)

    @classmethod
    def random(
        cls,
        rng: random.Random,
        nodes: Sequence[str],
        horizon: float,
        max_faults: int = 4,
        crashable: Optional[Sequence[str]] = None,
        min_outage: float = 1.0,
        max_outage: float = 15.0,
    ) -> "FaultPlan":
        """A seeded random schedule of crashes and partitions.

        Used by the property-style stress tests: pass a seeded
        ``random.Random`` so identical seeds regenerate identical plans.
        *crashable* restricts which nodes may crash (e.g. keep the driving
        client alive so liveness stays assertable); partitions may involve
        any pair from *nodes*.  Every fault gets a recovery/heal time, with
        a 25% chance of staying down past the horizon instead — breaks
        must map to ``unavailable``/``failure`` either way.
        """
        if len(nodes) < 2:
            raise ValueError("need at least two nodes to build a fault plan")
        plan = cls()
        crash_pool = list(crashable if crashable is not None else nodes)
        for _ in range(rng.randint(0, max_faults)):
            at = rng.uniform(0.5, horizon)
            outage = rng.uniform(min_outage, max_outage)
            until = None if rng.random() < 0.25 else at + outage
            if crash_pool and rng.random() < 0.5:
                plan.crash(rng.choice(crash_pool), at=at, recover_at=until)
            else:
                a, b = rng.sample(list(nodes), 2)
                plan.partition(a, b, at=at, heal_at=until)
        return plan
