"""Guardians, ports, agents and the system facade (paper §2.1)."""

from repro.entities.agents import Agent
from repro.entities.context import ActivityContext
from repro.entities.dispatch import GroupDispatcher, normalize_result
from repro.entities.guardian import Guardian, TransportEndpoint
from repro.entities.ports import HandlerRef, Port, PortGroup
from repro.entities.system import ArgusSystem

__all__ = [
    "ActivityContext",
    "Agent",
    "ArgusSystem",
    "GroupDispatcher",
    "Guardian",
    "HandlerRef",
    "Port",
    "PortGroup",
    "TransportEndpoint",
    "normalize_result",
]
