"""Guardians and their transport endpoints.

"Argus provides active entities called guardians, each of which resides
entirely at a single node of a network.  Each guardian provides operations
called handlers that can be called by other guardians." (§2.1)

A guardian owns:

* one :class:`TransportEndpoint` registered at its node, through which all
  of its stream traffic (both directions) flows;
* one or more port groups of handlers;
* any number of running processes, each with its own agent.

Crashing the guardian's node kills its processes and erases all stream
state (that loss is what the receiver detects as an asynchronous break);
destroying a guardian makes future calls fail permanently ("failure —
e.g., the handler's guardian does not exist").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import Failure
from repro.encoding.xrep import PortDescriptor
from repro.entities.agents import Agent
from repro.entities.context import ActivityContext
from repro.entities.dispatch import GroupDispatcher
from repro.entities.ports import HandlerRef, Port, PortGroup
from repro.net.message import Message
from repro.net.network import Node, NodeDown
from repro.sim.process import Process
from repro.streams.receiver import StreamReceiver
from repro.streams.sender import StreamSender
from repro.streams.wire import BreakNotice, CallPacket, ReplyPacket, StreamKey

__all__ = ["Guardian", "TransportEndpoint"]


class TransportEndpoint:
    """A guardian's attachment to the network: routes packets to stream
    senders and receivers."""

    def __init__(self, guardian: "Guardian", node: Node, address: str) -> None:
        self.guardian = guardian
        self.node = node
        self.address = address
        self.env = guardian.env
        self.network = guardian.system.network
        self._senders: Dict[StreamKey, StreamSender] = {}
        self._receivers: Dict[StreamKey, StreamReceiver] = {}
        node.register(address, self._on_message)

    # ------------------------------------------------------------------
    # Sending side
    # ------------------------------------------------------------------
    def sender_for(self, agent: Agent, descriptor: PortDescriptor) -> StreamSender:
        """The stream sender for (this agent → that port group)."""
        key = StreamKey(
            src_node=self.node.name,
            src_address=self.address,
            agent_id=agent.agent_id,
            dst_node=descriptor.node,
            dst_address=descriptor.group_address,
            group_id=descriptor.group_id,
        )
        sender = self._senders.get(key)
        if sender is None:
            sender = StreamSender(
                self.env, self.network, key, self.guardian.system.stream_config
            )
            self._senders[key] = sender
        return sender

    # ------------------------------------------------------------------
    # Receiving side
    # ------------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        packet = message.payload
        if isinstance(packet, CallPacket):
            self._on_call_packet(packet)
        elif isinstance(packet, ReplyPacket):
            sender = self._senders.get(packet.key)
            if sender is not None:
                sender.on_reply(packet)
        # Unknown payloads are dropped silently.

    def _on_call_packet(self, packet: CallPacket) -> None:
        guardian = self.guardian
        if not guardian.alive:
            self._refuse(packet, "guardian %s does not exist" % guardian.name)
            return
        group = guardian.groups.get(packet.key.group_id)
        if group is None:
            self._refuse(packet, "no such port group: %s" % packet.key.group_id)
            return
        receiver = self._receivers.get(packet.key)
        if receiver is not None and packet.incarnation > receiver.incarnation:
            # The sender reincarnated: everything the old incarnation was
            # still running is an orphan — "the Argus system guarantees
            # that it will find these computations and destroy them later"
            # (§4.2).
            receiver.dispatcher.stop(
                "superseded by incarnation %d" % packet.incarnation
            )
        if receiver is not None and packet.incarnation < receiver.incarnation:
            return  # stale incarnation
        fresh = receiver is None or packet.incarnation > receiver.incarnation
        if self.node.incarnation > 0 and (fresh or receiver.virgin):
            # On a node that has crashed, entries may only start flowing
            # from a genuine stream start: a first transmission whose
            # entries begin at seq 1.  A retransmission or a mid-sequence
            # first transmission means the sender believes the stream is
            # already open — entries below the packet's window may have
            # executed before the crash, so accepting would let a later
            # go-back-N retransmission re-execute them.  Break the stream
            # asynchronously instead (§2: the effect on already-processed
            # calls of an asynchronous break is nondeterministic).  The
            # rule keeps applying while the receiver is *virgin* (opened
            # by an entry-less announce or bare ack, nothing delivered
            # yet): such a receiver must not launder pre-crash entries
            # through later packets either.  Sound because senders always
            # start an incarnation
            # at seq 1 and the network drops datagrams stamped for a
            # previous node incarnation, so a surviving attempt-0 packet
            # starting at seq 1 cannot be a replay from before the crash.
            if packet.attempt > 0 or (
                packet.entries
                and min(entry.seq for entry in packet.entries) != 1
            ):
                self._refuse(
                    packet, "receiver state lost (crash)", permanent=False
                )
                return
        if fresh:
            receiver = StreamReceiver(
                self.env,
                self.network,
                packet.key,
                packet.incarnation,
                GroupDispatcher(guardian, group),
                guardian.system.stream_config,
            )
            self._receivers[packet.key] = receiver
        if packet.entries:
            receiver.virgin = False
        receiver.on_call_packet(packet)

    def _refuse(self, packet: CallPacket, reason: str, permanent: bool = True) -> None:
        """Reply with a break notice instead of accepting the stream."""
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.refused",
                guardian=self.guardian.name,
                reason=reason,
                permanent=permanent,
            )
        reply = ReplyPacket(
            packet.key,
            packet.incarnation,
            [],
            ack_call_seq=0,
            completed_seq=0,
            broken=BreakNotice(
                synchronous=False, after_seq=0, reason=reason, permanent=permanent
            ),
        )
        message = Message(
            packet.key.dst_node,
            packet.key.src_node,
            packet.key.src_address,
            reply,
            reply.size,
        )
        try:
            self.network.send(message, want_done=False)
        except NodeDown:
            pass

    def abandon_agent(self, agent: Agent) -> None:
        """Restart every stream of *agent* that still has work in flight.

        Called when the agent's activity is terminated early (a coenter
        arm): the restart announcement reaching each receiver destroys the
        orphaned executions there.
        """
        for key, sender in list(self._senders.items()):
            if key.agent_id != agent.agent_id:
                continue
            if sender.broken:
                continue
            if sender._has_unresolved() or sender._buffer or sender._unacked:
                sender.restart()

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    def forget_streams(self) -> None:
        """Drop all stream state (volatile across crashes)."""
        self._senders.clear()
        self._receivers.clear()


class Guardian:
    """An Argus guardian: handlers, port groups, processes, one node."""

    def __init__(self, system: Any, name: str, node: Node) -> None:
        self.system = system
        self.env = system.env
        self.name = name
        self.node = node
        self.alive = True
        self.address = "g:%s" % name
        self.endpoint = TransportEndpoint(self, node, self.address)
        self.groups: Dict[str, PortGroup] = {}
        self.create_group("main")
        #: Convenience shared mutable state for handler implementations
        #: ("Argus procedures can share objects").
        self.state: Dict[str, Any] = {}
        self._processes: List[Process] = []
        node.on_crash(self._on_node_crash)

    def __repr__(self) -> str:
        return "<Guardian %s@%s>" % (self.name, self.node.name)

    # ------------------------------------------------------------------
    # Handler/port management
    # ------------------------------------------------------------------
    def create_group(self, group_id: str, parallel: bool = False) -> PortGroup:
        """Create a new port group (groups may be made dynamically, §2).

        ``parallel=True`` opts the group into the §2.1 override: calls on
        one stream are *executed* concurrently, while the transport still
        delivers requests and releases replies in call order.  Only
        programs whose handlers commute should use it.
        """
        if group_id in self.groups:
            raise ValueError("group %r already exists on %s" % (group_id, self))
        group = PortGroup(group_id, self.node.name, self.address, parallel=parallel)
        self.groups[group_id] = group
        return group

    def create_handler(
        self,
        name: str,
        handler_type: Any,
        impl: Callable,
        group: str = "main",
    ) -> Port:
        """Define a handler: a port plus the procedure run per call.

        *impl* is a generator function ``impl(ctx, *args)`` run in a fresh
        process for each call; it may ``yield`` to block and ``return`` its
        result, or raise :class:`~repro.core.exceptions.Signal`.
        """
        if group not in self.groups:
            self.create_group(group)
        return self.groups[group].add_port(name, handler_type, impl)

    def descriptor(self, handler_name: str, group: Optional[str] = None) -> PortDescriptor:
        """Find a handler's port descriptor (searching groups if unnamed)."""
        if group is not None:
            port = self.groups[group].lookup(handler_name)
            if port is None:
                raise KeyError(
                    "no handler %r in group %r of %s" % (handler_name, group, self)
                )
            return port.descriptor()
        for port_group in self.groups.values():
            port = port_group.lookup(handler_name)
            if port is not None:
                return port.descriptor()
        raise KeyError("no handler %r on %s" % (handler_name, self))

    # ------------------------------------------------------------------
    # Processes and agents
    # ------------------------------------------------------------------
    def new_agent(self, label: str = "") -> Agent:
        """Mint a fresh agent (a new sending end for streams)."""
        return Agent(self.name, label, self.env.new_serial("agent"))

    def new_context(self, label: str = "") -> ActivityContext:
        """A fresh activity context bound to a fresh agent."""
        return ActivityContext(self, self.new_agent(label))

    def spawn(self, procedure: Callable, *args: Any, label: str = "") -> Process:
        """Run ``procedure(ctx, *args)`` as a new process of this guardian."""
        if not self.alive:
            raise Failure("guardian %s does not exist" % self.name)
        ctx = self.new_context(label or getattr(procedure, "__name__", "proc"))
        process = self.env.process(procedure(ctx, *args))
        self._track(process)
        return process

    def spawn_handler(self, port: Port, args: tuple, span: Any = None) -> Process:
        """Run one handler call in a fresh process (fresh agent).

        *span* is the call's causal trace context (tracing only): attached
        to the process so that remote calls and forks the handler makes
        nest under the call that started it.
        """
        ctx = self.new_context(port.port_id)
        process = self.env.process(port.impl(ctx, *args))
        if span is not None:
            process.span = span
        self._track(process)
        return process

    def _track(self, process: Process) -> None:
        self._processes.append(process)
        if len(self._processes) > 64:
            self._processes = [p for p in self._processes if p.is_alive]

    def bind(self, descriptor: PortDescriptor, agent: Optional[Agent] = None) -> HandlerRef:
        """Bind a descriptor outside any activity (mostly for tests)."""
        return HandlerRef(self.endpoint, agent or self.new_agent(), descriptor)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_node_crash(self, node: Node) -> None:
        killed = 0
        for process in self._processes:
            if process.is_alive:
                process.kill("node %s crashed" % node.name)
                killed += 1
        self._processes = []
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "guardian.crashed",
                guardian=self.name,
                node=node.name,
                processes_killed=killed,
            )
        # All volatile stream state is lost; peers will detect this as an
        # asynchronous break.
        self.endpoint.forget_streams()

    def destroy(self) -> None:
        """Remove the guardian permanently; calls will fail with
        ``failure("guardian ... does not exist")``."""
        self.alive = False
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("guardian.destroyed", guardian=self.name)
        for process in self._processes:
            if process.is_alive:
                process.kill("guardian %s destroyed" % self.name)
        self._processes = []
        self.groups = {}
        self.endpoint.forget_streams()
