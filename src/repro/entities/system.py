"""The top-level facade: a whole simulated Argus world.

:class:`ArgusSystem` bundles the simulation environment, the network and
the guardian registry, with the model parameters used throughout the
benchmarks.  Typical use::

    system = ArgusSystem(latency=5.0, kernel_overhead=0.5)
    db = system.create_guardian("db")
    db.create_handler("record_grade", HT, record_grade_impl)

    client = system.create_guardian("client")

    def main(ctx):
        record = ctx.lookup("db", "record_grade")
        promise = record.stream("amy", 93)
        average = yield promise.claim()
        return average

    process = client.spawn(main)
    system.run(until=process)
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.encoding.xrep import PortDescriptor
from repro.net.network import Network
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.streams.config import StreamConfig

__all__ = ["ArgusSystem"]


class ArgusSystem:
    """A simulated distributed system of guardians."""

    def __init__(
        self,
        latency: float = 1.0,
        bandwidth: float = float("inf"),
        kernel_overhead: float = 0.1,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
        stream_config: Optional[StreamConfig] = None,
        process_spawn_overhead: float = 0.0,
        tracing: bool = False,
    ) -> None:
        self.env = Environment()
        if tracing:
            from repro.obs.trace import Tracer

            Tracer.install(self.env)
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.env,
            latency=latency,
            bandwidth=bandwidth,
            kernel_overhead=kernel_overhead,
            jitter=jitter,
            loss_rate=loss_rate,
            rng=self.rng,
        )
        self.stream_config = stream_config or StreamConfig()
        #: Cost of creating a process to run a call (paper §4.3: managing
        #: many processes "can impose a substantial burden on the system").
        self.process_spawn_overhead = process_spawn_overhead
        self.guardians: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # World building
    # ------------------------------------------------------------------
    def create_guardian(self, name: str, node: Optional[str] = None):
        """Create a guardian, by default on its own fresh node."""
        from repro.entities.guardian import Guardian

        if name in self.guardians:
            raise ValueError("guardian %r already exists" % (name,))
        node_name = node or "node:%s" % name
        try:
            network_node = self.network.node(node_name)
        except KeyError:
            network_node = self.network.add_node(node_name)
        guardian = Guardian(self, name, network_node)
        self.guardians[name] = guardian
        return guardian

    def guardian(self, name: str):
        """The guardian registered under *name* (KeyError if absent)."""
        try:
            return self.guardians[name]
        except KeyError:
            raise KeyError("no guardian named %r" % (name,)) from None

    def lookup(
        self, guardian_name: str, handler_name: str, group: Optional[str] = None
    ) -> PortDescriptor:
        """Find a handler's port descriptor by guardian and handler name."""
        return self.guardian(guardian_name).descriptor(handler_name, group)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def run(self, until: Any = None) -> Any:
        """Run the simulation (see :meth:`repro.sim.kernel.Environment.run`)."""
        return self.env.run(until)

    def stats(self) -> Dict[str, int]:
        """Network-level counters for benchmark reporting."""
        return self.network.stats.snapshot()

    # ------------------------------------------------------------------
    # Observability (see repro.obs)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`~repro.obs.trace.Tracer`, or None."""
        return self.env.tracer

    def trace_summary(self) -> Dict[str, Any]:
        """The tracer's JSON metrics report (requires ``tracing=True``)."""
        if self.env.tracer is None:
            raise RuntimeError(
                "tracing is disabled; construct ArgusSystem(tracing=True)"
            )
        return self.env.tracer.summary()

    def export_trace(self, path: str) -> int:
        """Write the JSONL event trace to *path*; returns the event count."""
        if self.env.tracer is None:
            raise RuntimeError(
                "tracing is disabled; construct ArgusSystem(tracing=True)"
            )
        return self.env.tracer.export_jsonl(path)
