"""Agents: the sending ends of streams.

"We use agents to identify activities; agents define the sending ends of
streams.  An agent has a unique name and belongs to a single entity; there
can be many agents belonging to the same entity." (§2)

Every process spawned inside a guardian — whether a top-level activity, a
handler-call process, a fork, or a coenter arm — is associated with its own
agent, so that "the separate activities [do] not share the same stream".
"""

from __future__ import annotations

import itertools

__all__ = ["Agent"]

#: Fallback for agents minted without an environment (direct construction
#: in tests); guardians pass per-environment serials instead so that agent
#: ids — which appear in stream trace labels — are trace-deterministic.
_agent_serial = itertools.count(1)


class Agent:
    """A named activity within a guardian; the sending end of streams."""

    __slots__ = ("agent_id", "guardian_name")

    def __init__(self, guardian_name: str, label: str = "", serial: int = 0) -> None:
        if serial <= 0:
            serial = next(_agent_serial)
        suffix = label or "a%d" % serial
        self.guardian_name = guardian_name
        self.agent_id = "%s/%s#%d" % (guardian_name, suffix, serial)

    def __repr__(self) -> str:
        return "<Agent %s>" % self.agent_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Agent) and self.agent_id == other.agent_id

    def __hash__(self) -> int:
        return hash(self.agent_id)
