"""Per-stream execution of handler calls.

"When a handler call arrives at a guardian, the Argus system will delay its
execution until all earlier calls on its stream have completed. ...  Note,
however, that calls on different streams can be processed in parallel."
(§2.1)

Each stream receiver gets its own :class:`GroupDispatcher`: a FIFO of
delivered requests drained by a driver process that runs one handler call
at a time, each in a fresh process with a fresh agent.  Different
dispatchers (different streams) run concurrently.

Everything observable — port lookup, argument decoding, execution, outcome
posting — happens inside the sequential driver, so outcomes are produced
strictly in call order.  That ordering is what makes a decode failure a
*synchronous* break: every call before the failing one has already
completed and is unaffected (§2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.core.exceptions import Failure, Signal, Unavailable
from repro.core.outcome import Outcome
from repro.encoding.errors import DecodeError
from repro.encoding.transmit import ArgsCodec, OutcomeCodec
from repro.sim.process import Interrupt, ProcessKilled
from repro.streams.receiver import CallDispatcher, StreamReceiver
from repro.types.signatures import HandlerType

__all__ = ["GroupDispatcher", "normalize_result"]


def normalize_result(handler_type: HandlerType, result: Any) -> Outcome:
    """Turn a handler's Python return value into a normal outcome.

    Zero declared results → the handler must return None; one → any single
    value; several → a tuple of exactly that length.
    """
    count = len(handler_type.returns)
    if count == 0:
        if result is not None:
            return Outcome.failure(
                "handler returned a value but declares no results"
            )
        return Outcome.normal()
    if count == 1:
        return Outcome.normal(result)
    if not isinstance(result, tuple) or len(result) != count:
        return Outcome.failure(
            "handler returned %r but declares %d results" % (result, count)
        )
    return Outcome.normal(*result)


class GroupDispatcher(CallDispatcher):
    """Sequential executor for the calls of one stream."""

    def __init__(self, guardian: Any, group: Any) -> None:
        self.guardian = guardian
        self.group = group
        self.env = guardian.env
        self._queue: Deque[Tuple[StreamReceiver, int, str, bytes, str, Any]] = deque()
        self._driver = None
        self._stopped = False
        #: Handler processes currently executing (for orphan destruction).
        self._running: list = []

    # ------------------------------------------------------------------
    # CallDispatcher interface
    # ------------------------------------------------------------------
    def dispatch(
        self,
        receiver: StreamReceiver,
        seq: int,
        port_id: str,
        args_bytes: bytes,
        kind: str,
        span: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        """Queue one delivered request; starts the driver if idle."""
        if self._stopped or not self.guardian.alive:
            return
        self._queue.append((receiver, seq, port_id, args_bytes, kind, span))
        if self._driver is None or self._driver.triggered:
            runner = self._run_parallel() if self.group.parallel else self._run()
            self._driver = self.env.process(runner)

    def stop(self, reason: str) -> None:
        """The stream broke or was superseded: drop queued calls (they are
        'discarded automatically, so user code never needs to deal with
        them') and destroy executions already in progress — the orphan
        destruction of §4.2: "the Argus system guarantees that it will
        find these computations and destroy them later"."""
        self._stopped = True
        self._queue.clear()
        running, self._running = self._running, []
        for process in running:
            if process.is_alive:
                process.kill("orphaned call destroyed: %s" % reason)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def _run(self):
        while self._queue and not self._stopped and self.guardian.alive:
            receiver, seq, port_id, args_bytes, kind, span = self._queue.popleft()

            port = self.group.lookup(port_id)
            if port is None:
                # The call is an error, but the stream survives.
                receiver.fail_call(seq, "handler does not exist: %s" % port_id, kind)
                continue
            try:
                args = ArgsCodec.for_type(port.handler_type).decode(args_bytes)
            except DecodeError as exc:
                # Fails this call and breaks the stream synchronously;
                # everything before it has already completed.
                receiver.decode_failure(seq, kind, exc)
                continue

            overhead = self.guardian.system.process_spawn_overhead
            if overhead > 0:
                yield self.env.timeout(overhead)
            process = self.guardian.spawn_handler(port, args, span=span)
            self._emit_executing(receiver, seq, port_id, span, process)
            self._running.append(process)
            try:
                result = yield process
            except Signal as sig:
                outcome = Outcome.exceptional(sig)
            except (Unavailable, Failure) as exc:
                outcome = Outcome.exceptional(type(exc)(*exc.args))
            except (ProcessKilled, Interrupt):
                return  # guardian crashed out from under us
            except Exception as exc:  # a bug in handler code
                outcome = Outcome.failure("handler crashed: %r" % (exc,))
            else:
                outcome = normalize_result(port.handler_type, result)
            finally_running = [p for p in self._running if p.is_alive]
            self._running = finally_running
            self._emit_completed(receiver, seq, span, outcome)
            receiver.post_outcome(
                seq, outcome, kind, OutcomeCodec.for_type(port.handler_type)
            )

    def _emit_executing(self, receiver, seq, port_id, span, process) -> None:
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.call_executing",
                stream=receiver.trace_label,
                incarnation=receiver.incarnation,
                seq=seq,
                port=port_id,
                pid=process.pid,
                trace_id=span[0] if span is not None else None,
                span_id=span[1] if span is not None else None,
            )

    def _emit_completed(self, receiver, seq, span, outcome) -> None:
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.call_completed",
                stream=receiver.trace_label,
                incarnation=receiver.incarnation,
                seq=seq,
                status=outcome.condition,
                trace_id=span[0] if span is not None else None,
                span_id=span[1] if span is not None else None,
            )

    # ------------------------------------------------------------------
    # Parallel driver (the §2.1 override)
    # ------------------------------------------------------------------
    def _run_parallel(self):
        """Start every queued call immediately, in its own process.

        The stream receiver re-serializes outcomes, so replies still
        travel in call order even though execution overlaps.
        """
        while self._queue and not self._stopped and self.guardian.alive:
            receiver, seq, port_id, args_bytes, kind, span = self._queue.popleft()

            port = self.group.lookup(port_id)
            if port is None:
                receiver.fail_call(seq, "handler does not exist: %s" % port_id, kind)
                continue
            try:
                args = ArgsCodec.for_type(port.handler_type).decode(args_bytes)
            except DecodeError as exc:
                receiver.decode_failure(seq, kind, exc)
                continue

            overhead = self.guardian.system.process_spawn_overhead
            if overhead > 0:
                yield self.env.timeout(overhead)
            process = self.guardian.spawn_handler(port, args, span=span)
            self._emit_executing(receiver, seq, port_id, span, process)
            self._running.append(process)
            self._hook_completion(process, receiver, seq, kind, port, span)

    def _hook_completion(
        self, process, receiver, seq: int, kind: str, port, span
    ) -> None:
        def complete(event) -> None:
            self._running = [p for p in self._running if p.is_alive]
            if event.ok:
                outcome = normalize_result(port.handler_type, event.value)
            else:
                exc = event.value
                event.defused = True
                if isinstance(exc, Signal):
                    outcome = Outcome.exceptional(exc)
                elif isinstance(exc, (Unavailable, Failure)):
                    outcome = Outcome.exceptional(type(exc)(*exc.args))
                elif isinstance(exc, (ProcessKilled, Interrupt)):
                    return  # guardian crashed; no reply will be sent
                else:
                    outcome = Outcome.failure("handler crashed: %r" % (exc,))
            self._emit_completed(receiver, seq, span, outcome)
            receiver.post_outcome(
                seq, outcome, kind, OutcomeCodec.for_type(port.handler_type)
            )

        if process.triggered:
            complete(process)
        else:
            process.callbacks.append(complete)
