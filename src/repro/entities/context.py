"""Activity contexts: what a running process sees of its guardian.

Every simulated activity — a top-level client process, a handler-call
process, a fork, a coenter arm — runs with an :class:`ActivityContext`
giving it its own :class:`~repro.entities.agents.Agent` (so concurrent
activities never share streams, §2), plus the operations Argus code uses:
binding ports, sleeping/computing, forking, and entering coenters.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.encoding.xrep import PortDescriptor
from repro.entities.agents import Agent
from repro.entities.ports import HandlerRef
from repro.sim.events import Event

__all__ = ["ActivityContext"]


class ActivityContext:
    """The per-activity view of the runtime."""

    def __init__(self, guardian: Any, agent: Agent) -> None:
        self.guardian = guardian
        self.agent = agent
        self.env = guardian.env
        self.system = guardian.system

    def __repr__(self) -> str:
        return "<ActivityContext %s>" % (self.agent,)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def sleep(self, duration: float) -> Event:
        """Yieldable pause; also used to model local computation time."""
        return self.env.timeout(duration)

    compute = sleep

    @property
    def now(self) -> float:
        return self.env.now

    # ------------------------------------------------------------------
    # Remote calls
    # ------------------------------------------------------------------
    def bind(self, descriptor: PortDescriptor) -> HandlerRef:
        """Bind a port descriptor to this activity's agent.

        Refs bound through the same context to ports of one group share a
        stream and are mutually sequenced.
        """
        return HandlerRef(self.guardian.endpoint, self.agent, descriptor)

    def lookup(
        self, guardian_name: str, handler_name: str, group: Optional[str] = None
    ) -> HandlerRef:
        """Convenience: look a handler up by name and bind it."""
        return self.bind(self.system.lookup(guardian_name, handler_name, group))

    # ------------------------------------------------------------------
    # Local concurrency (implemented in repro.concurrency; lazy imports
    # keep the entity layer free of upward dependencies)
    # ------------------------------------------------------------------
    def fork(self, procedure: Callable, *args: Any, ptype=None, label: str = ""):
        """``p: pt := fork foo(args)`` — run *procedure* in a new process
        and return a promise for its result (§3.2)."""
        from repro.concurrency.fork import fork

        return fork(self, procedure, *args, ptype=ptype, label=label)

    def coenter(self):
        """Build a ``coenter`` statement (§4.2); add arms, then yield
        ``.run()``."""
        from repro.concurrency.coenter import Coenter

        return Coenter(self)

    def spawn_context(self, label: str = "") -> "ActivityContext":
        """A fresh context (new agent) in the same guardian, for children."""
        return ActivityContext(self.guardian, self.guardian.new_agent(label))

    # ------------------------------------------------------------------
    # Critical sections (used by coenter wounding, §4.2)
    # ------------------------------------------------------------------
    def critical(self):
        """Context manager marking a critical section of the current
        process; forced termination is delayed while inside one."""
        from repro.concurrency.critical import critical_section

        return critical_section(self.env)
