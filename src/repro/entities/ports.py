"""Ports, port groups and client-side handler references.

A *port* identifies one handler of a guardian; it is strongly typed.  Ports
are grouped for sequencing: "only calls to ports in the same group are
sequenced", and a stream is one agent talking to one group (§2).

On the client side a :class:`HandlerRef` binds a transmitted-or-looked-up
:class:`~repro.encoding.xrep.PortDescriptor` to a local agent, giving the
Argus call forms: ``h.call(...)`` (RPC), ``h.stream(...)`` (stream call
expression), ``h.stream_statement(...)``, ``h.send(...)``, plus ``flush``
and ``synch`` on the underlying stream.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.promise import Promise
from repro.encoding.xrep import PortDescriptor, type_fingerprint
from repro.sim.events import Event
from repro.types.signatures import HandlerType

__all__ = ["Port", "PortGroup", "HandlerRef"]


class Port:
    """One handler made callable from other guardians."""

    __slots__ = ("port_id", "handler_type", "impl", "group")

    def __init__(
        self,
        port_id: str,
        handler_type: HandlerType,
        impl: Callable,
        group: "PortGroup",
    ) -> None:
        self.port_id = port_id
        self.handler_type = handler_type
        self.impl = impl
        self.group = group

    def descriptor(self) -> PortDescriptor:
        """The transmissible reference to this port."""
        return PortDescriptor(
            node=self.group.node_name,
            group_address=self.group.endpoint_address,
            group_id=self.group.group_id,
            port_id=self.port_id,
            fingerprint=type_fingerprint(self.handler_type),
            handler_type=self.handler_type,
        )

    def __repr__(self) -> str:
        return "<Port %s/%s>" % (self.group.group_id, self.port_id)


class PortGroup:
    """A set of ports sequenced together; the receiving end of streams.

    "Ports are grouped together for sequencing purposes ...  We require
    that ports in the same group all belong to the same entity." (§2)
    """

    def __init__(
        self,
        group_id: str,
        node_name: str,
        endpoint_address: str,
        parallel: bool = False,
    ) -> None:
        self.group_id = group_id
        self.node_name = node_name
        self.endpoint_address = endpoint_address
        self.ports: Dict[str, Port] = {}
        #: The §2.1 override: "We may provide some explicit overrides to
        #: allow more sophisticated programs that process calls on the
        #: same stream in parallel."  Replies still travel in call order.
        self.parallel = parallel

    def add_port(self, port_id: str, handler_type: HandlerType, impl: Callable) -> Port:
        """Create a port in this group for handler *impl*."""
        if port_id in self.ports:
            raise ValueError(
                "port %r already exists in group %r" % (port_id, self.group_id)
            )
        port = Port(port_id, handler_type, impl, self)
        self.ports[port_id] = port
        return port

    def lookup(self, port_id: str) -> Optional[Port]:
        """The named port, or None."""
        return self.ports.get(port_id)

    def __repr__(self) -> str:
        return "<PortGroup %s: %s>" % (self.group_id, sorted(self.ports))


class HandlerRef:
    """Client-side handle on a remote handler, bound to an agent.

    All refs created from the same agent to ports of the same group share
    one stream and are therefore mutually sequenced.
    """

    def __init__(self, endpoint: Any, agent: Any, descriptor: PortDescriptor) -> None:
        if descriptor.handler_type is None:
            raise ValueError(
                "descriptor %r has no handler type; bind() requires one"
                % (descriptor,)
            )
        self._endpoint = endpoint
        self._agent = agent
        self.descriptor = descriptor
        self.handler_type = descriptor.handler_type

    def _sender(self):
        return self._endpoint.sender_for(self._agent, self.descriptor)

    # -- the four call forms ------------------------------------------------
    def call(self, *args: Any) -> Event:
        """Ordinary RPC: ``m = yield h.call(x)``; waits for the reply."""
        return self._sender().rpc(self.descriptor.port_id, self.handler_type, args)

    def stream(self, *args: Any) -> Promise:
        """Stream call, expression form: ``p = h.stream(x)`` (paper:
        ``x: pt := stream h(3)``)."""
        return self._sender().stream_call(
            self.descriptor.port_id, self.handler_type, args, want_promise=True
        )

    def stream_statement(self, *args: Any) -> None:
        """Stream call, statement form: the reply is decoded and discarded."""
        self._sender().stream_call(
            self.descriptor.port_id, self.handler_type, args, want_promise=False
        )

    def send(self, *args: Any) -> None:
        """Explicit send: a reply arrives only on abnormal termination."""
        self._sender().send(self.descriptor.port_id, self.handler_type, args)

    def batch(self, *args: Any) -> None:
        """Ship an epoch batch frame (see :mod:`repro.graph`): send
        semantics on the wire, flushed immediately at the epoch boundary."""
        self._sender().batch(self.descriptor.port_id, self.handler_type, args)

    # -- stream-level operations --------------------------------------------
    def flush(self) -> None:
        """``flush h`` — push out buffered calls, pull back replies."""
        self._sender().flush()

    def synch(self) -> Event:
        """``synch h`` — yieldable; fails with ``exception_reply`` if any
        earlier stream call terminated abnormally."""
        return self._sender().synch()

    def restart(self) -> None:
        """Restart the underlying stream (break + reincarnation)."""
        self._sender().restart()

    @property
    def stream_sender(self):
        """The underlying sender (for tests and benchmarks)."""
        return self._sender()

    def __repr__(self) -> str:
        return "<HandlerRef %s via %s>" % (self.descriptor, self._agent)
