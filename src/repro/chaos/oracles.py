"""End-to-end campaign oracles: what must hold *no matter what chaos did*.

The online :class:`~repro.obs.monitor.MonitorSuite` already checks the
transport invariants (exactly-once, FIFO per incarnation, promise
lifecycle) as events flow.  The oracles here run once, after the run has
settled, and check whole-run properties against the trace, the workload's
outcome report, and the surviving runtime objects:

* **liveness** — the driver ran to completion under the hard time cap
  (every claim resolved; nothing wedged forever);
* **outcome legality** — every claimed promise produced either the
  fault-free value or a legal ``unavailable``/``failure``/signal (the
  workload's own :meth:`~repro.chaos.workloads.Workload.check_outcomes`,
  including the kv workload's base-4 execution ledger);
* **promise resolution** — every promise created during the run was
  resolved exactly once, with a status in the legal vocabulary.  Stream
  breaks must *resolve* promises (to exceptions), never strand them;
* **reincarnation drain** — for every (stream, incarnation) whose sender
  survived, each buffered call was eventually resolved.  With
  ``auto_restart`` this is exactly the "breaks reincarnate and drain"
  guarantee: a break resolves the old incarnation's calls before the next
  incarnation opens.  Streams whose *sending* guardian crashed are exempt —
  a crash discards volatile sender state by design (§4.2), there is no
  sender left to resolve anything;
* **handler leaks** — a stopped dispatcher (stream break, supersede,
  guardian destruction) must not still own live handler processes once the
  run has settled: orphans are found and destroyed.

Each oracle returns a list of human-readable problem strings, prefixed
with its name; an empty list everywhere means the run passed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.trace import (
    EV_CALL_BUFFERED,
    EV_CALL_RESOLVED,
    EV_PROMISE_CREATED,
    EV_PROMISE_RESOLVED,
)

__all__ = ["run_oracles", "LEGAL_PROMISE_STATUSES"]

#: The paper's outcome vocabulary: a promise resolves to a normal value,
#: an exception the handler signalled, or the transport-level conditions.
LEGAL_PROMISE_STATUSES = frozenset(
    ("normal", "unavailable", "failure", "exception_reply")
)


def _oracle_liveness(context: Dict[str, Any]) -> List[str]:
    if not context["driver_finished"]:
        return [
            "driver did not finish before the hard cap (t=%.1f): "
            "a claim or synch is wedged forever" % context["hard_cap"]
        ]
    return []


def _oracle_outcomes(context: Dict[str, Any]) -> List[str]:
    workload = context["workload"]
    outcomes = context["outcomes"]
    if not context["driver_finished"]:
        return []  # liveness already failed; outcomes are partial
    return workload.check_outcomes(outcomes)


def _oracle_promises(context: Dict[str, Any]) -> List[str]:
    tracer = context["tracer"]
    problems: List[str] = []
    created = {
        event.fields["promise_id"] for event in tracer.events_of(EV_PROMISE_CREATED)
    }
    resolved: Dict[int, str] = {}
    for event in tracer.events_of(EV_PROMISE_RESOLVED):
        promise_id = event.fields["promise_id"]
        status = event.fields.get("status")
        if promise_id in resolved:
            # The lifecycle monitor reports double resolution online; no
            # need to duplicate it here.
            continue
        resolved[promise_id] = status
        if status is not None and status not in LEGAL_PROMISE_STATUSES:
            # Handler-signalled conditions are part of the handler type;
            # the workload declares which are legitimate.
            if status not in context["workload"].allowed_signals:
                problems.append(
                    "promise #%d resolved with illegal status %r" % (promise_id, status)
                )
    stranded = sorted(created - set(resolved))
    if stranded:
        problems.append(
            "%d promise(s) never resolved (first: #%d) — a break must "
            "resolve, not strand" % (len(stranded), stranded[0])
        )
    return problems


def _crashed_guardians(tracer: Any) -> set:
    return {
        event.fields.get("guardian")
        for event in tracer.events_of("guardian.crashed", "guardian.destroyed")
    }


def _oracle_drain(context: Dict[str, Any]) -> List[str]:
    """Per (stream, incarnation): calls buffered == calls resolved.

    Valid because a break resolves every pending call of the old
    incarnation *before* the stream reincarnates, and surviving streams
    resolve via replies; only a sender-side guardian crash legitimately
    discards buffered-but-unresolved calls.
    """
    tracer = context["tracer"]
    buffered: Dict[Tuple[str, int], int] = {}
    resolved: Dict[Tuple[str, int], int] = {}
    for event in tracer.events_of(EV_CALL_BUFFERED):
        key = (event.fields.get("stream"), event.fields.get("incarnation", 0))
        buffered[key] = buffered.get(key, 0) + 1
    for event in tracer.events_of(EV_CALL_RESOLVED):
        key = (event.fields.get("stream"), event.fields.get("incarnation", 0))
        resolved[key] = resolved.get(key, 0) + 1
    crashed = _crashed_guardians(tracer)
    problems: List[str] = []
    for key in sorted(buffered, key=lambda k: (str(k[0]), k[1])):
        stream, incarnation = key
        # stream labels read "<guardian>/<agent>#<n>-><node>:<group>".
        sender_guardian = str(stream).split("/", 1)[0]
        if sender_guardian in crashed:
            continue
        missing = buffered[key] - resolved.get(key, 0)
        if missing > 0:
            problems.append(
                "stream %s incarnation %d: %d buffered call(s) never resolved"
                % (stream, incarnation, missing)
            )
        elif missing < 0:
            problems.append(
                "stream %s incarnation %d: %d more resolutions than buffered calls"
                % (stream, incarnation, -missing)
            )
    return problems


def _oracle_handler_leaks(context: Dict[str, Any]) -> List[str]:
    """No stopped dispatcher still owns a live handler process."""
    system = context["system"]
    problems: List[str] = []
    for guardian in system.guardians.values():
        endpoint = guardian.endpoint
        for key, receiver in sorted(
            endpoint._receivers.items(), key=lambda item: repr(item[0])
        ):
            dispatcher = receiver.dispatcher
            if not dispatcher._stopped:
                continue
            leaked = [p for p in dispatcher._running if p.is_alive]
            if leaked:
                problems.append(
                    "stopped dispatcher for %r still owns %d live handler "
                    "process(es)" % (key, len(leaked))
                )
    return problems


_ORACLES = [
    ("liveness", _oracle_liveness),
    ("outcome", _oracle_outcomes),
    ("promise-resolution", _oracle_promises),
    ("reincarnation-drain", _oracle_drain),
    ("handler-leak", _oracle_handler_leaks),
]


def run_oracles(
    system: Any,
    workload: Any,
    outcomes: List[Tuple[str, str, Any]],
    driver_finished: bool,
    hard_cap: float,
) -> List[str]:
    """Run the post-run oracle battery; returns prefixed problem strings.

    Monitor violations from the online suite are *not* folded in here —
    the engine reports them separately so a verdict distinguishes "the
    transport broke an invariant" from "the end-to-end answer is wrong".
    """
    context = {
        "system": system,
        "workload": workload,
        "outcomes": outcomes,
        "driver_finished": driver_finished,
        "hard_cap": hard_cap,
        "tracer": system.tracer,
    }
    problems: List[str] = []
    for name, oracle in _ORACLES:
        problems.extend("%s: %s" % (name, problem) for problem in oracle(context))
    return problems
