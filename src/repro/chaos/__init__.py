"""repro.chaos — the deterministic fault-campaign engine.

A campaign run is a pure function of ``(workload, seed, intensity)``:
generate a randomized :class:`~repro.chaos.schedule.ChaosSchedule` of
crashes, recoveries, partitions and link-level drop/delay/dup/reorder
chaos; unleash it on a workload with a checkable fault-free answer; judge
the run with online transport monitors plus end-to-end oracles; on
failure, shrink the schedule with delta debugging and pin it in a
replayable JSON seed file.

Entry points::

    python -m repro.chaos run --workload kv --seeds 0:100
    python -m repro.chaos replay tests/chaos/seeds
    python -m repro.chaos shrink --workload kv --seed 17

See DESIGN.md §10 for the architecture and the oracle catalogue.
"""

from repro.chaos.engine import CampaignResult, RunResult, run_campaign, run_one
from repro.chaos.oracles import run_oracles
from repro.chaos.schedule import INTENSITIES, ChaosSchedule, FaultOp
from repro.chaos.seeds import (
    corpus_paths,
    load_seed,
    replay_seed,
    save_seed,
    seed_record,
)
from repro.chaos.shrink import ShrinkReport, shrink_schedule
from repro.chaos.workloads import WORKLOADS, Workload, create_workload

__all__ = [
    "CampaignResult",
    "ChaosSchedule",
    "FaultOp",
    "INTENSITIES",
    "RunResult",
    "ShrinkReport",
    "WORKLOADS",
    "Workload",
    "corpus_paths",
    "create_workload",
    "load_seed",
    "replay_seed",
    "run_campaign",
    "run_one",
    "run_oracles",
    "save_seed",
    "seed_record",
    "shrink_schedule",
]
