"""Chaos-campaign workloads: small worlds with checkable fault-free answers.

Each workload builds a guardian topology, drives a client activity through
it, and knows what every call *should* produce in a fault-free run — so the
campaign oracles can check that whatever chaos did, each claimed promise
resolved either to the fault-free value or to a legal
``unavailable``/``failure`` (the paper's exception vocabulary for broken
streams).

The roster mirrors the repository's three examples plus one new workload:

* ``echo``     — the fault-tolerance example's shape: batched stream calls
  to one echo server, claimed in order;
* ``pipeline`` — the grades-pipeline shape: nested calls, client → mid
  guardian whose handler RPCs a db guardian;
* ``bulkload`` — the kv-bulkload shape: send-heavy (no reply data), flush +
  synch, then verification reads;
* ``kv``       — NEW: a multi-guardian sharded KV store.  Each key receives
  several ``add`` deltas of ``4**j``, so a later read is a base-4 ledger of
  execution counts: digit *j* is exactly how many times add *j* executed.
  Any digit > 1 is a duplicated execution, a set bit for a never-sent call
  is a phantom, and a cleared bit for an acknowledged call is a lost write
  — an end-to-end exactly-once oracle that needs no access to transport
  internals.
* ``kv_graph`` — the same base-4 ledger driven through the PR 10 promise
  graph engine: adds travel as cross-shard routine chains, Zipf-skewed
  multi-key reads join at collectors, and the driver waits with a bounded
  settle instead of claiming (unready promises are abandoned to
  ``unavailable``, never stranded).

Every driver records outcomes as ``(key, tag, value)`` triples where *tag*
is ``"ok"`` or the Argus condition name (``unavailable``, ``failure``, a
signal name, ``exception_reply``).  Drivers always run to completion; they
never let an exception escape, so liveness is assertable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.exceptions import ArgusError
from repro.core.promise import Promise
from repro.entities.system import ArgusSystem
from repro.graph import GraphBuilder, GraphRuntime, register_routine
from repro.streams.config import StreamConfig
from repro.types.signatures import INT, STRING, HandlerType

__all__ = ["Workload", "WORKLOADS", "create_workload"]

Outcome = Tuple[str, str, Any]

#: Transport tuning shared by campaign workloads: small batches and an
#: aggressive retransmission budget, so breaks are detected (and streams
#: reincarnated) quickly and a hostile schedule stays cheap to simulate.
#: Pinned to the legacy fixed-function transport: the checked-in seed
#: corpus digests (tests/chaos/seeds/) were recorded against it and must
#: replay bit-identically.
CHAOS_STREAM_CONFIG = StreamConfig.legacy(
    batch_size=4,
    reply_batch_size=4,
    max_buffer_delay=1.0,
    reply_max_delay=1.0,
    rto=5.0,
    max_retries=2,
    ack_delay=2.0,
    reply_ack_delay=6.0,
    auto_restart=True,
)

#: The same tuning under the PR 5 adaptive windowed transport (SACK,
#: flow control, AIMD batching, adaptive RTO).  Campaigns run it via
#: ``--profile adaptive``; its digests are not comparable with the legacy
#: corpus, but every oracle and monitor must still hold.  ``max_rto``
#: is kept tight: chaos horizons are tens of seconds, and exponential
#: RTO backoff against a crashed node must still walk the full
#: ``max_retries`` ladder and break well inside the liveness hard cap.
CHAOS_ADAPTIVE_STREAM_CONFIG = StreamConfig(
    batch_size=4,
    reply_batch_size=4,
    max_buffer_delay=1.0,
    reply_max_delay=1.0,
    rto=5.0,
    max_retries=2,
    ack_delay=2.0,
    reply_ack_delay=6.0,
    auto_restart=True,
    max_batch_size=16,
    min_rto=1.0,
    max_rto=8.0,
    max_inflight_calls=32,
)


def _claim(promise):
    """``tag, value = yield from _claim(p)`` — claim, mapping exceptions to
    their condition names."""
    try:
        value = yield promise.claim()
    except ArgusError as exc:
        return (exc.condition, None)
    return ("ok", value)


def _await(event):
    """Like :func:`_claim` for a plain yieldable event (RPC, synch)."""
    try:
        value = yield event
    except ArgusError as exc:
        return (exc.condition, None)
    return ("ok", value)


class Workload:
    """Base class: a buildable world plus a driver with known answers."""

    #: Registry key and default display name.
    name = "workload"
    #: How long (simulated) the driver is typically active: fault start
    #: times are generated inside this window.
    horizon = 50.0
    #: Signal conditions a driver may legitimately report under faults.
    allowed_signals: Tuple[str, ...] = ()
    #: The guardian whose node must never crash (it drives the run).
    client = "client"

    def stream_config(self, profile: str = "legacy") -> StreamConfig:
        """Transport config for a campaign run.

        ``legacy`` (the default, and what the checked-in seed digests were
        recorded against) is the fixed-function transport; ``adaptive`` is
        the PR 5 windowed transport.
        """
        if profile == "adaptive":
            return CHAOS_ADAPTIVE_STREAM_CONFIG
        if profile == "legacy":
            return CHAOS_STREAM_CONFIG
        raise ValueError(
            "unknown transport profile %r (known: legacy, adaptive)" % (profile,)
        )

    def network_params(self) -> Dict[str, float]:
        """Network model parameters for this workload's world."""
        return {"latency": 1.0, "kernel_overhead": 0.1, "jitter": 0.5}

    # -- to implement ---------------------------------------------------
    def build(self, system: ArgusSystem) -> None:
        raise NotImplementedError

    def driver(self, ctx):  # a generator: returns List[Outcome]
        raise NotImplementedError

    def expected(self) -> Dict[str, Any]:
        """Fault-free value per outcome key (keys absent here are
        tag-checked only)."""
        return {}

    # -- topology helpers -----------------------------------------------
    def nodes(self, system: ArgusSystem) -> List[str]:
        """All node names of the built world (partition candidates)."""
        return [node.name for node in system.network.nodes()]

    def crashable(self, system: ArgusSystem) -> List[str]:
        """Nodes chaos may crash: everything but the driving client."""
        protected = "node:%s" % self.client
        return [name for name in self.nodes(system) if name != protected]

    # -- outcome checking ------------------------------------------------
    def legal_tags(self) -> frozenset:
        return frozenset(
            ("ok", "unavailable", "failure", "exception_reply") + self.allowed_signals
        )

    def check_outcomes(self, outcomes: List[Outcome]) -> List[str]:
        """Workload-specific end-to-end checks; returns problem strings.

        The default: every tag is legal, and every ``ok`` outcome whose key
        has a fault-free expectation matches it exactly.
        """
        problems: List[str] = []
        legal = self.legal_tags()
        expected = self.expected()
        for key, tag, value in outcomes:
            if tag not in legal:
                problems.append("illegal outcome tag %r for %s" % (tag, key))
            elif tag == "ok" and key in expected and value != expected[key]:
                problems.append(
                    "%s claimed ok with %r; fault-free value is %r"
                    % (key, value, expected[key])
                )
        return problems


# ----------------------------------------------------------------------
# echo — batched stream calls against one server
# ----------------------------------------------------------------------

_ECHO = HandlerType(args=[INT], returns=[INT])


class EchoWorkload(Workload):
    name = "echo"
    horizon = 45.0
    n_batches = 5
    batch = 3

    def build(self, system: ArgusSystem) -> None:
        server = system.create_guardian("server")
        server.state["executed"] = []

        def echo(ctx, x):
            ctx.guardian.state["executed"].append(x)
            yield ctx.compute(0.05)
            return x

        server.create_handler("echo", _ECHO, echo)
        system.create_guardian(self.client)

    def expected(self) -> Dict[str, Any]:
        return {
            "call%02d" % i: i for i in range(self.n_batches * self.batch)
        }

    def driver(self, ctx):
        echo = ctx.lookup("server", "echo")
        outcomes: List[Outcome] = []
        index = 0
        for _ in range(self.n_batches):
            yield ctx.sleep(2.0)
            batch = []
            for _ in range(self.batch):
                key = "call%02d" % index
                try:
                    batch.append((key, echo.stream(index)))
                except ArgusError as exc:
                    outcomes.append((key, exc.condition, None))
                index += 1
            try:
                echo.flush()
            except ArgusError:
                pass  # broken mid-batch: the claims below still resolve
            for key, promise in batch:
                tag, value = yield from _claim(promise)
                outcomes.append((key, tag, value))
        return outcomes


# ----------------------------------------------------------------------
# pipeline — nested calls: client -> mid -> db
# ----------------------------------------------------------------------

_DOUBLE = HandlerType(args=[INT], returns=[INT])
_RECORD = HandlerType(args=[INT], returns=[INT])


class PipelineWorkload(Workload):
    name = "pipeline"
    horizon = 55.0
    n_calls = 10

    def build(self, system: ArgusSystem) -> None:
        db = system.create_guardian("db")

        def double(ctx, x):
            yield ctx.compute(0.05)
            return 2 * x

        db.create_handler("double", _DOUBLE, double)
        mid = system.create_guardian("mid")

        def record(ctx, x):
            doubled = yield ctx.lookup("db", "double").call(x)
            return doubled + 1

        mid.create_handler("record", _RECORD, record)
        system.create_guardian(self.client)

    def expected(self) -> Dict[str, Any]:
        return {"record%02d" % i: 2 * i + 1 for i in range(self.n_calls)}

    def driver(self, ctx):
        record = ctx.lookup("mid", "record")
        outcomes: List[Outcome] = []
        for i in range(self.n_calls):
            yield ctx.sleep(3.0)
            key = "record%02d" % i
            try:
                promise = record.stream(i)
            except ArgusError as exc:
                outcomes.append((key, exc.condition, None))
                continue
            try:
                record.flush()
            except ArgusError:
                pass
            tag, value = yield from _claim(promise)
            outcomes.append((key, tag, value))
        return outcomes


# ----------------------------------------------------------------------
# bulkload — send-heavy: puts as sends, flush + synch, verification gets
# ----------------------------------------------------------------------

_PUT = HandlerType(args=[STRING, INT])  # no results: travels as a send
_GET = HandlerType(args=[STRING], returns=[INT], signals={"missing": []})


class BulkloadWorkload(Workload):
    name = "bulkload"
    horizon = 45.0
    shards = ("shard_a", "shard_b")
    keys_per_shard = 6
    allowed_signals = ("missing",)

    @staticmethod
    def _value(shard: str, i: int) -> int:
        return i * 7 + (1 if shard.endswith("a") else 2)

    def build(self, system: ArgusSystem) -> None:
        for shard in self.shards:
            guardian = system.create_guardian(shard)
            guardian.state["data"] = {}

            def put(ctx, key, value):
                yield ctx.compute(0.02)
                ctx.guardian.state["data"][key] = value
                return None

            def get(ctx, key):
                yield ctx.compute(0.02)
                data = ctx.guardian.state["data"]
                if key not in data:
                    from repro.core.exceptions import Signal

                    raise Signal("missing")
                return data[key]

            guardian.create_handler("put", _PUT, put)
            guardian.create_handler("get", _GET, get)
        system.create_guardian(self.client)

    def expected(self) -> Dict[str, Any]:
        report: Dict[str, Any] = {}
        for shard in self.shards:
            for i in range(self.keys_per_shard):
                report["get:%s:key%d" % (shard, i)] = self._value(shard, i)
        return report

    def driver(self, ctx):
        outcomes: List[Outcome] = []
        for shard in self.shards:
            put = ctx.lookup(shard, "put")
            refused = 0
            for i in range(self.keys_per_shard):
                try:
                    put.send("key%d" % i, self._value(shard, i))
                except ArgusError:
                    refused += 1
            try:
                put.flush()
            except ArgusError:
                pass
            if refused:
                outcomes.append(("put:%s" % shard, "unavailable", None))
            tag, _ = yield from _await(put.synch())
            outcomes.append(("synch:%s" % shard, tag, None))
            yield ctx.sleep(2.0)
        yield ctx.sleep(4.0)
        for shard in self.shards:
            get = ctx.lookup(shard, "get")
            for i in range(self.keys_per_shard):
                key = "get:%s:key%d" % (shard, i)
                try:
                    promise = get.stream("key%d" % i)
                except ArgusError as exc:
                    outcomes.append((key, exc.condition, None))
                    continue
                try:
                    get.flush()
                except ArgusError:
                    pass
                tag, value = yield from _claim(promise)
                outcomes.append((key, tag, value))
        return outcomes

    def check_outcomes(self, outcomes: List[Outcome]) -> List[str]:
        problems = super().check_outcomes(outcomes)
        # Sharpened read-your-writes check: once a shard's synch reported
        # "ok", every put on it completed normally, so a later get of its
        # keys must never signal "missing" (guardian state survives node
        # crashes; only transport state is volatile).
        synched_ok = {
            key.split(":", 1)[1]
            for key, tag, _ in outcomes
            if key.startswith("synch:") and tag == "ok"
        }
        put_trouble = {
            key.split(":", 1)[1]
            for key, tag, _ in outcomes
            if key.startswith("put:") and tag != "ok"
        }
        for key, tag, _ in outcomes:
            if not key.startswith("get:") or tag != "missing":
                continue
            shard = key.split(":")[1]
            if shard in synched_ok and shard not in put_trouble:
                problems.append(
                    "%s signalled missing although synch:%s reported ok" % (key, shard)
                )
        return problems


# ----------------------------------------------------------------------
# kv — NEW: multi-guardian sharded store with a base-4 execution ledger
# ----------------------------------------------------------------------

_ADD = HandlerType(args=[STRING, INT], returns=[INT])
_GETV = HandlerType(args=[STRING], returns=[INT], signals={"missing": []})


class KvWorkload(Workload):
    """Sharded adds with per-call ledger deltas of ``4**j``.

    A read's base-4 digits are execution counts per add round, making
    duplicated, phantom and lost executions distinguishable end-to-end
    (see module docstring).
    """

    name = "kv"
    horizon = 60.0
    n_shards = 3
    n_keys = 6
    rounds = 4
    allowed_signals = ("missing",)

    def shard_of(self, key_index: int) -> str:
        return "shard%d" % (key_index % self.n_shards)

    def build(self, system: ArgusSystem) -> None:
        for s in range(self.n_shards):
            guardian = system.create_guardian("shard%d" % s)
            guardian.state["data"] = {}

            def add(ctx, key, delta):
                yield ctx.compute(0.02)
                data = ctx.guardian.state["data"]
                data[key] = data.get(key, 0) + delta
                return data[key]

            def get(ctx, key):
                yield ctx.compute(0.02)
                data = ctx.guardian.state["data"]
                if key not in data:
                    from repro.core.exceptions import Signal

                    raise Signal("missing")
                return data[key]

            guardian.create_handler("add", _ADD, add)
            guardian.create_handler("get", _GETV, get)
        system.create_guardian(self.client)

    def expected(self) -> Dict[str, Any]:
        full = sum(4 ** j for j in range(self.rounds))  # every digit 1
        return {"get:key%d" % k: full for k in range(self.n_keys)}

    def driver(self, ctx):
        outcomes: List[Outcome] = []
        handles = {
            "shard%d" % s: ctx.lookup("shard%d" % s, "add")
            for s in range(self.n_shards)
        }
        # Key visit order comes from the workload's own named stream —
        # fault streams never perturb it (and vice versa).
        order_rng = ctx.system.rng.stream("workload.kv")
        for j in range(self.rounds):
            yield ctx.sleep(2.5)
            keys = list(range(self.n_keys))
            order_rng.shuffle(keys)
            batch = []
            for k in keys:
                key = "add:key%d:r%d" % (k, j)
                handle = handles[self.shard_of(k)]
                try:
                    batch.append((key, handle.stream("key%d" % k, 4 ** j)))
                except ArgusError as exc:
                    outcomes.append((key, exc.condition, None))
            for handle in handles.values():
                try:
                    handle.flush()
                except ArgusError:
                    pass
            for key, promise in batch:
                tag, value = yield from _claim(promise)
                outcomes.append((key, tag, value))
        yield ctx.sleep(5.0)
        for k in range(self.n_keys):
            key = "get:key%d" % k
            get = ctx.lookup(self.shard_of(k), "get")
            try:
                promise = get.stream("key%d" % k)
            except ArgusError as exc:
                outcomes.append((key, exc.condition, None))
                continue
            try:
                get.flush()
            except ArgusError:
                pass
            tag, value = yield from _claim(promise)
            outcomes.append((key, tag, value))
        return outcomes

    # -- the ledger oracle ----------------------------------------------
    def _digits(self, value: int) -> List[int]:
        digits = []
        for _ in range(self.rounds):
            digits.append(value % 4)
            value //= 4
        digits.append(value)  # overflow bucket: anything past the rounds
        return digits

    def check_outcomes(self, outcomes: List[Outcome]) -> List[str]:
        problems: List[str] = []
        legal = self.legal_tags()
        adds: Dict[str, Dict[int, str]] = {}  # key -> round -> tag
        for key, tag, value in outcomes:
            if tag not in legal:
                problems.append("illegal outcome tag %r for %s" % (tag, key))
            if key.startswith("add:"):
                _, keyname, roundname = key.split(":")
                adds.setdefault(keyname, {})[int(roundname[1:])] = tag
        for key, tag, value in outcomes:
            if not key.startswith("get:"):
                continue
            keyname = key.split(":", 1)[1]
            tags = adds.get(keyname, {})
            if tag == "missing":
                if any(t == "ok" for t in tags.values()):
                    problems.append(
                        "%s signalled missing although an add reported ok" % key
                    )
                continue
            if tag != "ok":
                continue
            digits = self._digits(value)
            if digits[-1] or any(d > 1 for d in digits[:-1]):
                problems.append(
                    "%s ledger %r implies a duplicated add execution" % (key, value)
                )
                continue
            for j in range(self.rounds):
                add_tag = tags.get(j)
                executed = bool(digits[j])
                if add_tag == "ok" and not executed:
                    problems.append(
                        "%s ledger %r lost add r%d that reported ok" % (key, value, j)
                    )
                # A call refused before buffering never reached the wire:
                # its delta must not appear in the ledger.
                elif add_tag not in (None, "ok", "unavailable", "failure") and executed:
                    problems.append(
                        "%s ledger %r contains refused add r%d" % (key, value, j)
                    )
        return problems


# ----------------------------------------------------------------------
# kv_graph — the kv ledger driven through the promise-graph engine (PR 10)
# ----------------------------------------------------------------------
# The graph routines are ordinary module-level functions over guardian
# state; re-registration on repeated imports is a no-op (latest wins).


def _graph_kv_add(state, captures, inputs):
    key, delta = captures
    data = state.setdefault("data", {})
    data[key] = data.get(key, 0) + delta
    return (data[key],)


def _graph_kv_get(state, captures, inputs):
    (key,) = captures
    return (state.setdefault("data", {}).get(key, 0),)


def _graph_kv_sum(state, captures, inputs):
    return (sum(values[0] for values in inputs),)


register_routine(
    "chaos.kv_add",
    _graph_kv_add,
    capture_types=(STRING, INT),
    output_types=(INT,),
    cost=0.02,
)
#: The chainable form: same ledger update, but declares an input row so a
#: chain link can ride its predecessor's output (the value is ignored —
#: the edge exists to exercise cross-shard cascades).
register_routine(
    "chaos.kv_link",
    _graph_kv_add,
    capture_types=(STRING, INT),
    input_types=(INT,),
    output_types=(INT,),
    cost=0.02,
)
register_routine(
    "chaos.kv_get",
    _graph_kv_get,
    capture_types=(STRING,),
    output_types=(INT,),
    cost=0.02,
)
register_routine(
    "chaos.kv_sum",
    _graph_kv_sum,
    input_types=(INT,),
    output_types=(INT,),
    cost=0.02,
)


class KvGraphWorkload(KvWorkload):
    """The base-4 ledger shipped as promise graphs over sharded guardians.

    Every round submits one graph: the shuffled keys are cut into chains
    of ``chain_len`` add links (each link scheduled on its own key, so a
    chain hops shards as a cascading batch frame), plus ``reads_per_round``
    Zipf-skewed two-key read transactions — ``get`` sources joining at a
    ``sum`` collector on the hottest key's shard.  Nothing blocks per
    call: the driver sleeps a settle budget, snapshots whichever promises
    resolved, and abandons the rest to ``unavailable`` (the
    promise-resolution oracle forbids stranding).  Adds are snapshot
    *before* the verification reads are issued, so an add recorded ``ok``
    has provably executed before any read ran and the inherited ledger
    oracle stays sound under every schedule.
    """

    name = "kv_graph"
    horizon = 60.0
    chain_len = 3
    reads_per_round = 2
    read_width = 2
    settle = 8.0
    allowed_signals = ()

    def build(self, system: ArgusSystem) -> None:
        shard_names = ["shard%d" % s for s in range(self.n_shards)]
        shards = []
        for shard_name in shard_names:
            guardian = system.create_guardian(shard_name)
            guardian.state["data"] = {}
            shards.append(guardian)
        client = system.create_guardian(self.client)
        self._runtime = GraphRuntime(system, shard_names, origin=self.client)
        for guardian in shards:
            self._runtime.install_shard(guardian)
        self._runtime.install_origin(client)

    def _zipf_pick(self, rng, width: int) -> List[int]:
        """*width* distinct keys, lower indices heavily favoured."""
        keys = list(range(self.n_keys))
        picked: List[int] = []
        for _ in range(width):
            weights = [1.0 / (keys[i] + 1) for i in range(len(keys))]
            roll = rng.random() * sum(weights)
            index = 0
            for index, weight in enumerate(weights):
                roll -= weight
                if roll <= 0.0:
                    break
            picked.append(keys.pop(index))
        return picked

    def _snapshot(self, pending, outcomes: List[Outcome]) -> None:
        """Record each (key, promise): resolved value, or give it up."""
        for key, promise in pending:
            if promise.ready():
                outcome = promise.outcome()
                if outcome.is_normal:
                    results = outcome.results
                    value = results[0] if len(results) == 1 else list(results)
                    outcomes.append((key, "ok", value))
                else:
                    outcomes.append((key, outcome.exception.condition, None))
            else:
                outcomes.append((key, "unavailable", None))
        self._runtime.abandon()

    def driver(self, ctx):
        outcomes: List[Outcome] = []
        pending: List[Tuple[str, Promise]] = []
        rng = ctx.system.rng.stream("workload.kv_graph")
        for j in range(self.rounds):
            yield ctx.sleep(2.5)
            keys = list(range(self.n_keys))
            rng.shuffle(keys)
            graph = GraphBuilder()
            tags: List[str] = []
            for start in range(0, self.n_keys, self.chain_len):
                node = None
                for k in keys[start:start + self.chain_len]:
                    captures = ("key%d" % k, 4 ** j)
                    if node is None:
                        node = graph.source(
                            "chaos.kv_add", captures=captures, sched_key=k
                        )
                    else:
                        node = node.then(
                            "chaos.kv_link", captures=captures, sched_key=k
                        )
                    node.emit("add:key%d:r%d" % (k, j))
                    tags.append("add:key%d:r%d" % (k, j))
            for t in range(self.reads_per_round):
                picked = self._zipf_pick(rng, self.read_width)
                gets = [
                    graph.source(
                        "chaos.kv_get", captures=("key%d" % k,), sched_key=k
                    )
                    for k in picked
                ]
                graph.collect(
                    "chaos.kv_sum", gets, sched_key=picked[0]
                ).emit("sum:r%d:t%d" % (j, t))
                tags.append("sum:r%d:t%d" % (j, t))
            try:
                promises = self._runtime.submit(ctx, graph, epoch=j)
            except ArgusError as exc:
                outcomes.extend((tag, exc.condition, None) for tag in tags)
                continue
            pending.extend(promises.items())
        yield ctx.sleep(self.settle)
        # Adds settle (or are abandoned) before any verification read is
        # issued: an "ok" add has executed strictly before every read.
        self._snapshot(pending, outcomes)
        graph = GraphBuilder()
        read_tags = ["get:key%d" % k for k in range(self.n_keys)]
        for k in range(self.n_keys):
            graph.source(
                "chaos.kv_get", captures=("key%d" % k,), sched_key=k
            ).emit("get:key%d" % k)
        try:
            reads = self._runtime.submit(ctx, graph, epoch=self.rounds)
        except ArgusError as exc:
            outcomes.extend((tag, exc.condition, None) for tag in read_tags)
            reads = {}
        yield ctx.sleep(self.settle)
        self._snapshot(list(reads.items()), outcomes)
        return outcomes


# ----------------------------------------------------------------------
# vat variants — the same worlds driven by promise continuations (PR 6)
# ----------------------------------------------------------------------
# Outcomes are recorded inside when_resolved callbacks instead of blocking
# claims, so the driver process never waits per call; it only claims one
# final Promise.all gather over the recording continuations.  Outcome
# *order* is therefore resolution order, not call order — deterministic
# for a given seed, but digests are not comparable with the blocking
# variants (each vat workload grows its own seed corpus).


def _record_into(outcomes: List[Outcome], key: str):
    """A ``when_resolved`` callback appending ``(key, tag, value)``."""

    def record(outcome) -> None:
        if outcome.is_normal:
            results = outcome.results
            if len(results) == 0:
                value = None
            elif len(results) == 1:
                value = results[0]
            else:
                value = results
            outcomes.append((key, "ok", value))
        else:
            outcomes.append((key, outcome.exception.condition, None))

    return record


class EchoVatWorkload(EchoWorkload):
    """The echo world with continuation-recorded outcomes."""

    name = "echo_vat"

    def driver(self, ctx):
        echo = ctx.lookup("server", "echo")
        outcomes: List[Outcome] = []
        recorded: List[Promise] = []
        index = 0
        for _ in range(self.n_batches):
            yield ctx.sleep(2.0)
            for _ in range(self.batch):
                key = "call%02d" % index
                try:
                    promise = echo.stream(index)
                except ArgusError as exc:
                    outcomes.append((key, exc.condition, None))
                else:
                    recorded.append(
                        promise.when_resolved(_record_into(outcomes, key))
                    )
                index += 1
            try:
                echo.flush()
            except ArgusError:
                pass
        # One blocking claim for the whole run: the gather over the
        # recording continuations (each fulfils after appending).
        yield Promise.all(ctx.env, recorded).claim()
        return outcomes


class KvVatWorkload(KvWorkload):
    """The kv world with continuation-recorded adds (no round barrier).

    Add rounds are issued on the same sleep cadence as :class:`KvWorkload`
    but nothing blocks between rounds — round *j+1*'s calls can be in
    flight while round *j*'s replies are still arriving, which is exactly
    the overlap the continuation layer exists to allow.  The base-4
    ledger oracle is interleaving-proof (per-round deltas are distinct
    digits), so every check still holds verbatim.
    """

    name = "kv_vat"

    def driver(self, ctx):
        outcomes: List[Outcome] = []
        recorded: List[Promise] = []
        handles = {
            "shard%d" % s: ctx.lookup("shard%d" % s, "add")
            for s in range(self.n_shards)
        }
        order_rng = ctx.system.rng.stream("workload.kv")
        for j in range(self.rounds):
            yield ctx.sleep(2.5)
            keys = list(range(self.n_keys))
            order_rng.shuffle(keys)
            for k in keys:
                key = "add:key%d:r%d" % (k, j)
                handle = handles[self.shard_of(k)]
                try:
                    promise = handle.stream("key%d" % k, 4 ** j)
                except ArgusError as exc:
                    outcomes.append((key, exc.condition, None))
                else:
                    recorded.append(
                        promise.when_resolved(_record_into(outcomes, key))
                    )
            for handle in handles.values():
                try:
                    handle.flush()
                except ArgusError:
                    pass
        # Wait for every add to settle (success or break), then read.
        yield Promise.all(ctx.env, recorded).claim()
        yield ctx.sleep(5.0)
        reads: List[Promise] = []
        for k in range(self.n_keys):
            key = "get:key%d" % k
            get = ctx.lookup(self.shard_of(k), "get")
            try:
                promise = get.stream("key%d" % k)
            except ArgusError as exc:
                outcomes.append((key, exc.condition, None))
                continue
            try:
                get.flush()
            except ArgusError:
                pass
            reads.append(promise.when_resolved(_record_into(outcomes, key)))
        yield Promise.all(ctx.env, reads).claim()
        return outcomes


WORKLOADS: Dict[str, Any] = {
    workload.name: workload
    for workload in (
        EchoWorkload,
        PipelineWorkload,
        BulkloadWorkload,
        KvWorkload,
        KvGraphWorkload,
        EchoVatWorkload,
        KvVatWorkload,
    )
}


def create_workload(name: str) -> Workload:
    """A fresh instance of the named workload (KeyError lists the roster)."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            "no workload named %r (known: %s)" % (name, ", ".join(sorted(WORKLOADS)))
        ) from None
    return factory()
