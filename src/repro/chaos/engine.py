"""The campaign engine: build a world, unleash a schedule, judge the run.

One campaign run is fully determined by ``(workload, seed, intensity)`` —
or by ``(workload, seed, schedule)`` when replaying/shrinking a recorded
schedule.  The engine:

1. builds a fresh :class:`~repro.entities.system.ArgusSystem` seeded with
   the run's seed (all randomness — jitter, workload draws, fault plan,
   link chaos — flows through named :mod:`repro.sim.rng` streams derived
   from that one seed, so a run is bit-reproducible);
2. installs the online :class:`~repro.obs.monitor.MonitorSuite` in
   collection mode (``strict=False``: a campaign records violations and
   keeps going, so one run yields its full evidence);
3. generates (or adopts) a :class:`~repro.chaos.schedule.ChaosSchedule`
   and applies it;
4. drives the workload to completion under a hard simulated-time cap —
   the liveness oracle — then lets the world settle so breaks, restarts
   and server-side streams finish resolving;
5. runs the end-to-end oracle battery (:mod:`repro.chaos.oracles`) and
   folds everything into a :class:`RunResult` with a canonical digest.

The digest covers outcomes, oracle problems, monitor violations, final
simulated time and trace event count — byte-identical digests across runs
and platforms are the determinism guarantee the seed corpus leans on.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.schedule import ChaosSchedule
from repro.chaos.workloads import create_workload
from repro.entities.system import ArgusSystem
from repro.obs.monitor import MonitorSuite

__all__ = ["RunResult", "run_one", "run_campaign", "CampaignResult"]

#: Simulated-time slack past the workload horizon before liveness gives up:
#: generous enough for worst-case retransmission ladders, reincarnations
#: and fault windows that open late in the horizon.
HARD_CAP_SLACK = 140.0
HARD_CAP_FACTOR = 4.0


class RunResult:
    """Everything one campaign run produced, JSON-ready."""

    def __init__(
        self,
        workload: str,
        seed: int,
        intensity: str,
        schedule: ChaosSchedule,
        outcomes: List[Tuple[str, str, Any]],
        problems: List[str],
        violations: List[str],
        driver_finished: bool,
        sim_time: float,
        event_count: int,
    ) -> None:
        self.workload = workload
        self.seed = seed
        self.intensity = intensity
        self.schedule = schedule
        self.outcomes = outcomes
        self.problems = problems
        self.violations = violations
        self.driver_finished = driver_finished
        self.sim_time = sim_time
        self.event_count = event_count

    @property
    def failed(self) -> bool:
        return bool(self.problems or self.violations)

    @property
    def verdict(self) -> str:
        return "fail" if self.failed else "pass"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "intensity": self.intensity,
            "schedule": self.schedule.to_dict(),
            "outcomes": [list(outcome) for outcome in self.outcomes],
            "problems": list(self.problems),
            "violations": list(self.violations),
            "driver_finished": self.driver_finished,
            "sim_time": round(self.sim_time, 6),
            "event_count": self.event_count,
            "verdict": self.verdict,
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """A canonical sha256 over everything observable about the run."""
        payload = {
            "workload": self.workload,
            "seed": self.seed,
            "schedule": self.schedule.to_dict(),
            "outcomes": [list(outcome) for outcome in self.outcomes],
            "problems": list(self.problems),
            "violations": list(self.violations),
            "driver_finished": self.driver_finished,
            "sim_time": round(self.sim_time, 6),
            "event_count": self.event_count,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return "<RunResult %s seed=%d %s problems=%d violations=%d>" % (
            self.workload,
            self.seed,
            self.verdict,
            len(self.problems),
            len(self.violations),
        )


def run_one(
    workload_name: str,
    seed: int,
    intensity: str = "default",
    schedule: Optional[ChaosSchedule] = None,
    trace_path: Optional[str] = None,
    profile: str = "legacy",
) -> RunResult:
    """Execute one campaign run and judge it.

    With *schedule* given (replay/shrink), generation is skipped and the
    provided schedule is applied verbatim; otherwise a schedule is drawn
    from the seed's ``chaos.plan`` stream at *intensity*.  *trace_path*,
    if set, receives the full JSONL event trace (pass it for failing runs
    so CI can attach the evidence).  *profile* selects the transport:
    ``legacy`` (the fixed-function transport the seed-corpus digests were
    recorded against) or ``adaptive`` (PR 5 windowed transport — digests
    are profile-specific, but oracles and monitors judge identically).
    """
    workload = create_workload(workload_name)
    params = workload.network_params()
    system = ArgusSystem(
        seed=seed,
        tracing=True,
        stream_config=workload.stream_config(profile),
        **params
    )
    suite = MonitorSuite.install(system.tracer, strict=False)
    workload.build(system)
    if workload.client not in system.guardians:
        raise RuntimeError(
            "workload %r never built its client guardian %r"
            % (workload_name, workload.client)
        )
    if schedule is None:
        schedule = ChaosSchedule.generate(
            system.rng,
            nodes=workload.nodes(system),
            crashable=workload.crashable(system),
            horizon=workload.horizon,
            intensity=intensity,
        )
    schedule.apply(system.network, system.rng)
    client = system.guardian(workload.client)
    process = client.spawn(workload.driver, label="chaos-driver")
    hard_cap = workload.horizon * HARD_CAP_FACTOR + HARD_CAP_SLACK
    problems: List[str] = []
    try:
        system.run(until=hard_cap)
    except BaseException as exc:
        # An escaped exception (a driver bug, or a runtime process dying
        # undefused) aborts the simulation mid-flight; that is a campaign
        # finding, never an engine crash.
        problems.append(
            "driver: simulation aborted by %s: %s" % (type(exc).__name__, exc)
        )

    driver_finished = process.triggered
    outcomes: List[Tuple[str, str, Any]] = []
    if driver_finished and not problems:
        try:
            raw = process.value_or_raise()
        except BaseException as exc:  # a driver bug is a finding, not a crash
            problems.append(
                "driver: crashed with %s: %s" % (type(exc).__name__, exc)
            )
        else:
            outcomes = [tuple(outcome) for outcome in raw]

    from repro.chaos.oracles import run_oracles

    problems.extend(
        run_oracles(system, workload, outcomes, driver_finished, hard_cap)
    )
    violations = [str(violation) for violation in suite.violations]
    if trace_path is not None:
        system.tracer.export_jsonl(trace_path)
    return RunResult(
        workload=workload_name,
        seed=seed,
        intensity=intensity,
        schedule=schedule,
        outcomes=outcomes,
        problems=problems,
        violations=violations,
        driver_finished=driver_finished,
        sim_time=system.now,
        event_count=len(system.tracer.events),
    )


class CampaignResult:
    """Aggregate of a seed-range campaign over one or more workloads."""

    def __init__(self) -> None:
        self.runs: List[RunResult] = []

    def add(self, result: RunResult) -> None:
        self.runs.append(result)

    @property
    def failures(self) -> List[RunResult]:
        return [run for run in self.runs if run.failed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, Any]:
        by_workload: Dict[str, Dict[str, int]] = {}
        for run in self.runs:
            bucket = by_workload.setdefault(run.workload, {"pass": 0, "fail": 0})
            bucket[run.verdict] += 1
        return {
            "runs": len(self.runs),
            "failures": len(self.failures),
            "by_workload": by_workload,
        }


def run_campaign(
    workloads: List[str],
    seeds: List[int],
    intensity: str = "default",
    progress: Optional[Any] = None,
    profile: str = "legacy",
) -> CampaignResult:
    """Run every (workload, seed) pair; *progress* (if given) is called
    with each :class:`RunResult` as it lands."""
    campaign = CampaignResult()
    for workload_name in workloads:
        for seed in seeds:
            result = run_one(
                workload_name, seed, intensity=intensity, profile=profile
            )
            campaign.add(result)
            if progress is not None:
                progress(result)
    return campaign
