"""Failure shrinking: minimize a failing chaos schedule by delta debugging.

When a campaign run fails, its schedule may contain five faults and a
hostile link profile of which only one crash actually matters.  The
shrinker reduces the schedule to a locally minimal one that *still fails*,
so the checked-in repro (and the human reading it) deals with the smallest
adversary possible.

The algorithm is classic ddmin over the op list (Zeller & Hildebrandt,
"Simplifying and Isolating Failure-Inducing Input"): try dropping chunks
of ops, halving granularity when stuck, re-running the deterministic
engine as the test oracle.  Afterwards the link profile is minimized
field-by-field (drop it outright, else zero each rate).

Because every probe is a full deterministic simulation with the *same
seed*, "still fails" means "this smaller schedule reproduces a failure on
this seed" — the currency the seed corpus trades in.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.chaos.engine import RunResult, run_one
from repro.chaos.schedule import ChaosSchedule, FaultOp
from repro.net.faults import LinkFaultProfile

__all__ = ["shrink_schedule", "ShrinkReport"]


class ShrinkReport:
    """The outcome of a shrink: the minimal schedule plus bookkeeping."""

    def __init__(
        self,
        schedule: ChaosSchedule,
        result: RunResult,
        probes: int,
        removed_ops: int,
        link_simplified: bool,
    ) -> None:
        self.schedule = schedule
        self.result = result
        self.probes = probes
        self.removed_ops = removed_ops
        self.link_simplified = link_simplified

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schedule": self.schedule.to_dict(),
            "probes": self.probes,
            "removed_ops": self.removed_ops,
            "link_simplified": self.link_simplified,
            "problems": list(self.result.problems),
            "violations": list(self.result.violations),
        }


def _ddmin(
    ops: List[FaultOp], still_fails: Callable[[List[FaultOp]], bool]
) -> List[FaultOp]:
    """Minimize *ops* such that ``still_fails(ops)`` holds (assumes it
    holds for the input)."""
    granularity = 2
    while len(ops) >= 2:
        chunk = max(1, len(ops) // granularity)
        reduced = False
        start = 0
        while start < len(ops):
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and still_fails(candidate):
                ops = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Restart the sweep on the smaller list.
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(len(ops), granularity * 2)
    if len(ops) == 1 and still_fails([]):
        return []
    return ops


def shrink_schedule(
    workload: str,
    seed: int,
    schedule: ChaosSchedule,
    intensity: str = "default",
    progress: Optional[Callable[[str], None]] = None,
    profile: str = "legacy",
) -> ShrinkReport:
    """Shrink *schedule* to a locally minimal one that still fails.

    Raises ``ValueError`` if the input schedule does not fail — a shrink
    needs a reproducing starting point.  *profile* must match the run
    being shrunk: a failure found under the adaptive transport need not
    reproduce under the legacy one.
    """
    probes = [0]

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    def judge(candidate: ChaosSchedule) -> RunResult:
        probes[0] += 1
        return run_one(
            workload, seed, intensity=intensity, schedule=candidate, profile=profile
        )

    baseline = judge(schedule)
    if not baseline.failed:
        raise ValueError(
            "schedule does not fail on workload=%r seed=%d; nothing to shrink"
            % (workload, seed)
        )
    note("baseline fails with %d problem(s)" % len(baseline.problems))

    def ops_fail(ops: List[FaultOp]) -> bool:
        return judge(ChaosSchedule(ops=ops, link=schedule.link)).failed

    original_count = len(schedule.ops)
    ops = list(schedule.ops)
    if ops:
        ops = _ddmin(ops, ops_fail)
        note("ops: %d -> %d" % (original_count, len(ops)))

    # Link profile: drop it entirely if the failure survives, else try
    # zeroing each rate (a profile with one live rate reads much better).
    link = schedule.link
    link_simplified = False
    if link is not None:
        if judge(ChaosSchedule(ops=ops, link=None)).failed:
            link = None
            link_simplified = True
            note("link profile: dropped")
        else:
            fields = ("drop_rate", "dup_rate", "delay_rate", "reorder_rate")
            for field in fields:
                if getattr(link, field) == 0.0:
                    continue
                record = link.to_dict()
                record[field] = 0.0
                candidate = LinkFaultProfile.from_dict(record)
                if candidate.active and judge(
                    ChaosSchedule(ops=ops, link=candidate)
                ).failed:
                    link = candidate
                    link_simplified = True
                    note("link profile: %s zeroed" % field)

    minimal = ChaosSchedule(ops=ops, link=link)
    final = judge(minimal)
    if not final.failed:  # paranoia: never return a non-reproducing shrink
        minimal = schedule
        final = baseline
    return ShrinkReport(
        schedule=minimal,
        result=final,
        probes=probes[0],
        removed_ops=original_count - len(minimal.ops),
        link_simplified=link_simplified,
    )
