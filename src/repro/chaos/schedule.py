"""The chaos schedule: a serializable description of one run's faults.

A :class:`ChaosSchedule` is the *entire* adversarial input of a campaign
run: timed node crashes/recoveries and partition/heal windows (the
scheduled-fault layer of :mod:`repro.net.faults`) plus an optional
link-level fault profile (per-message drop / delay / duplication /
reordering).  It is plain data — generated from a seed, JSON round-tripped
into seed-corpus files, minimized op-by-op by the shrinker — and is applied
to a freshly built world with :meth:`ChaosSchedule.apply`.

Generation draws only from the ``"chaos.plan"`` named stream and runtime
link faults draw only from ``"chaos.link"``, so fault randomness never
perturbs workload or jitter randomness (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.net.faults import FaultPlan, LinkFaultInjector, LinkFaultProfile
from repro.net.network import Network
from repro.sim.rng import RngRegistry

__all__ = ["FaultOp", "ChaosSchedule", "INTENSITIES"]


class FaultOp:
    """One scheduled fault: a crash/recovery or a partition/heal window.

    ``until`` is the recovery/heal time, or None for a fault that persists
    past the end of the run (the paper's permanent-trouble case: outcomes
    must still map to ``unavailable``/``failure``).
    """

    __slots__ = ("kind", "targets", "at", "until")

    KINDS = ("crash", "partition")

    def __init__(
        self, kind: str, targets: Sequence[str], at: float, until: Optional[float]
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError("unknown fault kind %r" % (kind,))
        expected = 1 if kind == "crash" else 2
        if len(targets) != expected:
            raise ValueError("%s takes %d target(s), got %r" % (kind, expected, targets))
        if until is not None and until <= at:
            raise ValueError("until must be after at")
        self.kind = kind
        self.targets = tuple(targets)
        self.at = float(at)
        self.until = None if until is None else float(until)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "targets": list(self.targets),
            "at": self.at,
            "until": self.until,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultOp":
        return cls(record["kind"], record["targets"], record["at"], record.get("until"))

    def __repr__(self) -> str:
        window = "t=%g" % self.at if self.until is None else "t=%g..%g" % (self.at, self.until)
        return "<FaultOp %s %s %s>" % (self.kind, "+".join(self.targets), window)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultOp) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash((self.kind, self.targets, self.at, self.until))


#: Generation presets: how adversarial a generated schedule is.
INTENSITIES: Dict[str, Dict[str, Any]] = {
    # A background-noise tier: occasional faults, mild link chaos.
    "light": {
        "min_faults": 0, "max_faults": 2,
        "min_outage": 2.0, "max_outage": 10.0, "forever_rate": 0.1,
        "link_rate": 0.5, "max_drop": 0.1, "max_dup": 0.05,
        "max_delay_rate": 0.1, "max_reorder": 0.05,
    },
    # The campaign default: most runs see several faults plus link chaos.
    "default": {
        "min_faults": 0, "max_faults": 5,
        "min_outage": 2.0, "max_outage": 18.0, "forever_rate": 0.2,
        "link_rate": 0.7, "max_drop": 0.25, "max_dup": 0.15,
        "max_delay_rate": 0.2, "max_reorder": 0.15,
    },
    # The nightly deep tier: dense fault windows, hostile links.
    "heavy": {
        "min_faults": 2, "max_faults": 8,
        "min_outage": 1.0, "max_outage": 25.0, "forever_rate": 0.25,
        "link_rate": 0.9, "max_drop": 0.4, "max_dup": 0.25,
        "max_delay_rate": 0.3, "max_reorder": 0.25,
    },
}


class ChaosSchedule:
    """A full fault schedule for one run: timed ops + link-level chaos."""

    def __init__(
        self,
        ops: Optional[List[FaultOp]] = None,
        link: Optional[LinkFaultProfile] = None,
    ) -> None:
        self.ops: List[FaultOp] = list(ops or [])
        self.link = link

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        registry: RngRegistry,
        nodes: Sequence[str],
        crashable: Sequence[str],
        horizon: float,
        intensity: str = "default",
    ) -> "ChaosSchedule":
        """Draw a random schedule from the registry's ``chaos.plan`` stream.

        *nodes* are all node names (partition candidates); *crashable*
        restricts crashes (the driving client must stay up so liveness is
        assertable); *horizon* bounds fault start times to the window the
        workload is actually active in.
        """
        try:
            params = INTENSITIES[intensity]
        except KeyError:
            raise ValueError(
                "unknown intensity %r (known: %s)"
                % (intensity, ", ".join(sorted(INTENSITIES)))
            ) from None
        if len(nodes) < 2:
            raise ValueError("need at least two nodes to generate chaos")
        rng = registry.stream("chaos.plan")
        ops: List[FaultOp] = []
        for _ in range(rng.randint(params["min_faults"], params["max_faults"])):
            at = round(rng.uniform(0.5, horizon * 0.8), 3)
            outage = rng.uniform(params["min_outage"], params["max_outage"])
            until = None if rng.random() < params["forever_rate"] else round(at + outage, 3)
            if crashable and rng.random() < 0.5:
                ops.append(FaultOp("crash", [rng.choice(list(crashable))], at, until))
            else:
                a, b = rng.sample(list(nodes), 2)
                ops.append(FaultOp("partition", [a, b], at, until))
        link = None
        if rng.random() < params["link_rate"]:
            link = LinkFaultProfile(
                drop_rate=round(rng.uniform(0.0, params["max_drop"]), 3),
                dup_rate=round(rng.uniform(0.0, params["max_dup"]), 3),
                delay_rate=round(rng.uniform(0.0, params["max_delay_rate"]), 3),
                reorder_rate=round(rng.uniform(0.0, params["max_reorder"]), 3),
                delay_min=0.5,
                delay_max=round(rng.uniform(1.0, 8.0), 3),
            )
            if not link.active:
                link = None
        return cls(ops=ops, link=link)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, network: Network, registry: RngRegistry) -> None:
        """Install every op (and the link profile) onto *network*.

        Node names are validated eagerly by the underlying
        :class:`~repro.net.faults.FaultPlan`; link-level draws come from
        the registry's ``chaos.link`` stream.
        """
        plan = FaultPlan()
        for op in self.ops:
            if op.kind == "crash":
                plan.crash(op.targets[0], at=op.at, recover_at=op.until)
            else:
                plan.partition(op.targets[0], op.targets[1], at=op.at, heal_at=op.until)
        plan.apply(network)
        if self.link is not None and self.link.active:
            network.install_link_faults(
                LinkFaultInjector(registry.stream("chaos.link"), default=self.link)
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "ops": [op.to_dict() for op in self.ops],
            "link": None if self.link is None else self.link.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "ChaosSchedule":
        link = record.get("link")
        return cls(
            ops=[FaultOp.from_dict(op) for op in record.get("ops", [])],
            link=None if link is None else LinkFaultProfile.from_dict(link),
        )

    def canonical_json(self) -> str:
        """A stable, byte-reproducible JSON rendering (for digests/files)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def __len__(self) -> int:
        return len(self.ops) + (1 if self.link is not None else 0)

    def __repr__(self) -> str:
        return "<ChaosSchedule ops=%d link=%r>" % (len(self.ops), self.link)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChaosSchedule) and self.to_dict() == other.to_dict()
