"""The seed corpus: replayable JSON records of interesting campaign runs.

A seed file pins everything needed to re-execute one run bit-for-bit —
workload, seed, intensity, the exact (usually shrunk) schedule — plus the
verdict and digest the run produced when it was recorded.  Replaying
asserts the engine still reproduces that exact observable behaviour:

* a corpus entry recorded as ``fail`` guards a *known bug* until it is
  fixed (then the entry is re-recorded as ``pass``, preserving the
  schedule as a regression test);
* an entry recorded as ``pass`` guards against *new* regressions — if a
  transport change breaks an invariant under that schedule, or merely
  changes observable behaviour (digest drift), replay flags it.

Files live under ``tests/chaos/seeds/`` and are replayed by the tier-1 CI
matrix on every push (``python -m repro.chaos replay tests/chaos/seeds``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from repro.chaos.engine import RunResult, run_one
from repro.chaos.schedule import ChaosSchedule

__all__ = [
    "SEED_FORMAT",
    "seed_record",
    "save_seed",
    "load_seed",
    "replay_seed",
    "corpus_paths",
]

SEED_FORMAT = 1


def seed_record(result: RunResult, note: str = "") -> Dict[str, Any]:
    """Build a corpus record from a finished run."""
    return {
        "format": SEED_FORMAT,
        "workload": result.workload,
        "seed": result.seed,
        "intensity": result.intensity,
        "schedule": result.schedule.to_dict(),
        "expect": {
            "verdict": result.verdict,
            "digest": result.digest(),
            "problems": list(result.problems),
            "violations": list(result.violations),
        },
        "note": note,
    }


def save_seed(record: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_seed(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        record = json.load(handle)
    if record.get("format") != SEED_FORMAT:
        raise ValueError(
            "%s: unsupported seed format %r (this engine reads format %d)"
            % (path, record.get("format"), SEED_FORMAT)
        )
    for field in ("workload", "seed", "schedule", "expect"):
        if field not in record:
            raise ValueError("%s: seed record is missing %r" % (path, field))
    return record


def replay_seed(record: Dict[str, Any]) -> Tuple[bool, RunResult, List[str]]:
    """Re-run a corpus record; returns ``(ok, result, mismatches)``.

    *ok* means the replay reproduced the recorded verdict *and* digest —
    i.e. the run's observable behaviour is unchanged since recording.
    """
    schedule = ChaosSchedule.from_dict(record["schedule"])
    result = run_one(
        record["workload"],
        int(record["seed"]),
        intensity=record.get("intensity", "default"),
        schedule=schedule,
    )
    expect = record["expect"]
    mismatches: List[str] = []
    if result.verdict != expect.get("verdict"):
        mismatches.append(
            "verdict: recorded %r, replay produced %r"
            % (expect.get("verdict"), result.verdict)
        )
    if result.digest() != expect.get("digest"):
        mismatches.append(
            "digest: recorded %s, replay produced %s"
            % (expect.get("digest"), result.digest())
        )
    return (not mismatches, result, mismatches)


def corpus_paths(root: str) -> List[str]:
    """All ``*.json`` seed files under *root* (a file is returned as-is)."""
    if os.path.isfile(root):
        return [root]
    paths: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".json"):
                paths.append(os.path.join(dirpath, filename))
    return sorted(paths)
