"""``python -m repro.chaos`` — run, replay, and shrink chaos campaigns.

Subcommands::

    run     — sweep a seed range over one or all workloads; on failure,
              optionally shrink each failing schedule and drop replayable
              artifacts (seed JSON + JSONL trace) into --artifacts
    replay  — re-execute corpus seed files and assert each reproduces its
              recorded verdict and digest
    shrink  — minimize one failing (workload, seed) run's schedule

Output is deterministic (no wall-clock, no host data): two invocations
with the same arguments on the same tree print identical bytes — CI diffs
runs of ``run`` to prove seed-determinism.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from repro.chaos.engine import run_one
from repro.chaos.schedule import INTENSITIES
from repro.chaos.seeds import corpus_paths, load_seed, replay_seed, save_seed, seed_record
from repro.chaos.shrink import shrink_schedule
from repro.chaos.workloads import WORKLOADS


def _parse_seeds(spec: str) -> List[int]:
    """``"0:100"`` -> range, ``"3,17,42"`` -> list, ``"7"`` -> [7]."""
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        start, stop = int(lo), int(hi)
        if stop <= start:
            raise argparse.ArgumentTypeError(
                "seed range %r is empty (use start:stop with stop > start)" % spec
            )
        return list(range(start, stop))
    return [int(part) for part in spec.split(",") if part]


def _workload_roster(name: str) -> List[str]:
    if name == "all":
        return sorted(WORKLOADS)
    if name not in WORKLOADS:
        raise SystemExit(
            "unknown workload %r (known: %s, or 'all')" % (name, ", ".join(sorted(WORKLOADS)))
        )
    return [name]


def _cmd_run(args: argparse.Namespace) -> int:
    seeds = _parse_seeds(args.seeds)
    roster = _workload_roster(args.workload)
    failures = []
    total = 0
    for workload in roster:
        for seed in seeds:
            result = run_one(
                workload, seed, intensity=args.intensity, profile=args.profile
            )
            total += 1
            if result.failed:
                failures.append(result)
                print(
                    "FAIL %s seed=%d problems=%d violations=%d digest=%s"
                    % (
                        workload,
                        seed,
                        len(result.problems),
                        len(result.violations),
                        result.digest()[:16],
                    )
                )
                for problem in result.problems:
                    print("     problem: %s" % problem)
                for violation in result.violations:
                    print("     violation: %s" % violation)
            elif args.verbose:
                print(
                    "pass %s seed=%d faults=%d digest=%s"
                    % (workload, seed, len(result.schedule.ops), result.digest()[:16])
                )
    print(
        "campaign: %d run(s), %d failure(s) [workloads: %s; seeds: %s; intensity: %s]"
        % (total, len(failures), ",".join(roster), args.seeds, args.intensity)
    )

    if failures and args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)
        for result in failures:
            stem = "%s-seed%d" % (result.workload, result.seed)
            schedule = result.schedule
            if not args.no_shrink:
                report = shrink_schedule(
                    result.workload,
                    result.seed,
                    schedule,
                    intensity=result.intensity,
                    progress=lambda note: print("  shrink[%s]: %s" % (stem, note)),
                    profile=args.profile,
                )
                schedule = report.schedule
                result = report.result
                print(
                    "  shrink[%s]: %d probe(s), %d op(s) removed"
                    % (stem, report.probes, report.removed_ops)
                )
            seed_path = os.path.join(args.artifacts, stem + ".seed.json")
            save_seed(seed_record(result, note="captured by chaos run"), seed_path)
            trace_path = os.path.join(args.artifacts, stem + ".trace.jsonl")
            run_one(
                result.workload,
                result.seed,
                intensity=result.intensity,
                schedule=schedule,
                trace_path=trace_path,
                profile=args.profile,
            )
            print("  artifacts: %s %s" % (seed_path, trace_path))
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    paths: List[str] = []
    for root in args.paths:
        if not os.path.exists(root):
            raise ValueError(
                "%s: no such file or directory (expected a seed .json file "
                "or a directory of them, e.g. tests/chaos/seeds)" % (root,)
            )
        paths.extend(corpus_paths(root))
    if not paths:
        print("no seed files found under: %s" % " ".join(args.paths))
        return 1
    mismatched = 0
    for path in paths:
        try:
            record = load_seed(path)
        except json.JSONDecodeError as exc:
            raise ValueError(
                "%s: not a seed file (invalid JSON: %s)" % (path, exc)
            ) from None
        ok, result, mismatches = replay_seed(record)
        if ok:
            print(
                "ok   %s (%s seed=%d verdict=%s)"
                % (path, record["workload"], record["seed"], result.verdict)
            )
        else:
            mismatched += 1
            print("DRIFT %s" % path)
            for mismatch in mismatches:
                print("      %s" % mismatch)
            for problem in result.problems:
                print("      replay problem: %s" % problem)
            for violation in result.violations:
                print("      replay violation: %s" % violation)
    print("replay: %d seed(s), %d drifted" % (len(paths), mismatched))
    return 1 if mismatched else 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    result = run_one(args.workload, args.seed, intensity=args.intensity)
    if not result.failed:
        print(
            "pass %s seed=%d at intensity=%s — nothing to shrink"
            % (args.workload, args.seed, args.intensity)
        )
        return 1
    report = shrink_schedule(
        args.workload,
        args.seed,
        result.schedule,
        intensity=args.intensity,
        progress=lambda note: print("shrink: %s" % note),
    )
    print(
        "minimal schedule: %d op(s)%s after %d probe(s)"
        % (
            len(report.schedule.ops),
            "" if report.schedule.link is None else " + link profile",
            report.probes,
        )
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    if args.out:
        save_seed(
            seed_record(report.result, note="shrunk by python -m repro.chaos shrink"),
            args.out,
        )
        print("wrote %s" % args.out)
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos campaigns for the promises runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="sweep a seed range")
    p_run.add_argument("--workload", default="all", help="workload name or 'all'")
    p_run.add_argument("--seeds", default="0:25", help="A:B range or comma list")
    p_run.add_argument(
        "--intensity", default="default", choices=sorted(INTENSITIES)
    )
    p_run.add_argument(
        "--profile",
        default="legacy",
        choices=("legacy", "adaptive"),
        help="transport profile (legacy fixed-function or PR 5 adaptive)",
    )
    p_run.add_argument(
        "--artifacts", default=None, help="directory for failure artifacts"
    )
    p_run.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking failing schedules"
    )
    p_run.add_argument("--verbose", action="store_true", help="print passing runs too")
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser("replay", help="replay corpus seed files")
    p_replay.add_argument("paths", nargs="+", help="seed files or directories")
    p_replay.set_defaults(func=_cmd_replay)

    p_shrink = sub.add_parser("shrink", help="minimize one failing run")
    p_shrink.add_argument("--workload", required=True)
    p_shrink.add_argument("--seed", type=int, required=True)
    p_shrink.add_argument(
        "--intensity", default="default", choices=sorted(INTENSITIES)
    )
    p_shrink.add_argument("--out", default=None, help="write the shrunk seed file here")
    p_shrink.set_defaults(func=_cmd_shrink)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        # Bad inputs (missing/empty/corrupt files) are user errors, not
        # engine bugs: one actionable line on stderr, exit 2, no traceback.
        sys.stderr.write("error: %s\n" % (exc,))
        return 2


if __name__ == "__main__":
    sys.exit(main())
