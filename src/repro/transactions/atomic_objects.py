"""Atomic objects: lock-protected, undoable state for actions.

Argus built atomicity out of atomic objects with read/write locking and
version stacks.  We provide the two shapes the examples and tests need —
an atomic cell and an atomic map — with strict two-phase locking: locks
are acquired as operations touch the object and released only when the
owning action commits or aborts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Set, Tuple

from repro.sim.events import Event
from repro.sim.kernel import Environment
from repro.transactions.action import Action, ActionAborted

__all__ = ["AtomicCell", "AtomicMap", "LockTimeout"]


class LockTimeout(Exception):
    """A lock could not be acquired within the requested bound."""


class _RWLock:
    """Reader/writer lock keyed by actions, with FIFO waiting."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.readers: Set[Action] = set()
        self.writer: Optional[Action] = None
        self._waiters: Deque[Tuple[bool, Action, Event]] = deque()

    def acquire_read(self, action: Action) -> Event:
        event = Event(self.env)
        if self._can_read(action):
            self.readers.add(action)
            self._hook_release(action)
            event.succeed()
        else:
            self._waiters.append((False, action, event))
        return event

    def acquire_write(self, action: Action) -> Event:
        event = Event(self.env)
        if self._can_write(action):
            self._promote(action)
            event.succeed()
        else:
            self._waiters.append((True, action, event))
        return event

    def _can_read(self, action: Action) -> bool:
        return self.writer is None or self.writer is action

    def _can_write(self, action: Action) -> bool:
        if self.writer is not None:
            return self.writer is action
        others = self.readers - {action}
        return not others

    def _promote(self, action: Action) -> None:
        self.readers.discard(action)
        had_lock = self.writer is action
        self.writer = action
        if not had_lock:
            self._hook_release(action)

    def _hook_release(self, action: Action) -> None:
        action.on_release(self._release)

    def _release(self, action: Action) -> None:
        self.readers.discard(action)
        if self.writer is action:
            self.writer = None
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._waiters:
            is_write, action, event = self._waiters[0]
            if event.triggered:
                self._waiters.popleft()
                continue
            if not action.active:
                self._waiters.popleft()
                event.defused = True
                event.fail(ActionAborted("action aborted while waiting for a lock"))
                continue
            if is_write:
                if self._can_write(action):
                    self._waiters.popleft()
                    self._promote(action)
                    event.succeed()
                    continue
            else:
                if self._can_read(action):
                    self._waiters.popleft()
                    self.readers.add(action)
                    self._hook_release(action)
                    event.succeed()
                    continue
            break


class AtomicCell:
    """A single atomic value with read/write locking and undo."""

    def __init__(self, env: Environment, initial: Any = None) -> None:
        self.env = env
        self._value = initial
        self._lock = _RWLock(env)
        self._dirty_by: Optional[Action] = None

    def read(self, action: Action) -> Event:
        """Yieldable: acquire a read lock and deliver the current value."""
        action.require_active()
        acquired = self._lock.acquire_read(action)
        done = Event(self.env)

        def deliver(_event: Event) -> None:
            if not _event.ok:
                done.defused = True
                done.fail(_event.value)
                return
            done.succeed(self._value)

        if acquired.triggered:
            deliver(acquired)
        else:
            acquired.callbacks.append(deliver)
        return done

    def write(self, action: Action, value: Any) -> Event:
        """Yieldable: acquire the write lock and install *value*.

        The pre-action value is restored if the action aborts.
        """
        action.require_active()
        acquired = self._lock.acquire_write(action)
        done = Event(self.env)

        def deliver(_event: Event) -> None:
            if not _event.ok:
                done.defused = True
                done.fail(_event.value)
                return
            if self._dirty_by is not action:
                base = self._value
                self._dirty_by = action

                def undo() -> None:
                    self._value = base
                    self._dirty_by = None

                def clear(_action: Action) -> None:
                    if self._dirty_by is _action:
                        self._dirty_by = None

                action.log_undo(undo)
                action.on_release(clear)
            self._value = value
            done.succeed(value)

        if acquired.triggered:
            deliver(acquired)
        else:
            acquired.callbacks.append(deliver)
        return done

    def peek(self) -> Any:
        """Unsynchronized read, for tests and reporting only."""
        return self._value


class AtomicMap:
    """A dictionary of independently locked atomic cells."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._cells: Dict[Any, AtomicCell] = {}

    def cell(self, key: Any) -> AtomicCell:
        """The cell for *key*, created on first use."""
        cell = self._cells.get(key)
        if cell is None:
            cell = AtomicCell(self.env)
            self._cells[key] = cell
        return cell

    def read(self, action: Action, key: Any) -> Event:
        """Yieldable read of *key* under *action*."""
        return self.cell(key).read(action)

    def write(self, action: Action, key: Any, value: Any) -> Event:
        """Yieldable write of *key* under *action* (undone on abort)."""
        return self.cell(key).write(action, value)

    def peek(self, key: Any) -> Any:
        """Unsynchronized read of *key*, for tests and reporting only."""
        cell = self._cells.get(key)
        return None if cell is None else cell.peek()

    def snapshot(self) -> Dict[Any, Any]:
        """Unsynchronized view of all committed-or-current values."""
        return {key: cell.peek() for key, cell in self._cells.items()}

    def __len__(self) -> int:
        return len(self._cells)
