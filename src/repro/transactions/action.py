"""Atomic actions (a deliberately small slice of Argus transactions).

"An atomic transaction either completes entirely or is guaranteed to have
no effect.  Thus, running the recording process as an atomic transaction
can ensure that if it is not possible to record all grades, none will be
recorded." (§4.2)

The full Argus transaction system (nested actions, two-phase commit across
guardians, stable storage) is outside this paper's scope; what §4.2 relies
on is exactly this: a coenter arm runs as an action, and if the arm fails
or is terminated early, its writes to atomic objects are undone.  That is
what this module provides: top-level actions with strict two-phase locking
over the atomic objects of :mod:`repro.transactions.atomic_objects`.
Distributed commit is documented as a substitution in DESIGN.md.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from repro.sim.kernel import Environment

__all__ = ["Action", "ActionAborted", "run_as_action", "current_action"]

_action_ids = itertools.count(1)

#: States of an action.
ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class ActionAborted(Exception):
    """An operation was attempted under an action that has aborted."""


class Action:
    """A top-level atomic action: locks + undo log + two-phase discipline."""

    def __init__(self, env: Environment, label: str = "") -> None:
        self.env = env
        self.action_id = next(_action_ids)
        self.label = label
        self.state = ACTIVE
        self._undo: List[Callable[[], None]] = []
        self._release: List[Callable[["Action"], None]] = []

    def __repr__(self) -> str:
        tag = " %r" % self.label if self.label else ""
        return "<Action #%d%s %s>" % (self.action_id, tag, self.state)

    @property
    def active(self) -> bool:
        return self.state == ACTIVE

    def require_active(self) -> None:
        """Raise ActionAborted unless the action is still active."""
        if self.state != ACTIVE:
            raise ActionAborted("action %r is %s" % (self, self.state))

    # ------------------------------------------------------------------
    # Hooks registered by atomic objects
    # ------------------------------------------------------------------
    def log_undo(self, undo: Callable[[], None]) -> None:
        """Register an undo closure run (in reverse order) on abort."""
        self.require_active()
        self._undo.append(undo)

    def on_release(self, release: Callable[["Action"], None]) -> None:
        """Register a lock-release closure run at commit or abort."""
        self.require_active()
        self._release.append(release)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Make the action's effects permanent and release its locks."""
        if self.state == COMMITTED:
            return
        self.require_active()
        self.state = COMMITTED
        self._undo.clear()
        self._run_releases()

    def abort(self) -> None:
        """Undo every effect of the action and release its locks."""
        if self.state == ABORTED:
            return
        if self.state == COMMITTED:
            raise RuntimeError("cannot abort a committed action")
        self.state = ABORTED
        for undo in reversed(self._undo):
            undo()
        self._undo.clear()
        self._run_releases()

    def _run_releases(self) -> None:
        releases, self._release = self._release, []
        for release in releases:
            release(self)


def current_action(ctx: Any) -> Optional[Action]:
    """The action attached to an activity context, if any."""
    return getattr(ctx, "action", None)


def run_as_action(ctx: Any, procedure: Callable, *args: Any):
    """Run ``procedure(ctx, *args)`` as an atomic action (``yield from``).

    The action is attached to *ctx* as ``ctx.action`` so atomic objects
    used by the procedure can find it.  It commits on normal return and
    aborts on any exception — including the
    :class:`~repro.sim.process.Interrupt` delivered by coenter early
    termination, which is how "recording grades is not something that
    should be done part way" is honoured.
    """
    action = Action(ctx.env, label=getattr(procedure, "__name__", "action"))
    previous = getattr(ctx, "action", None)
    ctx.action = action
    try:
        result = yield from procedure(ctx, *args)
    except BaseException:
        action.abort()
        raise
    finally:
        ctx.action = previous
    action.commit()
    return result
