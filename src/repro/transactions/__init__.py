"""Atomic actions and atomic objects (the §4.2 slice of Argus
transactions; see DESIGN.md for the substitution rationale)."""

from repro.transactions.action import Action, ActionAborted, current_action, run_as_action
from repro.transactions.atomic_objects import AtomicCell, AtomicMap, LockTimeout

__all__ = [
    "Action",
    "ActionAborted",
    "AtomicCell",
    "AtomicMap",
    "LockTimeout",
    "current_action",
    "run_as_action",
]
