"""Binary framing of stream packets for real-socket transports.

The simulator hands :class:`~repro.streams.wire.CallPacket` /
:class:`~repro.streams.wire.ReplyPacket` objects straight to the peer; a
real transport (:mod:`repro.rt`) has to put them on a byte stream.  This
module is that wire format: each packet becomes one **frame** —

    ``[4-byte big-endian body length] [1-byte frame type] [body ...]``

— so a TCP stream of frames is self-delimiting and a reader can recover
packet boundaries from arbitrarily torn reads (:class:`FrameAssembler`).
Call arguments and outcomes inside the packets are already bytes,
produced by the PR 7 compiled flat codecs (:mod:`repro.encoding.xrep`);
this layer only serializes the packet *structure* around them, in the
same big-endian struct style as the value codecs.

Three frame types exist:

* ``HELLO`` — sent once by the dialing side of a TCP connection to
  identify which node it carries traffic for, so the acceptor can route
  replies back over the same connection;
* ``CALL`` — a :class:`CallPacket`;
* ``REPLY`` — a :class:`ReplyPacket`.

Every malformed input — truncation, trailing garbage, unknown type or
kind bytes, invalid UTF-8, oversized length prefixes — raises
:class:`~repro.encoding.errors.DecodeError` and nothing else, so a
transport can treat any decode failure as a corrupted connection.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Tuple, Union

from repro.encoding.errors import DecodeError
from repro.streams.wire import (
    KIND_RPC,
    KIND_SEND,
    KIND_STREAM,
    BreakNotice,
    CallEntry,
    CallPacket,
    ReplyEntry,
    ReplyPacket,
    StreamKey,
)

__all__ = [
    "FRAME_HELLO",
    "FRAME_CALL",
    "FRAME_REPLY",
    "MAX_FRAME_BYTES",
    "Hello",
    "encode_hello",
    "encode_packet",
    "encode_frame",
    "decode_body",
    "FrameAssembler",
]

#: Frame type bytes (the first byte of every frame body).
FRAME_HELLO = 0
FRAME_CALL = 1
FRAME_REPLY = 2

#: Hard ceiling on one frame's body size.  A stream that announces more
#: than this is corrupt (or hostile); the assembler refuses it rather
#: than buffering without bound.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")
_SEQ = struct.Struct(">q")
_U32 = struct.Struct(">I")
_SPAN = struct.Struct(">qqq")

#: Call kinds on the wire; must stay stable across versions.
_KIND_TO_BYTE = {KIND_RPC: 1, KIND_STREAM: 2, KIND_SEND: 3}
_BYTE_TO_KIND = {code: kind for kind, code in _KIND_TO_BYTE.items()}


class Hello:
    """Decoded ``HELLO`` frame: the peer node this connection speaks for."""

    __slots__ = ("node",)

    def __init__(self, node: str) -> None:
        self.node = node

    def __repr__(self) -> str:
        return "<Hello %s>" % (self.node,)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _w_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += _LEN.pack(len(data))
    out += data


def _w_bytes(out: bytearray, data: bytes) -> None:
    out += _LEN.pack(len(data))
    out += data


def _w_key(out: bytearray, key: StreamKey) -> None:
    _w_str(out, key.src_node)
    _w_str(out, key.src_address)
    _w_str(out, key.agent_id)
    _w_str(out, key.dst_node)
    _w_str(out, key.dst_address)
    _w_str(out, key.group_id)


def encode_hello(node: str) -> bytes:
    """The body of a ``HELLO`` frame for *node*."""
    out = bytearray((FRAME_HELLO,))
    _w_str(out, node)
    return bytes(out)


def _encode_call(packet: CallPacket) -> bytes:
    out = bytearray((FRAME_CALL,))
    _w_key(out, packet.key)
    out += _U32.pack(packet.incarnation)
    out += _SEQ.pack(packet.ack_reply_seq)
    flags = 0
    if packet.flush_replies:
        flags |= 1
    if packet.synch_seq is not None:
        flags |= 2
    out.append(flags)
    if packet.synch_seq is not None:
        out += _SEQ.pack(packet.synch_seq)
    out += _U32.pack(packet.attempt)
    out += _U32.pack(len(packet.entries))
    for entry in packet.entries:
        out += _SEQ.pack(entry.seq)
        _w_str(out, entry.port_id)
        out.append(_KIND_TO_BYTE[entry.kind])
        _w_bytes(out, bytes(entry.args_bytes))
        if entry.span is None:
            out.append(0)
        else:
            out.append(1)
            out += _SPAN.pack(*entry.span)
    return bytes(out)


def _encode_reply(packet: ReplyPacket) -> bytes:
    out = bytearray((FRAME_REPLY,))
    _w_key(out, packet.key)
    out += _U32.pack(packet.incarnation)
    out += _SEQ.pack(packet.ack_call_seq)
    out += _SEQ.pack(packet.completed_seq)
    flags = 0
    if packet.broken is not None:
        flags |= 1
    if packet.window is not None:
        flags |= 2
    out.append(flags)
    broken = packet.broken
    if broken is not None:
        out.append((1 if broken.synchronous else 0) | (2 if broken.permanent else 0))
        out += _SEQ.pack(broken.after_seq)
        _w_str(out, broken.reason)
    if packet.window is not None:
        out += _U32.pack(packet.window)
    out += _U32.pack(len(packet.sack_ranges))
    for lo, hi in packet.sack_ranges:
        out += _SEQ.pack(lo)
        out += _SEQ.pack(hi)
    out += _U32.pack(len(packet.entries))
    for entry in packet.entries:
        out += _SEQ.pack(entry.seq)
        _w_bytes(out, bytes(entry.outcome_bytes))
    return bytes(out)


def encode_packet(packet: Union[CallPacket, ReplyPacket]) -> bytes:
    """The frame body for *packet* (no length prefix)."""
    if isinstance(packet, CallPacket):
        return _encode_call(packet)
    if isinstance(packet, ReplyPacket):
        return _encode_reply(packet)
    raise TypeError("cannot frame %r" % (packet,))


def encode_frame(body: bytes) -> bytes:
    """A complete frame: 4-byte length prefix plus *body*."""
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError("frame body of %d bytes exceeds limit" % (len(body),))
    return _LEN.pack(len(body)) + body


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
class _Reader:
    """Offset-threaded reader over one frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        data = self.data
        pos = self.pos
        end = pos + count
        if end > len(data):
            raise DecodeError(
                "truncated frame: wanted %d bytes at offset %d of %d"
                % (count, pos, len(data))
            )
        self.pos = end
        return data[pos:end]

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def seq(self) -> int:
        return _SEQ.unpack(self.take(8))[0]

    def span(self) -> Tuple[int, int, int]:
        return _SPAN.unpack(self.take(24))

    def str_(self) -> str:
        length = self.u32()
        if length > MAX_FRAME_BYTES:
            raise DecodeError("string length %d exceeds frame limit" % (length,))
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError("invalid UTF-8 in frame: %s" % (exc,)) from None

    def bytes_(self) -> bytes:
        length = self.u32()
        if length > MAX_FRAME_BYTES:
            raise DecodeError("byte-field length %d exceeds frame limit" % (length,))
        return self.take(length)

    def done(self) -> None:
        if self.pos != len(self.data):
            raise DecodeError(
                "%d trailing bytes after frame payload" % (len(self.data) - self.pos,)
            )


def _r_key(r: _Reader) -> StreamKey:
    return StreamKey(
        src_node=r.str_(),
        src_address=r.str_(),
        agent_id=r.str_(),
        dst_node=r.str_(),
        dst_address=r.str_(),
        group_id=r.str_(),
    )


def _decode_call(r: _Reader) -> CallPacket:
    key = _r_key(r)
    incarnation = r.u32()
    ack_reply_seq = r.seq()
    flags = r.u8()
    if flags & ~3:
        raise DecodeError("unknown call-packet flags 0x%02x" % (flags,))
    synch_seq: Optional[int] = r.seq() if flags & 2 else None
    attempt = r.u32()
    count = r.u32()
    entries: List[CallEntry] = []
    for _ in range(count):
        seq = r.seq()
        port_id = r.str_()
        kind_byte = r.u8()
        kind = _BYTE_TO_KIND.get(kind_byte)
        if kind is None:
            raise DecodeError("unknown call kind byte %d" % (kind_byte,))
        args_bytes = r.bytes_()
        span_flag = r.u8()
        if span_flag > 1:
            raise DecodeError("unknown span-presence byte %d" % (span_flag,))
        span = r.span() if span_flag else None
        entries.append(CallEntry(seq, port_id, kind, args_bytes, span))
    r.done()
    return CallPacket(
        key,
        incarnation,
        entries,
        ack_reply_seq=ack_reply_seq,
        flush_replies=bool(flags & 1),
        synch_seq=synch_seq,
        attempt=attempt,
    )


def _decode_reply(r: _Reader) -> ReplyPacket:
    key = _r_key(r)
    incarnation = r.u32()
    ack_call_seq = r.seq()
    completed_seq = r.seq()
    flags = r.u8()
    if flags & ~3:
        raise DecodeError("unknown reply-packet flags 0x%02x" % (flags,))
    broken: Optional[BreakNotice] = None
    if flags & 1:
        bflags = r.u8()
        if bflags & ~3:
            raise DecodeError("unknown break flags 0x%02x" % (bflags,))
        after_seq = r.seq()
        reason = r.str_()
        broken = BreakNotice(
            synchronous=bool(bflags & 1),
            after_seq=after_seq,
            reason=reason,
            permanent=bool(bflags & 2),
        )
    window: Optional[int] = r.u32() if flags & 2 else None
    sack_count = r.u32()
    sack_ranges = tuple((r.seq(), r.seq()) for _ in range(sack_count))
    count = r.u32()
    entries = [ReplyEntry(r.seq(), r.bytes_()) for _ in range(count)]
    r.done()
    return ReplyPacket(
        key,
        incarnation,
        entries,
        ack_call_seq=ack_call_seq,
        completed_seq=completed_seq,
        broken=broken,
        sack_ranges=sack_ranges,
        window=window,
    )


def decode_body(body: bytes) -> Any:
    """Decode one frame body into a :class:`Hello`, :class:`CallPacket`
    or :class:`ReplyPacket`; :class:`DecodeError` on anything malformed."""
    if not body:
        raise DecodeError("empty frame body")
    r = _Reader(bytes(body))
    ftype = r.u8()
    if ftype == FRAME_HELLO:
        node = r.str_()
        r.done()
        return Hello(node)
    if ftype == FRAME_CALL:
        return _decode_call(r)
    if ftype == FRAME_REPLY:
        return _decode_reply(r)
    raise DecodeError("unknown frame type byte %d" % (ftype,))


class FrameAssembler:
    """Reassembles frames from an arbitrarily chunked byte stream.

    ``feed(data)`` returns the bodies of every frame completed by *data*,
    holding partial length prefixes and partial bodies across calls — a
    torn read anywhere (even mid-prefix) is handled.  The assembler only
    splits the stream; bodies still go through :func:`decode_body`.
    """

    __slots__ = ("_buffer", "_need")

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Body length of the frame under assembly, or None while the
        #: 4-byte prefix itself is incomplete.
        self._need: Optional[int] = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb *data*; return the bodies of all frames now complete."""
        self._buffer += data
        bodies: List[bytes] = []
        buffer = self._buffer
        while True:
            if self._need is None:
                if len(buffer) < 4:
                    break
                need = _LEN.unpack(bytes(buffer[:4]))[0]
                if need > MAX_FRAME_BYTES:
                    raise DecodeError(
                        "announced frame of %d bytes exceeds the %d-byte limit"
                        % (need, MAX_FRAME_BYTES)
                    )
                del buffer[:4]
                self._need = need
            if len(buffer) < self._need:
                break
            bodies.append(bytes(buffer[: self._need]))
            del buffer[: self._need]
            self._need = None
        return bodies
