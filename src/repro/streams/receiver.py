"""The receiving end of a call-stream.

One :class:`StreamReceiver` exists per incoming stream incarnation at a
guardian.  It provides the receiver half of the §2 guarantees:

* exactly-once, in-call-order delivery of requests to the application
  (duplicates from retransmission are recognized and re-acknowledged;
  out-of-order arrivals are buffered);
* replies returned in call order, buffered and batched ("replies ...
  are buffered and sent when convenient"), with normal replies of *sends*
  omitted — the cumulative ``completed_seq`` watermark stands in for them;
* reaction to the sender's ``flush`` and ``synch`` flags;
* stream breaks: a decode failure breaks the stream *synchronously* (the
  failing call and its predecessors are unaffected, later calls are
  discarded); lost receiver state (crash) breaks it *asynchronously*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.outcome import Outcome
from repro.encoding.errors import DecodeError, EncodeError
from repro.encoding.transmit import OutcomeCodec
from repro.net.message import Message
from repro.net.network import Network, NodeDown
from repro.sim.alarm import Alarm
from repro.sim.kernel import Environment
from repro.streams.config import StreamConfig
from repro.types.signatures import HandlerType

from repro.streams.wire import (
    KIND_BATCH,
    KIND_RPC,
    KIND_SEND,
    BreakNotice,
    CallEntry,
    CallPacket,
    ReplyEntry,
    ReplyPacket,
    StreamKey,
)

__all__ = ["StreamReceiver", "CallDispatcher", "ReceiverStats"]

# Codec used to encode failure outcomes for calls whose port is unknown.
_EMPTY_HANDLER_TYPE = HandlerType()


class CallDispatcher:
    """What the transport needs from the entity layer.

    ``dispatch`` is called once per in-order delivered request; the entity
    layer executes the call (respecting per-stream sequencing) and reports
    the outcome back via :meth:`StreamReceiver.post_outcome`.
    """

    def dispatch(
        self,
        receiver: "StreamReceiver",
        seq: int,
        port_id: str,
        args_bytes: bytes,
        kind: str,
        span: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        """Execute one in-order request; report via post_outcome.

        *span* is the call's causal trace context (None when tracing is
        disabled); the entity layer attaches it to the handler process so
        nested calls made by the handler parent under this call.
        """
        raise NotImplementedError

    def stop(self, reason: str) -> None:
        """Called when the stream breaks; pending work should be dropped."""


class ReceiverStats:
    """Counters exposed for tests and benchmarks."""

    def __init__(self) -> None:
        self.calls_delivered = 0
        self.duplicates = 0
        self.reply_packets_sent = 0
        self.pure_acks_sent = 0
        self.sack_ranges_sent = 0
        self.breaks = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters, stable-ordered by name so
        golden tests can compare snapshots textually."""
        return {name: self.__dict__[name] for name in sorted(self.__dict__)}


class StreamReceiver:
    """Receiving end of one stream incarnation."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        key: StreamKey,
        incarnation: int,
        dispatcher: CallDispatcher,
        config: Optional[StreamConfig] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.key = key
        self.incarnation = incarnation
        self.dispatcher = dispatcher
        self.config = config or StreamConfig()
        self.stats = ReceiverStats()
        #: Compact stream identity used in trace events and metric labels
        #: (matches the sending side's label for the same stream).
        self.trace_label = "%s->%s:%s" % (key.agent_id, key.dst_node, key.group_id)

        self.expected_seq = 1
        self.completed_seq = 0
        #: True until the receiver accepts its first entry-bearing packet.
        #: On a node that has crashed, the transport endpoint keeps
        #: applying the stream-start rule (first transmission, entries
        #: from seq 1) to virgin receivers: a receiver opened by an empty
        #: packet (a reincarnation announce or a bare ack) must not let a
        #: later go-back-N retransmission deliver entries that may
        #: already have executed before the crash.
        self.virgin = True
        self.broken: Optional[BreakNotice] = None
        self._out_of_order: Dict[int, CallEntry] = {}
        self._reply_buffer: List[ReplyEntry] = []
        self._reply_log: Dict[int, ReplyEntry] = {}
        self._pending_synch_seq: Optional[int] = None
        #: Seq range (lo, hi) of the calls that travelled with the most
        #: recent explicit flush: their replies are sent as soon as
        #: produced (the paper's flush "ensures the last few calls (and
        #: replies) are sent out quickly").  Earlier calls keep batching.
        self._flush_through_range = (0, -1)
        #: Outcomes that arrived ahead of order (possible when the entity
        #: layer executes same-stream calls in parallel, the §2.1
        #: override); released strictly in call order.
        self._outcome_stash: Dict[int, Tuple[Outcome, str, Optional[OutcomeCodec]]] = {}
        self._next_outcome_seq = 1
        self._last_acked_call = 0
        self._last_sent_completed = 0
        #: Window carried by the most recent reply packet (None before the
        #: first one); lets a prune-driven re-opening trigger an explicit
        #: window update instead of waiting for the next natural reply.
        self._last_advertised_window: Optional[int] = None
        self._reply_alarm = Alarm(env, self._on_reply_deadline)
        self._ack_alarm = Alarm(env, self._on_ack_deadline)

    # ------------------------------------------------------------------
    # Packet intake
    # ------------------------------------------------------------------
    def on_call_packet(self, packet: CallPacket) -> None:
        """Process an incoming batch of call requests."""
        # The sender has resolved replies up to ack_reply_seq; forget them.
        for seq in [s for s in self._reply_log if s <= packet.ack_reply_seq]:
            del self._reply_log[seq]

        if self.broken is not None:
            # "further calls on that stream will be discarded at the
            # receiver" — but keep telling the sender why.
            self._flush_replies()
            return

        # Note: a fresh receiver seeing mid-stream sequence numbers is NOT
        # treated as lost state — the first packet may simply have been
        # lost; go-back-N retransmission delivers the gap.  Genuinely lost
        # receiver state (a crash) surfaces as retransmission exhaustion at
        # the sender: an asynchronous break, as §2 specifies.
        resend_needed = False
        new_out_of_order = False
        entries = sorted(packet.entries, key=lambda entry: entry.seq)
        for entry in entries:
            if self.broken is not None:
                break
            if entry.seq < self.expected_seq:
                self.stats.duplicates += 1
                tracer = self.env.tracer
                if tracer is not None:
                    tracer.emit(
                        "stream.call_duplicate",
                        stream=self.trace_label,
                        incarnation=self.incarnation,
                        seq=entry.seq,
                    )
                resend_needed = True
                continue
            if entry.seq == self.expected_seq:
                self._deliver(entry)
                self._drain_out_of_order()
            elif entry.seq not in self._out_of_order:
                self._out_of_order[entry.seq] = entry
                new_out_of_order = True

        if packet.synch_seq is not None:
            if self._pending_synch_seq is None or packet.synch_seq > self._pending_synch_seq:
                self._pending_synch_seq = packet.synch_seq
        if packet.flush_replies and entries and packet.attempt == 0:
            # The calls that travelled *with* an explicit flush are its
            # "last few calls": their replies go out as soon as produced.
            # Earlier calls keep normal reply batching, and retransmission
            # probes (attempt > 0) only flush current state below — they
            # must not disable batching for everything they happen to
            # carry.
            self._flush_through_range = (
                min(entry.seq for entry in entries),
                max(entry.seq for entry in entries),
            )

        if resend_needed:
            # Lost replies suspected: retransmit everything unacknowledged.
            self._flush_replies(include_log=True)
        elif packet.flush_replies and (
            self._reply_buffer or self._reply_log or self._ack_outstanding()
        ):
            # Include the whole unacknowledged reply log: a flush request
            # may be the sender probing after *reply* packets were lost,
            # and only entries the sender has not acked are still in the
            # log, so this stays cheap in the common case.  Under the
            # adaptive transport, first-transmission flushes (attempt 0)
            # are routine segments of a window-paced burst, not loss
            # probes — resending the log there is pure duplication, and
            # actual reply loss still surfaces as an attempt > 0 probe
            # when the sender's RTO fires.
            self._flush_replies(
                include_log=not self.config.selective_retransmit
                or packet.attempt > 0
            )
        elif new_out_of_order and self.config.selective_retransmit:
            # A gap just opened (or widened): tell the sender immediately
            # which seqs we hold, so its selective retransmission — and the
            # duplicate-ack fast path — can react before the RTO expires.
            self._flush_replies()
        elif self._pending_synch_seq is not None and self.completed_seq >= self._pending_synch_seq:
            self._flush_replies()
        elif self._window_update_due():
            # The ack we just absorbed pruned the reply log enough to
            # re-open a significant chunk of window; a sender stalled on
            # our last (small) advertisement only learns that from a reply
            # packet, so send one now rather than leaving it blocked.
            self._flush_replies()
        elif self._ack_outstanding():
            self._ack_alarm.arm_if_idle(self.config.ack_delay)

    def _drain_out_of_order(self) -> None:
        while self.broken is None and self.expected_seq in self._out_of_order:
            self._deliver(self._out_of_order.pop(self.expected_seq))

    def _deliver(self, entry: CallEntry) -> None:
        """Hand one in-order request to the entity layer."""
        self.expected_seq = entry.seq + 1
        self.stats.calls_delivered += 1
        span = entry.span
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.call_delivered",
                stream=self.trace_label,
                incarnation=self.incarnation,
                seq=entry.seq,
                port=entry.port_id,
                kind=entry.kind,
                trace_id=span[0] if span is not None else None,
                span_id=span[1] if span is not None else None,
                parent_span_id=span[2] if span is not None else None,
            )
        self.dispatcher.dispatch(
            self, entry.seq, entry.port_id, entry.args_bytes, entry.kind, span
        )

    # ------------------------------------------------------------------
    # Outcome intake (from the entity layer)
    # ------------------------------------------------------------------
    def post_outcome(
        self,
        seq: int,
        outcome: Outcome,
        kind: str,
        codec: Optional[OutcomeCodec],
    ) -> None:
        """Record the outcome of call *seq* and ship it per policy.

        Outcomes may be posted out of call order (parallel execution mode);
        they are buffered and *released* strictly in call order, preserving
        the §2 guarantee that replies travel in call order.

        *codec* is None only when the port was unknown; the failure outcome
        is then encoded with an empty-signature codec.
        """
        if seq < self._next_outcome_seq or seq in self._outcome_stash:
            return  # duplicate
        self._outcome_stash[seq] = (outcome, kind, codec)
        while self._next_outcome_seq in self._outcome_stash:
            next_seq = self._next_outcome_seq
            next_outcome, next_kind, next_codec = self._outcome_stash.pop(next_seq)
            self._next_outcome_seq += 1
            self._release_outcome(next_seq, next_outcome, next_kind, next_codec)

    def _release_outcome(
        self,
        seq: int,
        outcome: Outcome,
        kind: str,
        codec: Optional[OutcomeCodec],
    ) -> None:
        if self.broken is not None and seq > self.broken.after_seq:
            return
        self.completed_seq = max(self.completed_seq, seq)

        entry: Optional[ReplyEntry] = None
        if kind in (KIND_SEND, KIND_BATCH) and outcome.is_normal:
            # "in the case of sends, normal replies can be omitted."
            # Epoch batch frames share the omission: the watermark acks
            # a whole epoch in one field.
            entry = None
        else:
            encoder = codec or OutcomeCodec.for_type(_EMPTY_HANDLER_TYPE)
            try:
                outcome_bytes = encoder.encode(outcome)
            except EncodeError as exc:
                # Result encoding failed at the receiver: the call fails and
                # "when the problem happens at the receiver, the stream
                # breaks" (§3) — synchronously, after this call.
                outcome_bytes = encoder.encode(
                    Outcome.failure("could not encode: %s" % (exc,))
                )
                entry = ReplyEntry(seq, outcome_bytes)
                self._append_reply(entry)
                self._break(
                    BreakNotice(
                        synchronous=True,
                        after_seq=seq,
                        reason="could not encode reply for call %d" % seq,
                    )
                )
                return
            entry = ReplyEntry(seq, outcome_bytes)

        if entry is not None:
            self._append_reply(entry)

        if kind == KIND_RPC:
            self._flush_replies()
        elif len(self._reply_buffer) >= self.config.reply_batch_size:
            self._flush_replies()
        elif self.config.reply_max_delay == 0.0 and self._reply_buffer:
            self._flush_replies()
        elif self._pending_synch_seq is not None and self.completed_seq >= self._pending_synch_seq:
            self._flush_replies()
        elif self._flush_through_range[0] <= seq <= self._flush_through_range[1] and (
            self.config.max_inflight_calls <= 0
            or self.completed_seq >= self.expected_seq - 1
        ):
            # This call was covered by an explicit flush: its reply (or
            # completion watermark, for sends) goes out promptly.  Under
            # flow control a flush can cover a whole window-deferred burst;
            # while earlier delivered calls are still executing, more
            # replies are imminent, so let them coalesce (the batch-size
            # trigger above and the reply alarm below bound the delay) —
            # the burst's last completion still flushes immediately.
            self._flush_replies()
        elif self._reply_buffer:
            self._reply_alarm.arm_if_idle(self.config.reply_max_delay)
        elif self._ack_outstanding():
            # A send completed normally: only the watermark must travel.
            self._ack_alarm.arm_if_idle(self.config.ack_delay)

    def fail_call(self, seq: int, reason: str, kind: str) -> None:
        """Entity-layer helper: record a failure outcome for call *seq*."""
        self.post_outcome(seq, Outcome.failure(reason), kind, None)

    def decode_failure(self, seq: int, kind: str, exc: DecodeError) -> None:
        """Argument decoding failed: fail the call and break the stream.

        "Such a failure causes the call to terminate with the failure
        exception.  In addition, when the problem happens at the receiver,
        the stream breaks so that further calls on that stream will be
        discarded." (§3)
        """
        self.post_outcome(
            seq, Outcome.failure("could not decode: %s" % (exc,)), kind, None
        )
        if self.broken is None:
            self._break(
                BreakNotice(
                    synchronous=True,
                    after_seq=seq,
                    reason="could not decode call %d" % seq,
                )
            )

    # ------------------------------------------------------------------
    # Reply shipping
    # ------------------------------------------------------------------
    def _append_reply(self, entry: ReplyEntry) -> None:
        self._reply_log[entry.seq] = entry
        self._reply_buffer.append(entry)

    def _ack_outstanding(self) -> bool:
        return (
            self.expected_seq - 1 > self._last_acked_call
            or self.completed_seq > self._last_sent_completed
        )

    def _sack_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Out-of-order holdings compressed into closed (lo, hi) ranges."""
        if not self._out_of_order:
            return ()
        seqs = sorted(self._out_of_order)
        ranges = []
        lo = prev = seqs[0]
        for seq in seqs[1:]:
            if seq == prev + 1:
                prev = seq
            else:
                ranges.append((lo, prev))
                lo = prev = seq
        ranges.append((lo, prev))
        return tuple(ranges)

    def _advertised_window(self) -> Optional[int]:
        """The flow-control window derived from our backlog.

        Backlog = calls delivered but not yet completed (executing) plus
        unacknowledged replies held in the log plus out-of-order holdings.
        Floored at one so the stream always admits *some* progress — the
        bound on receiver memory is ``max_inflight_calls`` plus that one
        probe batch, not an absolute cap.
        """
        limit = self.config.max_inflight_calls
        if limit <= 0:
            return None
        backlog = (
            (self.expected_seq - 1 - self.completed_seq)
            + len(self._reply_log)
            + len(self._out_of_order)
        )
        return max(1, limit - backlog)

    def _window_update_due(self) -> bool:
        """Did pruning re-open enough window to be worth announcing?"""
        limit = self.config.max_inflight_calls
        if limit <= 0 or self.broken is not None:
            return False
        last = self._last_advertised_window
        if last is None:
            return False
        return self._advertised_window() - last >= max(1, limit // 4)

    def _flush_replies(self, include_log: bool = False) -> None:
        self._reply_alarm.cancel()
        self._ack_alarm.cancel()
        if include_log:
            entries = sorted(self._reply_log.values(), key=lambda e: e.seq)
            self._reply_buffer = []
        else:
            entries, self._reply_buffer = self._reply_buffer, []
        sack_ranges = self._sack_ranges() if self.config.selective_retransmit else ()
        packet = ReplyPacket(
            self.key,
            self.incarnation,
            entries,
            ack_call_seq=self.expected_seq - 1,
            completed_seq=self.completed_seq,
            broken=self.broken,
            sack_ranges=sack_ranges,
            window=self._advertised_window(),
        )
        message = Message(
            self.key.dst_node,
            self.key.src_node,
            self.key.src_address,
            packet,
            packet.size,
        )
        try:
            self.network.send(message, want_done=False)
        except NodeDown:
            return
        self._last_acked_call = self.expected_seq - 1
        self._last_sent_completed = self.completed_seq
        self._last_advertised_window = packet.window
        self.stats.reply_packets_sent += 1
        if not entries:
            self.stats.pure_acks_sent += 1
        if sack_ranges:
            self.stats.sack_ranges_sent += len(sack_ranges)
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.reply_packet_sent",
                stream=self.trace_label,
                incarnation=self.incarnation,
                entries=len(entries),
                ack_call_seq=packet.ack_call_seq,
                completed_seq=packet.completed_seq,
                sacks=len(sack_ranges),
                window=packet.window,
                # Reply entries travel in seq order; the range (plus the
                # completed_seq watermark, which covers sends with no reply
                # entry) dates each call's reply-on-wire phase.
                seq_lo=entries[0].seq if entries else None,
                seq_hi=entries[-1].seq if entries else None,
            )
        if self._pending_synch_seq is not None and self.completed_seq >= self._pending_synch_seq:
            self._pending_synch_seq = None

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _on_reply_deadline(self) -> None:
        if self._reply_buffer:
            self._flush_replies()

    def _on_ack_deadline(self) -> None:
        if self._ack_outstanding():
            self._flush_replies()

    # ------------------------------------------------------------------
    # Breaks
    # ------------------------------------------------------------------
    def _break(self, notice: BreakNotice) -> None:
        if self.broken is not None:
            return
        self.stats.breaks += 1
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.break",
                stream=self.trace_label,
                side="receiver",
                reason=notice.reason,
                permanent=notice.permanent,
                synchronous=notice.synchronous,
            )
        self.broken = notice
        self._out_of_order.clear()
        self.dispatcher.stop(notice.reason)
        self._flush_replies()

    def break_stream(self, reason: str, permanent: bool = False) -> None:
        """Explicit receiver-side break (e.g. guardian destroyed)."""
        self._break(
            BreakNotice(
                synchronous=False,
                after_seq=0,
                reason=reason,
                permanent=permanent,
            )
        )
