"""The sending end of a call-stream.

One :class:`StreamSender` exists per (agent, port group) pair — "All calls
sent by an agent to ports in a port group are sent on the same stream, and
thus are sequenced" (§2).  It implements:

* the three call varieties — RPCs (transmitted immediately, caller waits),
  stream calls (buffered, a promise is returned), and sends (stream calls
  to handlers with no normal results; normal replies are omitted);
* buffering with size and delay triggers, and the paper's ``flush`` and
  ``synch`` primitives;
* exactly-once delivery over the unreliable network, via cumulative
  acknowledgements plus — in the default adaptive mode — SACK-driven
  *selective* retransmission (go-back-N remains available as the legacy
  mode);
* sender-side flow control against the window the receiver advertises
  from its backlog, so bulk workloads cannot overrun receiver memory;
* AIMD self-tuning of the batch size and a Jacobson SRTT/RTTVAR estimate
  driving the retransmission timeout (see DESIGN.md §11);
* in-call-order resolution of promises ("if the i+1st result is ready,
  then so is the ith");
* break detection (retransmission exhaustion, receiver notices), mapping
  broken calls to ``unavailable``/``failure`` and automatic restart through
  stream *reincarnation*.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import ExceptionReply, Failure, Unavailable
from repro.core.outcome import Outcome
from repro.core.promise import Promise
from repro.encoding.errors import DecodeError, EncodeError
from repro.encoding.transmit import ArgsCodec, OutcomeCodec
from repro.net.message import Message
from repro.net.network import Network, NodeDown
from repro.obs.trace import mint_span
from repro.sim.alarm import Alarm
from repro.sim.events import Event
from repro.sim.kernel import Environment
from repro.streams.config import StreamConfig
from repro.streams.wire import (
    KIND_BATCH,
    KIND_RPC,
    KIND_SEND,
    KIND_STREAM,
    BreakNotice,
    CallEntry,
    CallPacket,
    ReplyPacket,
    StreamKey,
)
from repro.types.signatures import HandlerType

__all__ = ["StreamSender", "SenderStats"]


class SenderStats:
    """Counters exposed for tests and benchmarks."""

    def __init__(self) -> None:
        self.calls_made = 0
        self.rpcs_made = 0
        self.sends_made = 0
        self.packets_sent = 0
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.reply_gap_probes = 0
        self.retransmitted_calls_avoided = 0
        self.window_stalls = 0
        self.max_inflight = 0
        self.rtt_samples = 0
        self.breaks = 0
        self.flushes = 0
        self.synchs = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters, stable-ordered by name so
        golden tests can compare snapshots textually."""
        return {name: self.__dict__[name] for name in sorted(self.__dict__)}


class _PendingCall:
    """Sender-side bookkeeping for one outstanding call."""

    __slots__ = ("seq", "kind", "promise", "codec", "entry")

    def __init__(
        self,
        seq: int,
        kind: str,
        promise: Optional[Promise],
        codec: OutcomeCodec,
        entry: CallEntry,
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.promise = promise
        self.codec = codec
        self.entry = entry


class StreamSender:
    """Sending end of one stream (one agent × one port group)."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        key: StreamKey,
        config: Optional[StreamConfig] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.key = key
        self.config = config or StreamConfig()
        self.stats = SenderStats()
        #: Compact stream identity used in trace events and metric labels.
        self.trace_label = "%s->%s:%s" % (key.agent_id, key.dst_node, key.group_id)
        self.incarnation = 0
        #: True when the stream is broken and auto_restart is off.
        self.broken = False
        self._break_exception: Optional[Exception] = None
        # Path-quality state survives reincarnation: the network between
        # the two nodes is the same, so RTT estimates and the learned
        # batch size stay useful across restarts.
        self._batch_limit = float(self.config.batch_size)
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto_backoff = 1.0
        self._reset_incarnation_state()
        self._buffer_alarm = Alarm(env, self._on_buffer_deadline)
        self._rto_alarm = Alarm(env, self._on_rto)
        self._reply_ack_alarm = Alarm(env, self._on_reply_ack_deadline)
        #: Highest ack_reply_seq actually transmitted to the receiver.
        self._sent_ack_reply_seq = 0

    def _reset_incarnation_state(self) -> None:
        self._next_seq = 1
        self._next_resolve = 1
        self._buffer: List[CallEntry] = []
        #: Entries released from the buffer (batch trigger / flush) but
        #: held back by the flow-control window, in seq order.
        self._ready: List[CallEntry] = []
        self._unacked: "OrderedDict[int, CallEntry]" = OrderedDict()
        self._pending: Dict[int, _PendingCall] = {}
        self._outcomes: Dict[int, Outcome] = {}
        self._completed_seq = 0
        self._retries = 0
        self._synch_base = 0
        self._exceptional_seqs: set = set()
        self._synch_waiters: List[Tuple[int, Event]] = []
        self._pending_flush_replies = False
        self._pending_synch_seq: Optional[int] = None
        #: Seqs the receiver holds out of order (SACK): skipped on
        #: retransmission, dropped once the cumulative ack passes them.
        self._sacked: set = set()
        #: First-transmission times per seq (Karn: cleared on retransmit),
        #: feeding the RTT estimator.
        self._send_times: Dict[int, float] = {}
        #: Latest window the receiver advertised (None until it speaks).
        self._window: Optional[int] = None
        # Duplicate-ack tracking for fast retransmission.
        self._dupack_seq = -1
        self._dupacks = 0
        self._fast_resent_for = -1
        #: Resolve cursor at the last reply-gap probe (once per stall).
        self._reply_gap_probed = 0

    # ------------------------------------------------------------------
    # Public call interface
    # ------------------------------------------------------------------
    def stream_call(
        self,
        port_id: str,
        handler_type: HandlerType,
        args: Sequence[Any],
        want_promise: bool = True,
    ) -> Optional[Promise]:
        """Make a stream call; returns the promise (or None in statement
        form).  Raises ``failure``/``unavailable`` immediately if encoding
        fails or the stream is broken — in that case "no promise object is
        created" (§3).
        """
        # "whenever a stream call is made to a handler with no normal
        # results, the Argus implementation makes the call as a send."
        kind = KIND_STREAM if handler_type.has_results else KIND_SEND
        return self._call(port_id, handler_type, args, kind, want_promise)

    def send(
        self,
        port_id: str,
        handler_type: HandlerType,
        args: Sequence[Any],
        want_promise: bool = False,
    ) -> Optional[Promise]:
        """Make an explicit send (reply only on abnormal termination)."""
        return self._call(port_id, handler_type, args, KIND_SEND, want_promise)

    def batch(
        self,
        port_id: str,
        handler_type: HandlerType,
        args: Sequence[Any],
        want_promise: bool = False,
    ) -> Optional[Promise]:
        """Ship one epoch batch frame (see :mod:`repro.graph`).

        A batch is a send on the wire — no reply data on normal
        completion, the ``completed_seq`` watermark stands in for it —
        but it is flushed immediately: an epoch boundary *is* the
        batching decision, so holding the frame for the stream's own
        buffer triggers would only delay the epoch.
        """
        promise = self._call(port_id, handler_type, args, KIND_BATCH, want_promise)
        self._flush_buffer()
        return promise

    def rpc(self, port_id: str, handler_type: HandlerType, args: Sequence[Any]) -> Event:
        """Make an ordinary RPC: transmit immediately, wait for the reply.

        Returns an event to ``yield``; it delivers the call's normal result
        or raises its exception, exactly like claiming the promise at once.
        """
        try:
            promise = self._call(port_id, handler_type, args, KIND_RPC, True)
        except (Failure, Unavailable) as exc:
            failed = Event(self.env)
            failed.defused = True
            failed.fail(exc)
            return failed
        return promise.claim()

    def _call(
        self,
        port_id: str,
        handler_type: HandlerType,
        args: Sequence[Any],
        kind: str,
        want_promise: bool,
    ) -> Optional[Promise]:
        self._check_usable()
        try:
            args_bytes = ArgsCodec.for_type(handler_type).encode(tuple(args))
        except EncodeError as exc:
            raise Failure("could not encode: %s" % (exc,)) from exc

        seq = self._next_seq
        self._next_seq += 1
        tracer = self.env.tracer
        span = None
        if tracer is not None:
            # Causal context: minted here, at the calling agent, and
            # carried on the entry so every later event of this call —
            # delivery, execution, reply, resolution — attaches to it.
            span = mint_span(self.env)
        entry = CallEntry(seq, port_id, kind, args_bytes, span)
        promise = None
        if want_promise:
            promise = Promise(
                self.env,
                handler_type.promise_type(),
                label="%s#%d" % (port_id, seq),
            )
        self._pending[seq] = _PendingCall(
            seq, kind, promise, OutcomeCodec.for_type(handler_type), entry
        )
        self._buffer.append(entry)
        if tracer is not None:
            tracer.emit(
                "stream.call_buffered",
                stream=self.trace_label,
                incarnation=self.incarnation,
                seq=seq,
                port=port_id,
                kind=kind,
                buffered=len(self._buffer),
                trace_id=span[0],
                span_id=span[1],
                parent_span_id=span[2],
                promise_id=promise.promise_id if promise is not None else None,
            )
        self.stats.calls_made += 1
        if kind == KIND_RPC:
            self.stats.rpcs_made += 1
        elif kind == KIND_SEND:
            self.stats.sends_made += 1

        if kind == KIND_RPC:
            # "RPCs and their replies are sent over the network immediately,
            # to minimize the delay for a call."
            self._flush_buffer(flush_replies=True)
        elif len(self._buffer) >= self._batch_threshold():
            self._flush_buffer()
        elif self.config.max_buffer_delay == 0.0:
            self._flush_buffer()
        else:
            self._buffer_alarm.arm_if_idle(self.config.max_buffer_delay)
        return promise

    # ------------------------------------------------------------------
    # Flush and synch
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """The paper's ``flush``: push buffered calls out now and ask the
        receiver to flush replies back."""
        self._check_usable()
        self.stats.flushes += 1
        self._flush_buffer(flush_replies=True, force=True)

    def synch(self) -> Event:
        """The paper's ``synch``: flush, then wait until every earlier call
        on the stream has completed.

        The returned event succeeds if all calls since the last synch (or
        RPC, or incarnation start) returned normally, and fails with
        :class:`~repro.core.exceptions.ExceptionReply` otherwise.
        """
        self.stats.synchs += 1
        done = Event(self.env)
        try:
            self._check_usable()
        except (Failure, Unavailable):
            done.defused = True
            done.fail(ExceptionReply())
            return done
        target = self._next_seq - 1
        if self._next_resolve > target:
            # Nothing outstanding: the synch completes without touching
            # the network.
            self._finish_synch(done, target)
            return done
        self._flush_buffer(flush_replies=True, synch_seq=target, force=True)
        if self._next_resolve > target:
            self._finish_synch(done, target)
        else:
            self._synch_waiters.append((target, done))
        return done

    def _finish_synch(self, done: Event, target: int) -> None:
        exceptional = any(
            self._synch_base < seq <= target for seq in self._exceptional_seqs
        )
        self._synch_base = max(self._synch_base, target)
        self._exceptional_seqs = {
            seq for seq in self._exceptional_seqs if seq > self._synch_base
        }
        if done.triggered:
            return
        if exceptional:
            done.defused = True
            done.fail(ExceptionReply())
        else:
            done.succeed()

    # ------------------------------------------------------------------
    # Restart
    # ------------------------------------------------------------------
    def restart(self) -> None:
        """The paper's ``restart``: break now (if not already broken) and
        reincarnate so the stream is usable again."""
        self._do_break("stream restarted by sender", permanent=False)
        self._reincarnate()

    def _reincarnate(self) -> None:
        announce = getattr(self, "_had_outstanding_at_break", False)
        self.incarnation += 1
        self.broken = False
        self._break_exception = None
        self._reset_incarnation_state()
        if announce:
            # Best-effort announcement of the new incarnation, so the
            # receiver supersedes its old state and destroys any orphaned
            # executions of the broken incarnation (§4.2).
            self._had_outstanding_at_break = False
            self._transmit([], False, None)

    # ------------------------------------------------------------------
    # Adaptive controllers (batch size, RTT/RTO)
    # ------------------------------------------------------------------
    def _batch_threshold(self) -> int:
        """The current auto-flush threshold for the call buffer."""
        if not self.config.adaptive_batching:
            return self.config.batch_size
        return int(self._batch_limit)

    def _grow_batch(self) -> None:
        """AIMD additive increase: one more call per cleanly-acked packet."""
        ceiling = float(max(self.config.max_batch_size, self.config.batch_size))
        if self._batch_limit < ceiling:
            self._batch_limit = min(ceiling, self._batch_limit + 1.0)
            self._trace_batch_limit()

    def _shrink_batch(self) -> None:
        """AIMD multiplicative decrease, on retransmission or break."""
        floor = float(min(self.config.min_batch_size, self.config.batch_size))
        shrunk = max(floor, self._batch_limit / 2.0)
        if shrunk != self._batch_limit:
            self._batch_limit = shrunk
            self._trace_batch_limit()

    def _trace_batch_limit(self) -> None:
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.batch_limit",
                stream=self.trace_label,
                limit=int(self._batch_limit),
            )

    def _current_rto(self) -> float:
        """The retransmission timeout in force right now."""
        config = self.config
        if not config.adaptive_rto:
            return config.rto
        if self._srtt is None:
            base = config.rto
        else:
            # Jacobson: SRTT + 4·RTTVAR, plus ack_delay grace because the
            # receiver may legitimately sit on a pure ack that long.
            base = self._srtt + max(4.0 * self._rttvar, 1e-3) + config.ack_delay
        base = min(max(base, config.min_rto), config.max_rto)
        return min(base * self._rto_backoff, config.max_rto)

    def _rtt_sample(self, sample: float) -> None:
        self.stats.rtt_samples += 1
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar += 0.25 * (abs(self._srtt - sample) - self._rttvar)
            self._srtt += 0.125 * (sample - self._srtt)
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.rtt_sample",
                stream=self.trace_label,
                sample=sample,
                srtt=self._srtt,
                rttvar=self._rttvar,
                rto=self._current_rto(),
            )

    # ------------------------------------------------------------------
    # Internal: transmission
    # ------------------------------------------------------------------
    def _check_usable(self) -> None:
        # A wounded process (termination pending, delayed by a critical
        # section) "cannot make any remote calls at such a point" (§4.2).
        from repro.concurrency.critical import is_wounded

        if is_wounded(self.env.active_process):
            raise Unavailable("process is wounded; remote calls are refused")
        if self.broken:
            exc = self._break_exception or Unavailable("stream is broken")
            raise type(exc)(*exc.args)

    def _window_allowance(self) -> Optional[int]:
        """How many more calls may enter flight; None = no window (legacy)."""
        limit = self.config.max_inflight_calls
        if limit <= 0:
            return None
        window = self._window
        if window is None or window > limit:
            window = limit
        inflight = len(self._unacked)
        if inflight == 0:
            # Never let a zero advertisement wedge an idle stream: one
            # probe batch may always fly — its ack re-advertises.
            return max(1, window)
        return window - inflight

    def _flush_buffer(
        self,
        flush_replies: bool = False,
        synch_seq: Optional[int] = None,
        force: bool = False,
    ) -> None:
        self._buffer_alarm.cancel()
        if self._buffer:
            self._ready.extend(self._buffer)
            self._buffer = []
        if not self._ready and not force:
            return
        if flush_replies:
            self._pending_flush_replies = True
        if synch_seq is not None:
            if self._pending_synch_seq is None or synch_seq > self._pending_synch_seq:
                self._pending_synch_seq = synch_seq
        self._push(flush_replies, synch_seq, force)

    def _push(
        self,
        flush_replies: bool = False,
        synch_seq: Optional[int] = None,
        force: bool = False,
    ) -> None:
        """Move as much of the ready queue into flight as the window
        permits, and transmit it."""
        ready = self._ready
        allowance = self._window_allowance()
        if allowance is None or allowance >= len(ready):
            entries, self._ready = ready, []
        elif allowance <= 0:
            entries = []
        else:
            entries = ready[:allowance]
            del ready[:allowance]
        if self._ready:
            self._note_window_stall(len(self._ready))
        if entries:
            unacked = self._unacked
            for entry in entries:
                unacked[entry.seq] = entry
            if self.config.adaptive_rto:
                now = self.env.now
                send_times = self._send_times
                for entry in entries:
                    send_times[entry.seq] = now
            inflight = len(unacked)
            if inflight > self.stats.max_inflight:
                self.stats.max_inflight = inflight
        if not entries and not force:
            if self._unacked or self._has_unresolved():
                self._rto_alarm.arm_if_idle(self._current_rto())
            return
        if flush_replies and entries and self._ready:
            # A window-deferred backlog goes out in segments; only the
            # final segment carries the flush marking.  Intermediate
            # segments would otherwise each demand an immediate reply
            # flush at the receiver, defeating reply batching for the
            # whole burst.
            flush_replies = False
        self._transmit(entries, flush_replies, synch_seq)
        if self._unacked or self._has_unresolved():
            self._rto_alarm.arm_if_idle(self._current_rto())

    def _note_window_stall(self, deferred: int) -> None:
        self.stats.window_stalls += 1
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.window_stall",
                stream=self.trace_label,
                incarnation=self.incarnation,
                inflight=len(self._unacked),
                window=self._window,
                deferred=deferred,
            )

    def _transmit(
        self,
        entries: List[CallEntry],
        flush_replies: bool,
        synch_seq: Optional[int],
        attempt: int = 0,
    ) -> None:
        packet = CallPacket(
            self.key,
            self.incarnation,
            entries,
            ack_reply_seq=self._next_resolve - 1,
            flush_replies=flush_replies,
            synch_seq=synch_seq,
            attempt=attempt,
        )
        message = Message(
            self.key.src_node,
            self.key.dst_node,
            self.key.dst_address,
            packet,
            packet.size,
        )
        try:
            self.network.send(message, want_done=False)
        except NodeDown:
            # Our own node is down; the enclosing guardian is dead anyway.
            return
        self._sent_ack_reply_seq = packet.ack_reply_seq
        self.stats.packets_sent += 1
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.packet_sent",
                stream=self.trace_label,
                incarnation=self.incarnation,
                entries=len(entries),
                attempt=attempt,
                flush_replies=flush_replies,
                # Entries are kept in seq order, so the packet covers a
                # contiguous range; the span builder uses it to date each
                # call's on-wire phase.
                seq_lo=entries[0].seq if entries else None,
                seq_hi=entries[-1].seq if entries else None,
            )

    def _has_unresolved(self) -> bool:
        return self._next_resolve < self._next_seq

    # ------------------------------------------------------------------
    # Internal: timers
    # ------------------------------------------------------------------
    def _on_buffer_deadline(self) -> None:
        if self._buffer:
            self._flush_buffer()

    def _on_reply_ack_deadline(self) -> None:
        """Idle-stream hygiene: tell the receiver which replies we have
        resolved so it can garbage-collect its reply log."""
        if self.broken:
            return
        if self._next_resolve - 1 <= self._sent_ack_reply_seq:
            return
        if self._buffer:
            return  # an outgoing call packet will carry the ack shortly
        if self._ready:
            allowance = self._window_allowance()
            if allowance is None or allowance > 0:
                return  # deferred calls can fly; their packet carries it
            # Window-blocked: no call packet is coming, and the receiver
            # needs this ack to prune its reply log (which is what is
            # holding the window shut).  Fall through to the bare ack.
        self._transmit([], False, None)

    def _on_rto(self) -> None:
        if self.broken:
            return
        if not self._unacked and not self._has_unresolved():
            return  # everything done; no need to retransmit
        self._retries += 1
        if self._retries > self.config.max_retries:
            # "It does so only if the sender or receiver crashes, or there
            # are serious communication problems."
            self._do_break("cannot communicate", permanent=False)
            if self.config.auto_restart:
                self._reincarnate()
            return
        self.stats.retransmissions += 1
        unacked = list(self._unacked.values())
        if self.config.selective_retransmit and self._sacked:
            # Selective retransmission: skip everything the receiver has
            # already reported holding out of order.
            sacked = self._sacked
            entries = [entry for entry in unacked if entry.seq not in sacked]
            self.stats.retransmitted_calls_avoided += len(unacked) - len(entries)
        else:
            # Go-back-N: resend everything unacknowledged.
            entries = unacked
        if self.config.adaptive_rto:
            # Karn: a retransmitted seq can no longer yield an unambiguous
            # RTT sample; back the timer off exponentially until an
            # un-retransmitted packet is acked.
            send_times = self._send_times
            for entry in entries:
                send_times.pop(entry.seq, None)
            self._rto_backoff = min(self._rto_backoff * 2.0, 64.0)
        if self.config.adaptive_batching:
            self._shrink_batch()
        # Re-assert any pending flush/synch flags (they may have been
        # lost with the original packet).
        self._transmit(
            entries,
            self._pending_flush_replies or self._has_unresolved(),
            self._pending_synch_seq,
            attempt=self._retries,
        )
        self._rto_alarm.arm(self._current_rto())

    # ------------------------------------------------------------------
    # Internal: reply processing
    # ------------------------------------------------------------------
    def on_reply(self, packet: ReplyPacket) -> None:
        """Process a reply packet from the receiver (called by transport)."""
        if packet.incarnation != self.incarnation or self.broken:
            return  # stale incarnation
        config = self.config

        if packet.window is not None and config.max_inflight_calls > 0:
            self._window = packet.window

        # Acknowledgements: drop delivered calls, note execution progress.
        # Entries are kept in seq order, so acknowledged calls form a prefix:
        # pop from the front until we pass the cumulative ack.
        progressed = False
        unacked = self._unacked
        ack_seq = packet.ack_call_seq
        sacked = self._sacked
        send_times = self._send_times
        rtt_sent_at = None
        while unacked:
            seq = next(iter(unacked))
            if seq > ack_seq:
                break
            del unacked[seq]
            progressed = True
            if sacked:
                sacked.discard(seq)
            if send_times:
                sent_at = send_times.pop(seq, None)
                if sent_at is not None:
                    # Karn-valid sample: this seq was never retransmitted.
                    # The loop leaves the *latest* first-send time acked by
                    # this packet, the best proxy for the packet's RTT.
                    rtt_sent_at = sent_at
        if rtt_sent_at is not None:
            self._rtt_sample(self.env.now - rtt_sent_at)
        if packet.completed_seq > self._completed_seq:
            self._completed_seq = packet.completed_seq
            progressed = True

        # Selective-ack bookkeeping: note what the receiver holds beyond
        # the cumulative ack, so retransmissions can skip it.
        if packet.sack_ranges and config.selective_retransmit:
            for lo, hi in packet.sack_ranges:
                for seq in range(lo, hi + 1):
                    if seq in unacked:
                        sacked.add(seq)

        # Reply entries: decode outcomes.  A decode failure at the sender
        # yields failure("could not decode") for that call only (§3 step 3).
        for entry in packet.entries:
            if entry.seq < self._next_resolve or entry.seq in self._outcomes:
                continue  # duplicate
            pending = self._pending.get(entry.seq)
            if pending is None:
                continue
            try:
                outcome = pending.codec.decode(entry.outcome_bytes)
            except DecodeError as exc:
                outcome = Outcome.failure("could not decode: %s" % (exc,))
            self._outcomes[entry.seq] = outcome
            progressed = True

        if progressed:
            clean = self._retries == 0
            self._retries = 0
            # Karn, part two: keep the backed-off RTO until an ack covers a
            # packet that was never retransmitted.  Resetting on *any*
            # progress would pin the RTO below a long path's RTT forever
            # (every packet retransmitted spuriously, every sample
            # discarded as ambiguous).
            if not config.adaptive_rto or rtt_sent_at is not None:
                self._rto_backoff = 1.0
            if clean and config.adaptive_batching:
                self._grow_batch()
            if self._unacked or self._has_unresolved():
                self._rto_alarm.arm(self._current_rto())
            else:
                self._rto_alarm.cancel()

        if packet.sack_ranges and config.selective_retransmit and not self.broken:
            self._consider_fast_retransmit(packet)

        self._release_in_order()

        if packet.broken is not None:
            self._on_break_notice(packet.broken)
            return

        # Reply-gap fast probe: the receiver sends replies in call order,
        # so holding a decoded outcome beyond the resolve cursor — or a
        # completion watermark covering a call whose outcome never arrived
        # (the tail-loss case: the *last* reply packet dropped, nothing
        # after it to reveal the gap) — means the packet that carried the
        # missing reply was lost (or is badly reordered).  Probe at
        # attempt 1 — which makes the receiver resend its unacknowledged
        # reply log — instead of stalling every claim behind the RTO.
        # Once per stall point.
        if (
            config.selective_retransmit
            and not self.broken
            and self._has_unresolved()
            and (self._outcomes or self._next_resolve <= self._completed_seq)
            and self._reply_gap_probed != self._next_resolve
        ):
            self._reply_gap_probed = self._next_resolve
            self.stats.reply_gap_probes += 1
            self._transmit([], True, None, attempt=1)

        # Flow control pump: acknowledged calls freed window space (or the
        # receiver advertised a bigger window); push deferred entries.
        if self._ready and not self.broken:
            allowance = self._window_allowance()
            if allowance is None or allowance > 0:
                self._push(self._pending_flush_replies, self._pending_synch_seq)
            elif (
                self._next_resolve - 1 - self._sent_ack_reply_seq
                >= max(1, config.max_inflight_calls // 4)
            ):
                # Still blocked, and a quarter-window of resolved replies
                # is unacknowledged: ack now, so the receiver prunes its
                # reply log and re-opens the window, instead of waiting
                # out the reply_ack_delay while the stream sits stalled.
                # (The quarter-window threshold keeps this from degrading
                # into one bare ack per arriving reply packet.)
                self._transmit([], False, None)

    def _consider_fast_retransmit(self, packet: ReplyPacket) -> None:
        """Duplicate-ack fast retransmission.

        SACK ranges with a stuck cumulative ack mean the gap between them
        was lost on the wire.  After two reply packets agree on the same
        stuck ack we resend the gap immediately instead of waiting out the
        RTO — once per stall point.
        """
        ack_seq = packet.ack_call_seq
        if ack_seq == self._dupack_seq:
            self._dupacks += 1
        else:
            self._dupack_seq = ack_seq
            self._dupacks = 1
        if self._dupacks < 2 or self._fast_resent_for == ack_seq:
            return
        top = max(hi for _lo, hi in packet.sack_ranges)
        sacked = self._sacked
        gap = [
            entry
            for seq, entry in self._unacked.items()
            if seq <= top and seq not in sacked
        ]
        if not gap:
            return
        self._fast_resent_for = ack_seq
        self.stats.retransmissions += 1
        self.stats.fast_retransmits += 1
        self.stats.retransmitted_calls_avoided += len(self._unacked) - len(gap)
        if self.config.adaptive_rto:
            send_times = self._send_times
            for entry in gap:
                send_times.pop(entry.seq, None)
        if self.config.adaptive_batching:
            self._shrink_batch()
        self._transmit(
            gap,
            self._pending_flush_replies or self._has_unresolved(),
            self._pending_synch_seq,
            attempt=max(1, self._retries),
        )

    def _release_in_order(self) -> None:
        """Resolve promises strictly in call order (§3 step 3)."""
        while self._next_resolve < self._next_seq:
            seq = self._next_resolve
            pending = self._pending.get(seq)
            if pending is None:
                self._next_resolve += 1
                continue
            outcome = self._outcomes.pop(seq, None)
            if outcome is None:
                if seq <= self._completed_seq and pending.kind in (
                    KIND_SEND,
                    KIND_BATCH,
                ):
                    # A send (or an epoch batch frame) that completed
                    # normally: no reply data arrives, the completion
                    # watermark stands in for it.
                    outcome = Outcome.normal()
                else:
                    break
            self._resolve(pending, outcome)
            self._next_resolve += 1
        self._wake_synch_waiters()
        if self._next_resolve - 1 > self._sent_ack_reply_seq:
            # New replies resolved: make sure an acknowledgement travels
            # eventually even if no further calls are made.
            self._reply_ack_alarm.arm_if_idle(self.config.reply_ack_delay)

    def _resolve(self, pending: _PendingCall, outcome: Outcome) -> None:
        tracer = self.env.tracer
        if tracer is not None:
            span = pending.entry.span
            promise = pending.promise
            tracer.emit(
                "stream.call_resolved",
                stream=self.trace_label,
                incarnation=self.incarnation,
                seq=pending.seq,
                kind=pending.kind,
                status=outcome.condition,
                trace_id=span[0] if span is not None else None,
                span_id=span[1] if span is not None else None,
                promise_id=promise.promise_id if promise is not None else None,
            )
        if outcome.is_exceptional:
            self._exceptional_seqs.add(pending.seq)
        if pending.promise is not None and not pending.promise.ready():
            pending.promise.resolve(outcome)
        if pending.kind == KIND_RPC:
            # An RPC is a synch point: "since the last synch or regular RPC".
            self._synch_base = max(self._synch_base, pending.seq)
            self._exceptional_seqs = {
                seq for seq in self._exceptional_seqs if seq > self._synch_base
            }
        del self._pending[pending.seq]

    def _wake_synch_waiters(self) -> None:
        if not self._synch_waiters:
            return
        still_waiting = []
        for target, done in self._synch_waiters:
            if self._next_resolve > target:
                self._finish_synch(done, target)
            else:
                still_waiting.append((target, done))
        self._synch_waiters = still_waiting
        if self._pending_synch_seq is not None and self._next_resolve > self._pending_synch_seq:
            self._pending_synch_seq = None
        if not self._has_unresolved():
            self._pending_flush_replies = False

    # ------------------------------------------------------------------
    # Internal: breaks
    # ------------------------------------------------------------------
    def _on_break_notice(self, notice: BreakNotice) -> None:
        """The receiver broke the stream; map outstanding calls to
        exceptions and (optionally) reincarnate."""
        if notice.synchronous:
            # Calls up to after_seq are unaffected; their outcomes either
            # already arrived or never will (receiver keeps them until
            # acked), so release what we have first.
            self._release_in_order()
        self._do_break(notice.reason, permanent=notice.permanent)
        if self.config.auto_restart:
            self._reincarnate()

    def _do_break(self, reason: str, permanent: bool) -> None:
        """Break at the sender: every call whose reply has not been received
        terminates with ``unavailable`` (or ``failure`` if permanent)."""
        if self.broken and self._break_exception is not None:
            return
        self._had_outstanding_at_break = bool(
            self._pending or self._unacked or self._buffer or self._ready
        )
        self.stats.breaks += 1
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "stream.break",
                stream=self.trace_label,
                side="sender",
                reason=reason,
                permanent=permanent,
                outstanding=self._had_outstanding_at_break,
            )
        self._buffer_alarm.cancel()
        self._rto_alarm.cancel()
        self._reply_ack_alarm.cancel()
        if self.config.adaptive_batching:
            # A break is the strongest congestion/loss signal there is.
            self._shrink_batch()
        template = Failure(reason) if permanent else Unavailable(reason)
        # First deliver any outcomes that did arrive, in order; then fail
        # the rest (preserving the in-order-resolution invariant).
        self._release_in_order()
        for seq in range(self._next_resolve, self._next_seq):
            pending = self._pending.get(seq)
            if pending is None:
                continue
            outcome = self._outcomes.pop(seq, None)
            if outcome is None:
                outcome = Outcome.exceptional(type(template)(*template.args))
            self._resolve(pending, outcome)
        self._next_resolve = self._next_seq
        self._buffer = []
        self._ready = []
        self._unacked.clear()
        self._sacked.clear()
        self._send_times.clear()
        self._rto_backoff = 1.0
        self.broken = True
        self._break_exception = template
        self._wake_synch_waiters()
        for target, done in self._synch_waiters:
            if not done.triggered:
                done.defused = True
                done.fail(ExceptionReply())
        self._synch_waiters = []
