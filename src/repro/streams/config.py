"""Tunable parameters of the call-stream transport.

These knobs are the levers the benchmarks sweep: ``batch_size`` and
``max_buffer_delay`` control the buffering the paper's throughput argument
rests on; ``rto``/``max_retries`` control break detection; the reply-side
twins control reply batching at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StreamConfig"]


@dataclass(frozen=True)
class StreamConfig:
    """Configuration shared by the sending and receiving stream machinery."""

    #: Transmit the call buffer as soon as it holds this many entries.
    batch_size: int = 8
    #: Transmit a non-empty call buffer at latest this long after its first
    #: entry arrived ("sent when convenient").
    max_buffer_delay: float = 5.0
    #: Retransmission timeout for unacknowledged calls.
    rto: float = 20.0
    #: Consecutive retransmissions tolerated before the sender breaks the
    #: stream ("the system tries hard to deliver messages before breaking").
    max_retries: int = 4
    #: Receiver-side: transmit the reply buffer at this many entries.
    reply_batch_size: int = 8
    #: Receiver-side: transmit a non-empty reply buffer at latest this long
    #: after its first entry arrived.
    reply_max_delay: float = 5.0
    #: Receiver-side: send a bare acknowledgement if calls have gone this
    #: long without any reply traffic to piggyback on.
    ack_delay: float = 10.0
    #: Sender-side: after replies are resolved, send a bare
    #: acknowledgement packet at latest this long after the last outgoing
    #: traffic, so the receiver can garbage-collect its reply log even on
    #: an otherwise idle stream.
    reply_ack_delay: float = 15.0
    #: Reincarnate the stream automatically after a break ("broken streams
    #: are mapped into exceptions and then restarted automatically").
    auto_restart: bool = True

    def __post_init__(self) -> None:
        if self.batch_size < 1 or self.reply_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")
        if self.max_buffer_delay < 0 or self.reply_max_delay < 0:
            raise ValueError("buffer delays must be >= 0")
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_delay <= 0:
            raise ValueError("ack_delay must be positive")
        if self.reply_ack_delay <= 0:
            raise ValueError("reply_ack_delay must be positive")

    def unbuffered(self) -> "StreamConfig":
        """A copy that transmits every call and reply immediately.

        This is the RPC-like configuration used as the baseline in E1: each
        call pays its own kernel call and transmission delay.
        """
        from dataclasses import replace

        return replace(self, batch_size=1, max_buffer_delay=0.0, reply_batch_size=1, reply_max_delay=0.0)
