"""Tunable parameters of the call-stream transport.

These knobs are the levers the benchmarks sweep: ``batch_size`` and
``max_buffer_delay`` control the buffering the paper's throughput argument
rests on; ``rto``/``max_retries`` control break detection; the reply-side
twins control reply batching at the receiver.

Since PR 5 the transport defaults to the *adaptive windowed* mode:

* **selective retransmission** — the receiver reports out-of-order
  arrivals as SACK ranges and the sender resends only the genuinely
  missing calls (instead of the whole unacknowledged go-back-N tail);
* **flow control** — the receiver advertises a call window derived from
  its executing/reply-log backlog and the sender never keeps more than
  that many calls in flight (``max_inflight_calls`` is both the sender's
  hard cap and the receiver's window ceiling; ``0`` disables the window);
* **self-tuning batching** — an AIMD controller grows the effective batch
  size from ``batch_size`` toward ``max_batch_size`` while acks flow
  cleanly and halves it on retransmissions and breaks;
* **adaptive RTO** — Jacobson SRTT/RTTVAR estimation (with exponential
  backoff) replaces the fixed ``rto``, which remains the pre-sample
  initial value.

:meth:`StreamConfig.legacy` restores the original fixed-function
transport (fixed batch, go-back-N, fixed RTO, no window) — the
paper-replication benchmarks E1/E3 and the golden-trace/wire-count pins
run under it, bit-identical to the pre-PR-5 tree.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["StreamConfig"]


@dataclass(frozen=True)
class StreamConfig:
    """Configuration shared by the sending and receiving stream machinery."""

    #: Transmit the call buffer as soon as it holds this many entries.
    #: Under adaptive batching this is the *initial* batch size; the AIMD
    #: controller tunes the effective threshold between
    #: ``min_batch_size`` and ``max_batch_size`` at runtime.
    batch_size: int = 8
    #: Transmit a non-empty call buffer at latest this long after its first
    #: entry arrived ("sent when convenient").
    max_buffer_delay: float = 5.0
    #: Retransmission timeout for unacknowledged calls.  With
    #: ``adaptive_rto`` this is only the initial value used until the
    #: first RTT sample lands.
    rto: float = 20.0
    #: Consecutive retransmissions tolerated before the sender breaks the
    #: stream ("the system tries hard to deliver messages before breaking").
    max_retries: int = 4
    #: Receiver-side: transmit the reply buffer at this many entries.
    reply_batch_size: int = 8
    #: Receiver-side: transmit a non-empty reply buffer at latest this long
    #: after its first entry arrived.
    reply_max_delay: float = 5.0
    #: Receiver-side: send a bare acknowledgement if calls have gone this
    #: long without any reply traffic to piggyback on.
    ack_delay: float = 10.0
    #: Sender-side: after replies are resolved, send a bare
    #: acknowledgement packet at latest this long after the last outgoing
    #: traffic, so the receiver can garbage-collect its reply log even on
    #: an otherwise idle stream.
    reply_ack_delay: float = 15.0
    #: Reincarnate the stream automatically after a break ("broken streams
    #: are mapped into exceptions and then restarted automatically").
    auto_restart: bool = True

    # -- adaptive windowed transport (PR 5) ----------------------------
    #: Receiver reports out-of-order arrivals as SACK ranges; the sender
    #: retransmits only the calls not covered by them.  Off = go-back-N.
    selective_retransmit: bool = True
    #: AIMD control of the effective batch size (additive increase by one
    #: per clean ack packet, halving on retransmission/break).
    adaptive_batching: bool = True
    #: AIMD ceiling for the effective batch size.  A configured
    #: ``batch_size`` above the ceiling widens the range instead of
    #: erroring: the effective ceiling is ``max(batch_size,
    #: max_batch_size)`` and the floor ``min(batch_size, min_batch_size)``.
    max_batch_size: int = 64
    #: AIMD floor for the effective batch size.
    min_batch_size: int = 1
    #: Jacobson SRTT/RTTVAR estimation drives the retransmission timeout
    #: (plus ``ack_delay`` grace for receiver-side ack batching and
    #: exponential backoff across consecutive timeouts).
    adaptive_rto: bool = True
    #: Clamp for the adaptive RTO.
    min_rto: float = 2.0
    max_rto: float = 60.0
    #: Flow-control window: the most calls the sender keeps in flight
    #: (transmitted, unacknowledged) and the ceiling on the window the
    #: receiver advertises from its backlog.  ``0`` disables flow control
    #: entirely (the legacy unbounded behaviour).
    max_inflight_calls: int = 256

    def __post_init__(self) -> None:
        if self.batch_size < 1 or self.reply_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")
        if self.max_buffer_delay < 0 or self.reply_max_delay < 0:
            raise ValueError("buffer delays must be >= 0")
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_delay <= 0:
            raise ValueError("ack_delay must be positive")
        if self.reply_ack_delay <= 0:
            raise ValueError("reply_ack_delay must be positive")
        if self.min_batch_size < 1:
            raise ValueError("min_batch_size must be >= 1")
        if self.max_batch_size < self.min_batch_size:
            raise ValueError("max_batch_size must be >= min_batch_size")
        if self.min_rto <= 0:
            raise ValueError("min_rto must be positive")
        if self.max_rto < self.min_rto:
            raise ValueError("max_rto must be >= min_rto")
        if self.max_inflight_calls < 0:
            raise ValueError("max_inflight_calls must be >= 0 (0 disables)")

    @classmethod
    def legacy(cls, **overrides) -> "StreamConfig":
        """The pre-PR-5 fixed-function transport.

        Fixed ``batch_size``, go-back-N retransmission, fixed ``rto`` and
        no flow-control window — bit-identical to the original design.
        The paper-replication pins (E1/E3 wire counts, the golden trace,
        the chaos seed corpus) run under this mode.
        """
        fields = dict(
            selective_retransmit=False,
            adaptive_batching=False,
            adaptive_rto=False,
            max_inflight_calls=0,
        )
        fields.update(overrides)
        return cls(**fields)

    def unbuffered(self) -> "StreamConfig":
        """A copy that transmits every call and reply immediately.

        This is the RPC-like configuration used as the baseline in E1: each
        call pays its own kernel call and transmission delay.  Adaptive
        batching is pinned off — the whole point of this mode is that the
        batch never grows past one call.
        """
        return replace(
            self,
            batch_size=1,
            max_buffer_delay=0.0,
            reply_batch_size=1,
            reply_max_delay=0.0,
            adaptive_batching=False,
        )
