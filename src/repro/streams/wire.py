"""Wire-level structures of the stream transport.

A physical network message carries exactly one packet: a
:class:`CallPacket` (sender → receiver: a batch of call requests) or a
:class:`ReplyPacket` (receiver → sender: a batch of replies plus
acknowledgement watermarks and possibly a break notice).  Packing *many*
entries into one packet is the buffering the paper's performance claims
rest on.

Payloads (call arguments, outcomes) are already bytes, produced by
:mod:`repro.encoding`; the header fields of the packets themselves are
charged a fixed byte cost each so message sizes remain honest.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "KIND_RPC",
    "KIND_STREAM",
    "KIND_SEND",
    "KIND_BATCH",
    "StreamKey",
    "CallEntry",
    "CallPacket",
    "ReplyEntry",
    "ReplyPacket",
    "BreakNotice",
    "PACKET_HEADER_BYTES",
    "ENTRY_HEADER_BYTES",
    "SACK_RANGE_BYTES",
    "WINDOW_FIELD_BYTES",
]

#: An ordinary remote procedure call: transmitted immediately, caller waits.
KIND_RPC = "rpc"
#: A stream call: buffered, caller continues, reply resolves a promise.
KIND_STREAM = "stream"
#: A send: like a stream call, but a normal completion sends no reply data.
KIND_SEND = "send"
#: A batch frame: one entry carrying a whole epoch of graph routines for
#: one shard (see :mod:`repro.graph`).  Reply semantics are a send's —
#: normal completions are covered by the ``completed_seq`` watermark —
#: but the kind is distinct so traces and metrics can tell an epoch
#: frame from an application-level send.
KIND_BATCH = "batch"

#: Fixed header cost of a packet beyond the datagram header.
PACKET_HEADER_BYTES = 32
#: Fixed header cost of each call/reply entry inside a packet.
ENTRY_HEADER_BYTES = 24
#: Cost of each SACK (lo, hi) range carried on a reply packet.
SACK_RANGE_BYTES = 8
#: Cost of the advertised flow-control window, when present.
WINDOW_FIELD_BYTES = 4


class StreamKey:
    """Identity of a stream: one agent talking to one port group.

    "An agent and a port group together define a stream" (§2).  The key also
    carries the transport coordinates of both ends so replies can be routed
    back without any connection state in the network.
    """

    __slots__ = ("src_node", "src_address", "agent_id", "dst_node", "dst_address", "group_id")

    def __init__(
        self,
        src_node: str,
        src_address: str,
        agent_id: str,
        dst_node: str,
        dst_address: str,
        group_id: str,
    ) -> None:
        self.src_node = src_node
        self.src_address = src_address
        self.agent_id = agent_id
        self.dst_node = dst_node
        self.dst_address = dst_address
        self.group_id = group_id

    def _tuple(self) -> Tuple[str, str, str, str, str, str]:
        return (
            self.src_node,
            self.src_address,
            self.agent_id,
            self.dst_node,
            self.dst_address,
            self.group_id,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StreamKey) and self._tuple() == other._tuple()

    def __hash__(self) -> int:
        return hash(self._tuple())

    def __repr__(self) -> str:
        return "<StreamKey %s/%s -> %s/%s/%s>" % (
            self.src_node,
            self.agent_id,
            self.dst_node,
            self.dst_address,
            self.group_id,
        )


class CallEntry:
    """One call request inside a :class:`CallPacket`.

    ``span`` is the causal trace context ``(trace_id, span_id,
    parent_span_id)`` minted at the calling agent, or None when tracing is
    disabled.  It rides the entry so receiver-side events attach to the
    originating span; being observability metadata, it is not charged any
    wire bytes (the simulated packet sizes are identical traced or not).
    """

    __slots__ = ("seq", "port_id", "kind", "args_bytes", "span")

    def __init__(
        self,
        seq: int,
        port_id: str,
        kind: str,
        args_bytes: bytes,
        span: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        if kind not in (KIND_RPC, KIND_STREAM, KIND_SEND, KIND_BATCH):
            raise ValueError("unknown call kind %r" % (kind,))
        self.seq = seq
        self.port_id = port_id
        self.kind = kind
        self.args_bytes = args_bytes
        self.span = span

    @property
    def size(self) -> int:
        return ENTRY_HEADER_BYTES + len(self.port_id) + len(self.args_bytes)

    def __repr__(self) -> str:
        return "<CallEntry #%d %s %s %dB>" % (self.seq, self.kind, self.port_id, self.size)


class CallPacket:
    """A batch of call requests, sender → receiver."""

    __slots__ = (
        "key",
        "incarnation",
        "entries",
        "ack_reply_seq",
        "flush_replies",
        "synch_seq",
        "attempt",
    )

    def __init__(
        self,
        key: StreamKey,
        incarnation: int,
        entries: List[CallEntry],
        ack_reply_seq: int,
        flush_replies: bool = False,
        synch_seq: Optional[int] = None,
        attempt: int = 0,
    ) -> None:
        self.key = key
        self.incarnation = incarnation
        self.entries = list(entries)
        #: 0 for a first transmission, >0 for go-back-N retransmissions.
        #: A receiver whose node has crashed must refuse to start a fresh
        #: stream from a retransmission: the entries may already have
        #: executed before the crash (exactly-once would be violated), so
        #: the stream breaks asynchronously instead.
        self.attempt = attempt
        #: Cumulative: the sender has resolved all replies up to this seq,
        #: so the receiver may garbage-collect its reply buffer.
        self.ack_reply_seq = ack_reply_seq
        #: The paper's ``flush``: "the flushing back of replies at the other
        #: side".
        self.flush_replies = flush_replies
        #: The paper's ``synch``: receiver flushes replies as soon as its
        #: completion watermark reaches this sequence number.
        self.synch_seq = synch_seq

    @property
    def size(self) -> int:
        return PACKET_HEADER_BYTES + sum(entry.size for entry in self.entries)

    def __repr__(self) -> str:
        return "<CallPacket inc=%d n=%d %r>" % (
            self.incarnation,
            len(self.entries),
            [e.seq for e in self.entries],
        )


class ReplyEntry:
    """One call outcome inside a :class:`ReplyPacket`."""

    __slots__ = ("seq", "outcome_bytes")

    def __init__(self, seq: int, outcome_bytes: bytes) -> None:
        self.seq = seq
        self.outcome_bytes = outcome_bytes

    @property
    def size(self) -> int:
        return ENTRY_HEADER_BYTES + len(self.outcome_bytes)

    def __repr__(self) -> str:
        return "<ReplyEntry #%d %dB>" % (self.seq, self.size)


class BreakNotice:
    """Receiver → sender notification that the stream is broken.

    ``synchronous`` breaks happen "after the reply to a call; that call and
    all calls before it will be unaffected"; ``after_seq`` is that boundary.
    ``permanent`` distinguishes ``failure`` causes (no such guardian/port)
    from ``unavailable`` ones.
    """

    __slots__ = ("synchronous", "after_seq", "reason", "permanent")

    def __init__(
        self,
        synchronous: bool,
        after_seq: int,
        reason: str,
        permanent: bool = False,
    ) -> None:
        self.synchronous = synchronous
        self.after_seq = after_seq
        self.reason = reason
        self.permanent = permanent

    def __repr__(self) -> str:
        mode = "sync" if self.synchronous else "async"
        return "<BreakNotice %s after=%d %r>" % (mode, self.after_seq, self.reason)


class ReplyPacket:
    """A batch of replies plus acknowledgement state, receiver → sender.

    ``sack_ranges`` are selective acknowledgements: closed ``(lo, hi)``
    seq ranges the receiver holds *beyond* the cumulative ``ack_call_seq``
    (out-of-order arrivals waiting for the gap to fill).  The sender skips
    them when retransmitting.  ``window`` is the receiver's advertised
    flow-control window — the most in-flight calls it is willing to
    absorb, derived from its executing/reply-log backlog; ``None`` means
    no window (legacy mode).  Both are absent on legacy-config streams,
    so legacy packets remain byte-identical.
    """

    __slots__ = (
        "key",
        "incarnation",
        "entries",
        "ack_call_seq",
        "completed_seq",
        "broken",
        "sack_ranges",
        "window",
    )

    def __init__(
        self,
        key: StreamKey,
        incarnation: int,
        entries: List[ReplyEntry],
        ack_call_seq: int,
        completed_seq: int,
        broken: Optional[BreakNotice] = None,
        sack_ranges: Tuple[Tuple[int, int], ...] = (),
        window: Optional[int] = None,
    ) -> None:
        self.key = key
        self.incarnation = incarnation
        self.entries = list(entries)
        #: Cumulative: all calls up to this seq have been received in order.
        self.ack_call_seq = ack_call_seq
        #: Cumulative: all calls up to this seq have finished executing
        #: (covers sends, whose normal completions carry no reply entry).
        self.completed_seq = completed_seq
        self.broken = broken
        self.sack_ranges = tuple(sack_ranges)
        self.window = window

    @property
    def size(self) -> int:
        size = PACKET_HEADER_BYTES + sum(entry.size for entry in self.entries)
        size += SACK_RANGE_BYTES * len(self.sack_ranges)
        if self.window is not None:
            size += WINDOW_FIELD_BYTES
        return size

    def __repr__(self) -> str:
        extras = ""
        if self.sack_ranges:
            extras += " sack=%r" % (list(self.sack_ranges),)
        if self.window is not None:
            extras += " win=%d" % self.window
        return "<ReplyPacket inc=%d n=%d ack=%d done=%d%s%s>" % (
            self.incarnation,
            len(self.entries),
            self.ack_call_seq,
            self.completed_seq,
            extras,
            " BROKEN" if self.broken else "",
        )
