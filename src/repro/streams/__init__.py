"""Call-streams: the Mercury-style transport (paper §2)."""

from repro.streams.config import StreamConfig
from repro.streams.receiver import CallDispatcher, ReceiverStats, StreamReceiver
from repro.streams.sender import SenderStats, StreamSender
from repro.streams.wire import (
    KIND_BATCH,
    KIND_RPC,
    KIND_SEND,
    KIND_STREAM,
    BreakNotice,
    CallEntry,
    CallPacket,
    ReplyEntry,
    ReplyPacket,
    StreamKey,
)

__all__ = [
    "BreakNotice",
    "CallDispatcher",
    "CallEntry",
    "CallPacket",
    "KIND_BATCH",
    "KIND_RPC",
    "KIND_SEND",
    "KIND_STREAM",
    "ReceiverStats",
    "ReplyEntry",
    "ReplyPacket",
    "SenderStats",
    "StreamConfig",
    "StreamKey",
    "StreamReceiver",
    "StreamSender",
]
