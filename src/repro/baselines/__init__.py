"""Comparison baselines: MultiLisp futures, send/receive, RPC-only."""

from repro.baselines.futures import ErrorValue, FutureRuntime, MLFuture
from repro.baselines.rpc_only import call_sequence, call_sequence_collect
from repro.baselines.sendrecv import DatagramBatch, Mailbox, PairingTable

__all__ = [
    "DatagramBatch",
    "ErrorValue",
    "FutureRuntime",
    "MLFuture",
    "Mailbox",
    "PairingTable",
    "call_sequence",
    "call_sequence_collect",
]
