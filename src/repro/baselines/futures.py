"""MultiLisp-style futures: the §3.3 comparison baseline.

    "In MultiLisp, an object of any type can be a future for a value that
     will arrive later.  When the value is needed in a computation (e.g.,
     for an addition), it is claimed automatically ...  However, futures
     have two disadvantages.  First, they are inefficient to implement
     unless specialized hardware is available, since every object must be
     examined each time it is accessed to determine whether or not it is a
     future.  Second, it is difficult to do anything very useful with
     exceptions.  In MultiLisp, exceptions are turned into error values
     automatically, and information about the error value propagates
     through the expression that caused the future to be claimed."

This module reproduces both disadvantages faithfully so benchmark E7 can
measure the first and the tests can demonstrate the second:

* :meth:`FutureRuntime.touch` is the implicit claim.  It is applied to
  *every* operand of every strict operation, charges ``check_cost``
  simulated time per examination (the software tag check), and counts the
  examinations;
* exceptions raised inside a future's computation become
  :class:`ErrorValue` objects that silently propagate through further
  strict operations, losing the original raise site by the time anyone
  inspects them.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.events import Event
from repro.sim.kernel import Environment

__all__ = ["MLFuture", "ErrorValue", "FutureRuntime"]


class ErrorValue:
    """An error turned into a value (MultiLisp error propagation).

    ``history`` records each expression the error value flowed through —
    illustrating why "it is difficult for a program to determine the
    reason for the error value".
    """

    __slots__ = ("cause", "history")

    def __init__(self, cause: BaseException, history: Optional[List[str]] = None) -> None:
        self.cause = cause
        self.history = list(history or [])

    def passed_through(self, where: str) -> "ErrorValue":
        """Propagate through one more expression, extending the history."""
        propagated = ErrorValue(self.cause, self.history)
        propagated.history.append(where)
        return propagated

    def __repr__(self) -> str:
        return "<ErrorValue %r via %r>" % (self.cause, self.history)


class MLFuture:
    """An untyped future: a placeholder any expression may encounter."""

    __slots__ = ("env", "_resolved", "_value", "_waiters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._resolved = False
        self._value: Any = None
        self._waiters: List[Event] = []

    @property
    def resolved(self) -> bool:
        return self._resolved

    def resolve(self, value: Any) -> None:
        """Deliver the future's value, waking implicit claimers."""
        if self._resolved:
            raise RuntimeError("future already resolved")
        self._resolved = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(value)

    def _wait(self) -> Event:
        event = Event(self.env)
        if self._resolved:
            event.succeed(self._value)
        else:
            self._waiters.append(event)
        return event

    def __repr__(self) -> str:
        return "<MLFuture %s>" % ("resolved" if self._resolved else "pending")


class FutureRuntime:
    """The implicit-claim machinery plus its cost accounting."""

    def __init__(self, env: Environment, check_cost: float = 0.0) -> None:
        if check_cost < 0:
            raise ValueError("check_cost must be >= 0")
        self.env = env
        self.check_cost = check_cost
        #: How many times any value was examined for future-ness.
        self.examinations = 0
        #: How many of those examinations actually found a future.
        self.futures_found = 0

    # ------------------------------------------------------------------
    # Creating futures
    # ------------------------------------------------------------------
    def future(self, ctx: Any, procedure: Callable, *args: Any) -> MLFuture:
        """``(future (procedure args...))`` — compute in parallel.

        An exception inside *procedure* becomes an :class:`ErrorValue`,
        not a raise: the caller finds out only by looking at the value.
        """
        fut = MLFuture(self.env)

        def runner():
            try:
                result = yield from procedure(ctx.spawn_context("future"), *args)
            except Exception as exc:
                fut.resolve(ErrorValue(exc, ["future body"]))
            else:
                fut.resolve(result)

        process = self.env.process(runner())
        ctx.guardian._track(process)
        return fut

    def wrap_promise(self, promise: Any) -> MLFuture:
        """View a stream-call promise as an untyped future (for E7)."""
        fut = MLFuture(self.env)

        def transfer(p) -> None:
            outcome = p.outcome()
            if outcome.is_normal:
                fut.resolve(outcome.apply())
            else:
                fut.resolve(ErrorValue(outcome.exception, ["remote call"]))

        promise.on_ready(transfer)
        return fut

    # ------------------------------------------------------------------
    # Touching (the implicit claim)
    # ------------------------------------------------------------------
    def touch(self, value: Any) -> Event:
        """Examine *value*; wait if it is an unresolved future.

        Yieldable.  Charges ``check_cost`` for the examination whether or
        not the value is a future — that is the paper's complaint.
        """
        self.examinations += 1
        done = Event(self.env)

        def after_check(_event: Optional[Event]) -> None:
            if isinstance(value, MLFuture):
                self.futures_found += 1
                inner = value._wait()

                def deliver(event: Event) -> None:
                    done.succeed(event.value)

                if inner.triggered:
                    deliver(inner)
                else:
                    inner.callbacks.append(deliver)
            else:
                done.succeed(value)

        if self.check_cost > 0:
            timer = self.env.timeout(self.check_cost)
            timer.callbacks.append(after_check)
        else:
            after_check(None)
        return done

    def strict_apply(self, name: str, fn: Callable, *operands: Any):
        """Apply *fn* strictly: touch every operand first
        (``yield from``-able).

        If any operand turns out to be an :class:`ErrorValue`, the result
        is that error value passed through this expression — no exception
        is raised, exactly the behaviour §3.3 criticizes.
        """
        values = []
        for operand in operands:
            value = yield self.touch(operand)
            values.append(value)
        for value in values:
            if isinstance(value, ErrorValue):
                return value.passed_through(name)
        try:
            return fn(*values)
        except Exception as exc:
            return ErrorValue(exc, [name])
