"""Synchronous-RPC-only programming: the Ada/SR baseline (§5).

    "Most languages for distributed systems provide a procedure-oriented
     communication mechanism.  Examples are Ada [19] and SR [1]. ...
     However, none of these languages allows the efficiency of streaming.
     Programs in these languages can be optimized only to reduce the
     delay of individual calls, not to improve the throughput of groups
     of calls."

The helpers here run call sequences strictly synchronously — each call
waits for its reply before the next is made — over the *same* handlers the
stream benchmarks use, so E1/E3 compare like with like.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["call_sequence", "call_sequence_collect"]


def call_sequence(ctx: Any, ref: Any, calls: Sequence[Sequence[Any]]):
    """Make each call in *calls* as a blocking RPC (``yield from``-able).

    Returns the list of results.  Exceptions propagate immediately, as
    they would in Ada/SR.
    """
    results: List[Any] = []
    for args in calls:
        result = yield ref.call(*args)
        results.append(result)
    return results


def call_sequence_collect(ctx: Any, ref: Any, calls: Sequence[Sequence[Any]]):
    """Like :func:`call_sequence`, but collect exceptions as outcomes
    instead of stopping at the first one (``yield from``-able).

    Returns a list of ``("ok", value)`` / ``("exception", exc)`` pairs.
    """
    results: List[Any] = []
    for args in calls:
        try:
            value = yield ref.call(*args)
        except Exception as exc:  # termination-model condition
            results.append(("exception", exc))
        else:
            results.append(("ok", value))
    return results
