"""Explicit send/receive message passing: the Plits/*MOD baseline (§5).

    "The send/receive approach can allow programs to achieve high
     throughput, but it leads to complex and ill-structured programs.
     The difficulty is that to obtain the efficiency benefits of
     streaming, it is necessary to have many 'calls' in progress at a
     time, and it is entirely the responsibility of the user code to
     relate reply messages with the calls that caused them."

This module gives user code raw mailboxes over the simulated network plus
a :class:`PairingTable` that *counts* the reply-matching bookkeeping the
user is forced to write — the quantity benchmark E8 reports alongside
throughput.  Manual batching (several logical messages per datagram) is
supported so the baseline can genuinely match stream throughput.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Tuple

from repro.net.message import Message
from repro.net.network import Network, Node
from repro.sim.events import Event
from repro.sim.kernel import Environment
from repro.sim.sync import BlockingQueue

__all__ = ["Mailbox", "PairingTable", "DatagramBatch"]

_conversation_ids = itertools.count(1)


class DatagramBatch:
    """Several logical messages manually packed into one datagram.

    ``entries`` are ``(conversation_id, payload, size)`` triples; the user
    code at the receiver unpacks them itself.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: List[Tuple[int, Any, int]]) -> None:
        self.entries = list(entries)

    @property
    def size(self) -> int:
        return 16 + sum(16 + size for _cid, _payload, size in self.entries)


class Mailbox:
    """A raw receive queue at a network address.

    ``receive()`` is yieldable and delivers whatever datagram arrives next
    — it is the *user's* job to figure out what the datagram answers.
    """

    def __init__(self, env: Environment, network: Network, node: Node, address: str) -> None:
        self.env = env
        self.network = network
        self.node = node
        self.address = address
        self._inbox = BlockingQueue(env)
        node.register(address, self._on_message)

    def _on_message(self, message: Message) -> None:
        self._inbox.put(message.payload)

    def send(self, dst_node: str, dst_address: str, payload: Any, size: int) -> None:
        """Fire one datagram; the sender 'need wait only until the message
        is produced'."""
        self.network.send(
            Message(self.node.name, dst_node, dst_address, payload, size),
            want_done=False,
        )

    def send_batch(self, dst_node: str, dst_address: str, batch: DatagramBatch) -> None:
        """Manually batched send (how send/receive programs get
        stream-like throughput)."""
        self.network.send(
            Message(self.node.name, dst_node, dst_address, batch, batch.size),
            want_done=False,
        )

    def receive(self) -> Event:
        """Yieldable: the next arrived payload, in arrival order."""
        return self._inbox.get()

    def pending(self) -> int:
        """Datagrams waiting to be received."""
        return len(self._inbox)


class PairingTable:
    """The user-maintained table matching replies to requests.

    Every ``expect``/``match`` is one unit of the bookkeeping burden that
    promises eliminate; benchmark E8 reports ``operations``.
    """

    def __init__(self) -> None:
        self._waiting: Dict[int, Any] = {}
        #: Total pairing operations user code had to perform.
        self.operations = 0
        #: Replies that matched nothing (bugs the structure invites).
        self.unmatched = 0

    def new_conversation(self, context: Any = None) -> int:
        """Register an outstanding request; returns its conversation id."""
        conversation_id = next(_conversation_ids)
        self._waiting[conversation_id] = context
        self.operations += 1
        return conversation_id

    def match(self, conversation_id: int) -> Any:
        """Pair an incoming reply with its request; returns the context."""
        self.operations += 1
        try:
            return self._waiting.pop(conversation_id)
        except KeyError:
            self.unmatched += 1
            raise

    @property
    def outstanding(self) -> int:
        return len(self._waiting)
