"""Discrete-event simulation kernel.

This module provides the deterministic execution substrate for the whole
reproduction.  The 1988 paper ran on real Argus nodes; we instead run every
guardian, agent and network link inside a single simulated timeline so that
per-message overheads, wire latencies and handler compute times are explicit,
controllable model parameters (see DESIGN.md section 2).

The design follows the classic event-calendar architecture: an
:class:`Environment` owns a priority queue of ``(time, priority, seq, event)``
entries and fires events in time order.  Simulated processes are Python
generators that yield :class:`~repro.sim.events.Event` objects to block; the
machinery for that lives in :mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "Infinity",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must fire before ordinary events at
#: the same timestamp (e.g. process resumption after an interrupt).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1

#: A time later than any other; used as the default run-until bound.
Infinity = float("inf")


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a trigger event."""

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """A simulation environment: clock plus event calendar.

    The environment is deliberately small; everything else (timeouts,
    processes, synchronization, networks, guardians) is built on
    :meth:`schedule` and :meth:`run`.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._active_process = None
        #: Attached :class:`~repro.obs.trace.Tracer`, or None (the default:
        #: tracing disabled).  Every instrumented layer reads this through
        #: its environment, so one attribute enables tracing everywhere.
        self.tracer = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self):
        """The :class:`~repro.sim.process.Process` currently executing."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or :data:`Infinity` if none."""
        if not self._queue:
            return Infinity
        return self._queue[0][0]

    def queued_event_count(self) -> int:
        """Number of events waiting on the calendar (for tests/stats)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Any, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place *event* on the calendar ``delay`` time units from now.

        Ties at the same timestamp are broken first by *priority* then by
        insertion order, which keeps the simulation fully deterministic.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past (delay=%r)" % delay)
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fire the single next event.

        Raises :class:`EmptySchedule` if the calendar is empty.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        event._fire(self)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        *until* may be ``None`` (run until the calendar drains), a number
        (run until that simulated time), or an event (run until it fires and
        return its value).
        """
        stop_event = None
        if until is None:
            limit = Infinity
        elif hasattr(until, "callbacks"):
            stop_event = until
            limit = Infinity
            if until.triggered:
                return until.value_or_raise()
            until.callbacks.append(_Stopper(until))
        else:
            limit = float(until)
            if limit < self._now:
                raise ValueError(
                    "until (%r) must not be earlier than now (%r)" % (limit, self._now)
                )

        try:
            while True:
                if not self._queue:
                    break
                if self._queue[0][0] > limit:
                    self._now = limit
                    break
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            pass

        if stop_event is not None:
            raise RuntimeError(
                "simulation ran out of events before %r fired" % (stop_event,)
            )
        if limit is not Infinity:
            self._now = max(self._now, limit)
        return None

    # ------------------------------------------------------------------
    # Factory helpers (populated by sibling modules to avoid import cycles)
    # ------------------------------------------------------------------
    def event(self):
        """Create a fresh untriggered :class:`~repro.sim.events.Event`."""
        from repro.sim.events import Event

        return Event(self)

    def timeout(self, delay: float, value: Any = None):
        """Create a :class:`~repro.sim.events.Timeout` firing after *delay*."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator: Generator):
        """Spawn a new simulated :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Any]):
        """Condition event that fires when every event in *events* has."""
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Any]):
        """Condition event that fires when any event in *events* has."""
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))


class _Stopper:
    """Callback object that stops :meth:`Environment.run` at an event."""

    def __init__(self, event: Any) -> None:
        self._event = event

    def __call__(self, event: Any) -> None:
        raise StopSimulation(event.value_or_raise())
